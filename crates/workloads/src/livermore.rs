//! The first fourteen Livermore Loop kernels (McMahon's Livermore
//! Fortran Kernels), hand-translated to the C subset — the programs
//! behind the paper's Table 4.
//!
//! Problem sizes are scaled down so simulated runs finish quickly, but
//! each kernel keeps its characteristic dependence structure: LL1/LL7
//! are wide instruction-level parallelism, LL3 is a reduction, LL5 and
//! LL11 are serial recurrences, LL6 a triangular recurrence, LL13/LL14
//! are integer/floating hybrids with gather-scatter.

use crate::Workload;

/// The kernel sources, `LL1` through `LL14`.
pub fn kernels() -> Vec<Workload> {
    let mk = |i: usize, desc: &str, body: &str| Workload {
        name: format!("LL{i}"),
        source: body.to_string(),
        description: desc.to_string(),
    };
    vec![
        mk(
            1,
            "hydro fragment",
            "double x[128]; double y[128]; double z[160];
             int main() {
                int l, k;
                double q = 0.5, r = 0.25, t = 0.125, s = 0.0;
                for (k = 0; k < 160; k++) z[k] = 0.01 * (k + 1);
                for (k = 0; k < 128; k++) y[k] = 0.02 * (k + 3);
                for (l = 0; l < 12; l++) {
                    for (k = 0; k < 128; k++)
                        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
                }
                for (k = 0; k < 128; k++) s += x[k];
                return (int)(s * 100.0);
             }",
        ),
        mk(
            2,
            "ICCG excerpt (incomplete Cholesky conjugate gradient)",
            "double x[256]; double v[256];
             int main() {
                int l, k, i, ii, ipnt, ipntp;
                double s = 0.0;
                for (k = 0; k < 256; k++) { x[k] = 0.0125 * (k + 1); v[k] = 0.0025 * (k + 2); }
                for (l = 0; l < 12; l++) {
                    ii = 128; ipntp = 0;
                    do {
                        ipnt = ipntp;
                        ipntp = ipntp + ii;
                        ii = ii / 2;
                        i = ipntp - 1;
                        for (k = ipnt + 1; k < ipntp; k = k + 2) {
                            i = i + 1;
                            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
                        }
                    } while (ii > 0);
                }
                for (k = 0; k < 256; k++) s += x[k];
                if (s < 0.0) s = -s;
                while (s > 1000000.0) s = s * 0.001;
                return (int)s;
             }",
        ),
        mk(
            3,
            "inner product",
            "double x[256]; double z[256];
             int main() {
                int l, k;
                double q = 0.0;
                for (k = 0; k < 256; k++) { x[k] = 0.001 * (k + 1); z[k] = 0.002 * (k + 2); }
                for (l = 0; l < 20; l++) {
                    q = 0.0;
                    for (k = 0; k < 256; k++) q += z[k] * x[k];
                }
                return (int)(q * 10.0);
             }",
        ),
        mk(
            4,
            "banded linear equations",
            "double x[256]; double y[256];
             int main() {
                int l, j, k, lw;
                double temp, s = 0.0;
                for (k = 0; k < 256; k++) { x[k] = 0.01 * (k + 1); y[k] = 0.002 * (k + 2); }
                for (l = 0; l < 12; l++) {
                    for (k = 6; k < 100; k = k + 5) {
                        lw = k - 6;
                        temp = x[k - 1];
                        for (j = 4; j < 100; j = j + 5) {
                            temp -= x[lw] * y[j];
                            lw++;
                        }
                        x[k - 1] = y[4] * temp;
                    }
                }
                for (k = 0; k < 256; k++) s += x[k];
                return (int)(s * 10.0);
             }",
        ),
        mk(
            5,
            "tridiagonal elimination, below diagonal (serial recurrence)",
            "double x[256]; double y[256]; double z[256];
             int main() {
                int l, i;
                double s = 0.0;
                for (i = 0; i < 256; i++) { y[i] = 0.0015 * (i + 1); z[i] = 0.5 - 0.001 * i; x[i] = 0.0; }
                for (l = 0; l < 12; l++) {
                    for (i = 1; i < 256; i++)
                        x[i] = z[i] * (y[i] - x[i - 1]);
                }
                for (i = 0; i < 256; i++) s += x[i];
                return (int)(s * 100.0);
             }",
        ),
        mk(
            6,
            "general linear recurrence equations",
            "double w[64]; double b[64][64];
             int main() {
                int l, i, k;
                double s = 0.0;
                for (i = 0; i < 64; i++)
                    for (k = 0; k < 64; k++)
                        b[i][k] = 0.0001 * (i + k + 2);
                for (l = 0; l < 8; l++) {
                    w[0] = 0.0100;
                    for (i = 1; i < 64; i++) {
                        w[i] = 0.0100;
                        for (k = 0; k < i; k++)
                            w[i] += b[k][i] * w[(i - k) - 1];
                    }
                }
                for (i = 0; i < 64; i++) s += w[i];
                return (int)(s * 100.0);
             }",
        ),
        mk(
            7,
            "equation of state fragment (wide ILP)",
            "double x[128]; double y[160]; double z[160]; double u[160];
             int main() {
                int l, k;
                double q = 0.5, r = 0.25, t = 0.125, s = 0.0;
                for (k = 0; k < 160; k++) {
                    y[k] = 0.001 * (k + 1);
                    z[k] = 0.0015 * (k + 2);
                    u[k] = 0.0008 * (k + 3);
                }
                for (l = 0; l < 12; l++) {
                    for (k = 0; k < 128; k++) {
                        x[k] = u[k] + r * (z[k] + r * y[k]) +
                               t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1]) +
                                    t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
                    }
                }
                for (k = 0; k < 128; k++) s += x[k];
                return (int)(s * 100.0);
             }",
        ),
        mk(
            8,
            "ADI integration (flattened 3-D arrays)",
            "double u1[1060]; double u2[1060]; double u3[1060];
             double du1[101]; double du2[101]; double du3[101];
             int main() {
                int l, kx, ky, i1, i2, j2;
                double a11 = 1.0, a12 = 0.5, a13 = 0.33, a21 = 0.25, a22 = 0.2,
                       a23 = 0.16, a31 = 0.125, a32 = 0.1, a33 = 0.09, sig = 2.0;
                double s = 0.0;
                int nl1 = 0, nl2 = 1;
                for (kx = 0; kx < 1060; kx++) {
                    u1[kx] = 0.001 * (kx % 37 + 1);
                    u2[kx] = 0.002 * (kx % 31 + 1);
                    u3[kx] = 0.003 * (kx % 29 + 1);
                }
                for (l = 0; l < 4; l++) {
                    for (kx = 1; kx < 3; kx++) {
                        for (ky = 1; ky < 100; ky++) {
                            i1 = nl1 * 530 + kx * 101 + ky;
                            j2 = nl2 * 530 + kx * 101 + ky;
                            du1[ky] = u1[i1 + 1] - u1[i1 - 1];
                            du2[ky] = u2[i1 + 1] - u2[i1 - 1];
                            du3[ky] = u3[i1 + 1] - u3[i1 - 1];
                            u1[j2] = u1[i1] + a11 * du1[ky] + a12 * du2[ky] + a13 * du3[ky] +
                                     sig * (u1[i1 + 101] - 2.0 * u1[i1] + u1[i1 - 101]);
                            u2[j2] = u2[i1] + a21 * du1[ky] + a22 * du2[ky] + a23 * du3[ky] +
                                     sig * (u2[i1 + 101] - 2.0 * u2[i1] + u2[i1 - 101]);
                            u3[j2] = u3[i1] + a31 * du1[ky] + a32 * du2[ky] + a33 * du3[ky] +
                                     sig * (u3[i1 + 101] - 2.0 * u3[i1] + u3[i1 - 101]);
                        }
                    }
                    i2 = nl1; nl1 = nl2; nl2 = i2;
                }
                for (kx = 0; kx < 1060; kx++) s += u1[kx] + u2[kx];
                return (int)(s);
             }",
        ),
        mk(
            9,
            "integrate predictors",
            "double px[256][13];
             int main() {
                int l, i, j;
                double dm22 = 0.2, dm23 = 0.3, dm24 = 0.4, dm25 = 0.5,
                       dm26 = 0.6, dm27 = 0.7, dm28 = 0.8, c0 = 1.1;
                double s = 0.0;
                for (i = 0; i < 256; i++)
                    for (j = 0; j < 13; j++)
                        px[i][j] = 0.001 * (i + j + 1);
                for (l = 0; l < 8; l++) {
                    for (i = 0; i < 256; i++) {
                        px[i][0] = dm28 * px[i][12] + dm27 * px[i][11] + dm26 * px[i][10] +
                                   dm25 * px[i][9] + dm24 * px[i][8] + dm23 * px[i][7] +
                                   dm22 * px[i][6] + c0 * (px[i][4] + px[i][5]) + px[i][2];
                    }
                }
                for (i = 0; i < 256; i++) s += px[i][0];
                return (int)(s * 0.01);
             }",
        ),
        mk(
            10,
            "difference predictors",
            "double px[128][13]; double cx[128][13];
             int main() {
                int l, i;
                double ar, br, cr, s = 0.0;
                for (i = 0; i < 128; i++) {
                    int j;
                    for (j = 0; j < 13; j++) { px[i][j] = 0.001 * (i + j + 1); cx[i][j] = 0.002 * (i + 2 * j + 1); }
                }
                for (l = 0; l < 8; l++) {
                    for (i = 0; i < 128; i++) {
                        ar = cx[i][4];
                        br = ar - px[i][4];
                        px[i][4] = ar;
                        cr = br - px[i][5];
                        px[i][5] = br;
                        ar = cr - px[i][6];
                        px[i][6] = cr;
                        br = ar - px[i][7];
                        px[i][7] = ar;
                        cr = br - px[i][8];
                        px[i][8] = br;
                        ar = cr - px[i][9];
                        px[i][9] = cr;
                        br = ar - px[i][10];
                        px[i][10] = ar;
                        cr = br - px[i][11];
                        px[i][11] = br;
                        px[i][13 - 1] = cr - px[i][12];
                        px[i][12] = cr;
                    }
                }
                for (i = 0; i < 128; i++) s += px[i][12];
                return (int)(s * 10.0);
             }",
        ),
        mk(
            11,
            "first sum (prefix sum, serial)",
            "double x[512]; double y[512];
             int main() {
                int l, k;
                double s = 0.0;
                for (k = 0; k < 512; k++) y[k] = 0.0005 * (k + 1);
                for (l = 0; l < 12; l++) {
                    x[0] = y[0];
                    for (k = 1; k < 512; k++)
                        x[k] = x[k - 1] + y[k];
                }
                for (k = 0; k < 512; k++) s += x[k];
                return (int)(s * 0.1);
             }",
        ),
        mk(
            12,
            "first difference (fully parallel)",
            "double x[512]; double y[520];
             int main() {
                int l, k;
                double s = 0.0;
                for (k = 0; k < 520; k++) y[k] = 0.01 * (k % 17 + 1);
                for (l = 0; l < 12; l++) {
                    for (k = 0; k < 512; k++)
                        x[k] = y[k + 1] - y[k];
                }
                for (k = 0; k < 512; k++) s += x[k];
                return (int)(s * 100.0);
             }",
        ),
        mk(
            13,
            "2-D particle in cell",
            "double p[128][4]; double b[32][32]; double c[32][32];
             double y[40]; double z[40]; double h[32][32];
             int main() {
                int l, ip, i1, j1, i2, j2, k;
                double s = 0.0;
                for (ip = 0; ip < 128; ip++) {
                    p[ip][0] = 1.0 + 0.25 * (ip % 13);
                    p[ip][1] = 1.5 + 0.25 * (ip % 11);
                    p[ip][2] = 0.001 * (ip + 1);
                    p[ip][3] = 0.002 * (ip + 1);
                }
                for (i1 = 0; i1 < 32; i1++)
                    for (j1 = 0; j1 < 32; j1++) {
                        b[i1][j1] = 0.003 * (i1 + j1 + 1);
                        c[i1][j1] = 0.004 * (i1 + 2 * j1 + 1);
                        h[i1][j1] = 0.0;
                    }
                for (k = 0; k < 40; k++) { y[k] = 0.1 * (k + 1); z[k] = 0.2 * (k + 1); }
                for (l = 0; l < 4; l++) {
                    for (ip = 0; ip < 128; ip++) {
                        i1 = (int)p[ip][0];
                        j1 = (int)p[ip][1];
                        i1 = i1 & 31;
                        j1 = j1 & 31;
                        p[ip][2] += b[j1][i1];
                        p[ip][3] += c[j1][i1];
                        p[ip][0] += p[ip][2];
                        p[ip][1] += p[ip][3];
                        i2 = (int)p[ip][0];
                        j2 = (int)p[ip][1];
                        i2 = i2 & 31;
                        j2 = j2 & 31;
                        p[ip][0] += y[i2 + 4];
                        p[ip][1] += z[j2 + 4];
                        i2 = i2 + 2;
                        j2 = j2 + 2;
                        h[j2 & 31][i2 & 31] = h[j2 & 31][i2 & 31] + 1.0;
                    }
                }
                for (i1 = 0; i1 < 32; i1++)
                    for (j1 = 0; j1 < 32; j1++) s += h[i1][j1];
                for (ip = 0; ip < 128; ip++) s += p[ip][0];
                return (int)s;
             }",
        ),
        mk(
            14,
            "1-D particle in cell",
            "double vx[256]; double xx[256]; double xi[256];
             double ex[256]; double ex1[256]; double dex[256]; double dex1[256];
             double rh[320]; double ir[256]; double rx[256]; double grd[256];
             int main() {
                int l, k, ix, i;
                double flx = 0.001, s = 0.0;
                for (k = 0; k < 256; k++) {
                    vx[k] = 0.0;
                    xx[k] = 1.0 + 0.027 * k;
                    grd[k] = 2.0 + (k % 60);
                    ex[k] = 0.01 * (k % 23 + 1);
                    dex[k] = 0.005 * (k % 19 + 1);
                }
                for (k = 0; k < 320; k++) rh[k] = 0.0;
                for (l = 0; l < 4; l++) {
                    for (k = 0; k < 256; k++) {
                        ix = (int)grd[k];
                        xi[k] = (double)ix;
                        ex1[k] = ex[ix - 1];
                        dex1[k] = dex[ix - 1];
                    }
                    for (k = 0; k < 256; k++) {
                        vx[k] = vx[k] + ex1[k] + (xx[k] - xi[k]) * dex1[k];
                        xx[k] = xx[k] + vx[k] + flx;
                        ir[k] = (double)((int)xx[k]);
                        rx[k] = xx[k] - ir[k];
                        i = ((int)ir[k]) & 255;
                        xx[k] = rx[k] + (double)i;
                    }
                    for (k = 0; k < 256; k++) {
                        i = (int)xx[k];
                        i = i & 255;
                        rh[i] = rh[i] + 1.0 - rx[k];
                        rh[i + 1] = rh[i + 1] + rx[k];
                    }
                }
                for (k = 0; k < 320; k++) s += rh[k];
                for (k = 0; k < 256; k++) s += vx[k];
                return (int)(s * 10.0);
             }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::interp::{Interp, Value};

    #[test]
    fn kernels_have_nonzero_checksums() {
        for k in kernels() {
            let module = k.module();
            let mut interp = Interp::new(&module, 1 << 22).with_budget(200_000_000);
            let v = interp
                .call_by_name("main", &[])
                .unwrap_or_else(|e| panic!("{}: {e}", k.name))
                .unwrap();
            let Value::I(c) = v else {
                panic!("{}: non-int", k.name)
            };
            assert!(c != 0, "{} checksum is zero (degenerate kernel?)", k.name);
        }
    }
}
