//! The compile-time program suite — stand-ins for the paper's
//! Table 3 workload (NAS Kernel, SPHOT, ARC2D and the Lcc front end).
//!
//! The paper measured how long each Marion back end takes to compile
//! a fixed suite and the *dilation* (instructions executed /
//! instructions generated). These synthetic programs keep the original
//! mix: three floating-point-loop-heavy scientific codes and one
//! integer, branch-heavy systems program.

use crate::Workload;

/// The four suite programs.
pub fn programs() -> Vec<Workload> {
    vec![nasker(), sphot(), arc2d(), lcc_like()]
}

/// `nasker` — NAS-kernel-style dense linear algebra: matrix multiply,
/// a Cholesky-ish triangular update and a butterfly pass.
fn nasker() -> Workload {
    Workload {
        name: "nasker".into(),
        description: "dense FP kernels: matmul, triangular update, butterfly".into(),
        source: r#"
double a[24][24]; double b[24][24]; double c[24][24];
double vr[64]; double vi[64]; double wr[64]; double wi[64];

void setup() {
    int i, j;
    for (i = 0; i < 24; i++)
        for (j = 0; j < 24; j++) {
            a[i][j] = 0.01 * (i + j + 1);
            b[i][j] = 0.02 * (i - j) + 0.5;
            c[i][j] = 0.0;
        }
    for (i = 0; i < 64; i++) {
        vr[i] = 0.001 * (i + 1); vi[i] = 0.002 * (i + 2);
        wr[i] = 0.97 - 0.001 * i; wi[i] = 0.01 * (i % 7);
    }
}

void matmul() {
    int i, j, k;
    for (i = 0; i < 24; i++)
        for (j = 0; j < 24; j++) {
            double s = 0.0;
            for (k = 0; k < 24; k++)
                s += a[i][k] * b[k][j];
            c[i][j] = s;
        }
}

void triangular() {
    int i, j, k;
    for (k = 0; k < 24; k++) {
        for (i = k + 1; i < 24; i++) {
            double m = a[i][k] / (a[k][k] + 1.0);
            for (j = k; j < 24; j++)
                a[i][j] -= m * a[k][j];
        }
    }
}

void butterfly(int span) {
    int i;
    for (i = 0; i + span < 64; i++) {
        double tr = vr[i + span] * wr[i] - vi[i + span] * wi[i];
        double ti = vr[i + span] * wi[i] + vi[i + span] * wr[i];
        vr[i + span] = vr[i] - tr;
        vi[i + span] = vi[i] - ti;
        vr[i] = vr[i] + tr;
        vi[i] = vi[i] + ti;
    }
}

int main() {
    int i, j, span;
    double s = 0.0;
    setup();
    matmul();
    triangular();
    for (span = 1; span < 64; span = span * 2)
        butterfly(span);
    for (i = 0; i < 24; i++)
        for (j = 0; j < 24; j++) s += c[i][j] + a[i][j] * 0.125;
    for (i = 0; i < 64; i++) s += vr[i] * 0.0625;
    if (s < 0.0) s = -s;
    while (s > 100000.0) s = s * 0.01;
    return (int)(s * 10.0);
}
"#
        .into(),
    }
}

/// `sphot` — photon-transport-style Monte Carlo: a linear congruential
/// generator drives scattering decisions through branchy FP code.
fn sphot() -> Workload {
    Workload {
        name: "sphot".into(),
        description: "Monte-Carlo photon transport: LCG + branchy FP scattering".into(),
        source: r#"
double absorbed[16]; double escaped[16]; double flux[64];
int seed = 12345;

int lcg() {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    return seed;
}

double uniform() {
    return (double)(lcg() % 10000) * 0.0001;
}

int main() {
    int p, step, zone;
    double s = 0.0;
    for (p = 0; p < 16; p++) { absorbed[p] = 0.0; escaped[p] = 0.0; }
    for (p = 0; p < 64; p++) flux[p] = 0.0;
    for (p = 0; p < 300; p++) {
        double energy = 1.0 + uniform();
        double weight = 1.0;
        zone = p % 16;
        for (step = 0; step < 40; step++) {
            double r = uniform();
            flux[(zone * 4 + step) % 64] += weight * energy * 0.01;
            if (r < 0.3) {
                /* absorption */
                absorbed[zone] += weight * energy;
                weight = 0.0;
                break;
            } else if (r < 0.7) {
                /* scatter: lose energy, maybe change zone */
                energy = energy * (0.5 + 0.5 * uniform());
                if (r < 0.5) zone = (zone + 1) % 16;
            } else {
                /* streaming */
                zone = zone + 1;
                if (zone >= 16) {
                    escaped[zone % 16] += weight * energy;
                    break;
                }
            }
            if (energy < 0.05) {
                absorbed[zone] += weight * energy;
                break;
            }
        }
    }
    for (p = 0; p < 16; p++) s += absorbed[p] + escaped[p];
    for (p = 0; p < 64; p++) s += flux[p] * 0.1;
    return (int)(s * 100.0);
}
"#
        .into(),
    }
}

/// `arc2d` — implicit-fluid-code flavour: repeated 2-D stencil sweeps
/// with boundary handling and a tridiagonal-style line solve.
fn arc2d() -> Workload {
    Workload {
        name: "arc2d".into(),
        description: "2-D stencil sweeps + line solves (ARC2D-style)".into(),
        source: r#"
double q[34][34]; double qn[34][34]; double rhs[34][34];
double aa[34]; double bb[34]; double cc[34]; double dd[34]; double xx[34];

void init() {
    int i, j;
    for (i = 0; i < 34; i++)
        for (j = 0; j < 34; j++) {
            q[i][j] = 1.0 + 0.01 * i - 0.005 * j;
            qn[i][j] = 0.0;
            rhs[i][j] = 0.0;
        }
}

void stencil() {
    int i, j;
    for (i = 1; i < 33; i++)
        for (j = 1; j < 33; j++)
            rhs[i][j] = 0.25 * (q[i - 1][j] + q[i + 1][j] + q[i][j - 1] + q[i][j + 1]) - q[i][j];
}

void linesolve(int i) {
    int j;
    /* Thomas algorithm along one line */
    for (j = 0; j < 34; j++) {
        aa[j] = -0.2; bb[j] = 1.4; cc[j] = -0.2; dd[j] = rhs[i][j];
    }
    for (j = 1; j < 34; j++) {
        double m = aa[j] / bb[j - 1];
        bb[j] = bb[j] - m * cc[j - 1];
        dd[j] = dd[j] - m * dd[j - 1];
    }
    xx[33] = dd[33] / bb[33];
    for (j = 32; j >= 0; j--)
        xx[j] = (dd[j] - cc[j] * xx[j + 1]) / bb[j];
    for (j = 0; j < 34; j++)
        qn[i][j] = q[i][j] + xx[j];
}

int main() {
    int it, i, j;
    double s = 0.0;
    init();
    for (it = 0; it < 6; it++) {
        stencil();
        for (i = 1; i < 33; i++) linesolve(i);
        for (i = 0; i < 34; i++)
            for (j = 0; j < 34; j++) q[i][j] = qn[i][j] * 0.5 + q[i][j] * 0.5;
    }
    for (i = 0; i < 34; i++)
        for (j = 0; j < 34; j++) s += q[i][j];
    return (int)(s * 10.0);
}
"#
        .into(),
    }
}

/// `lcc` — compiler-front-end flavour: a tokenizer and expression
/// evaluator over a byte buffer. Integer ops, tables, tight branches —
/// the opposite mix from the scientific codes.
fn lcc_like() -> Workload {
    Workload {
        name: "lcc".into(),
        description: "tokenizer + recursive-descent evaluator (integer/branchy)".into(),
        source: r#"
char buf[256];
int pos = 0;
int kinds[64]; int values[64]; int ntok = 0;

void emitc(int i, char c) { buf[i] = c; }

void fill() {
    /* "(1+2)*(3+4)-5*6+78/3;" repeated with varying digits */
    int i, base = 0, d = 1;
    for (i = 0; i + 24 < 256; i += 24) {
        emitc(i + 0, '('); emitc(i + 1, (char)('0' + d % 10));
        emitc(i + 2, '+'); emitc(i + 3, (char)('0' + (d + 1) % 10));
        emitc(i + 4, ')'); emitc(i + 5, '*');
        emitc(i + 6, '('); emitc(i + 7, (char)('0' + (d + 2) % 10));
        emitc(i + 8, '+'); emitc(i + 9, (char)('0' + (d + 3) % 10));
        emitc(i + 10, ')'); emitc(i + 11, '-');
        emitc(i + 12, (char)('0' + (d + 4) % 10));
        emitc(i + 13, '*'); emitc(i + 14, (char)('0' + (d + 5) % 10));
        emitc(i + 15, '+'); emitc(i + 16, (char)('0' + (d + 6) % 10));
        emitc(i + 17, (char)('0' + (d + 7) % 10));
        emitc(i + 18, '/'); emitc(i + 19, (char)('0' + (d % 3 + 1)));
        emitc(i + 20, ';');
        emitc(i + 21, ' '); emitc(i + 22, ' '); emitc(i + 23, ' ');
        d = d + 3;
        base = i;
    }
    buf[base + 21] = 0;
    pos = 0;
}

/* token kinds: 0 eof, 1 num, 2 +, 3 -, 4 *, 5 /, 6 (, 7 ), 8 ; */
void tokenize() {
    ntok = 0;
    while (ntok < 63) {
        char c = buf[pos];
        if (c == 0) break;
        if (c == ' ') { pos++; continue; }
        if (c >= '0' && c <= '9') {
            int v = 0;
            while (buf[pos] >= '0' && buf[pos] <= '9') {
                v = v * 10 + (buf[pos] - '0');
                pos++;
            }
            kinds[ntok] = 1; values[ntok] = v; ntok++;
            continue;
        }
        if (c == '+') kinds[ntok] = 2;
        else if (c == '-') kinds[ntok] = 3;
        else if (c == '*') kinds[ntok] = 4;
        else if (c == '/') kinds[ntok] = 5;
        else if (c == '(') kinds[ntok] = 6;
        else if (c == ')') kinds[ntok] = 7;
        else kinds[ntok] = 8;
        values[ntok] = 0;
        ntok++;
        pos++;
    }
    kinds[ntok] = 0;
}

int tp = 0;

int parse_expr();

int parse_primary() {
    if (kinds[tp] == 6) {
        int v;
        tp++;
        v = parse_expr();
        if (kinds[tp] == 7) tp++;
        return v;
    }
    if (kinds[tp] == 1) {
        int v = values[tp];
        tp++;
        return v;
    }
    tp++;
    return 0;
}

int parse_term() {
    int v = parse_primary();
    while (kinds[tp] == 4 || kinds[tp] == 5) {
        int op = kinds[tp];
        int rhs;
        tp++;
        rhs = parse_primary();
        if (op == 4) v = v * rhs;
        else if (rhs != 0) v = v / rhs;
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    while (kinds[tp] == 2 || kinds[tp] == 3) {
        int op = kinds[tp];
        int rhs;
        tp++;
        rhs = parse_term();
        if (op == 2) v = v + rhs;
        else v = v - rhs;
    }
    return v;
}

int main() {
    int round, total = 0;
    for (round = 0; round < 20; round++) {
        int statement_sum = 0;
        fill();
        tokenize();
        tp = 0;
        while (kinds[tp] != 0) {
            statement_sum += parse_expr();
            if (kinds[tp] == 8) tp++;
        }
        total = total + statement_sum % 9973;
    }
    return total;
}
"#
        .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::interp::{Interp, Value};

    #[test]
    fn suite_runs_and_checksums_are_stable() {
        for w in programs() {
            let module = w.module();
            let mut i1 = Interp::new(&module, 1 << 22).with_budget(200_000_000);
            let a = i1.call_by_name("main", &[]).unwrap().unwrap();
            let mut i2 = Interp::new(&module, 1 << 22).with_budget(200_000_000);
            let b = i2.call_by_name("main", &[]).unwrap().unwrap();
            assert_eq!(a, b, "{} is nondeterministic", w.name);
            let Value::I(c) = a else { panic!() };
            assert!(c != 0, "{} checksum is zero", w.name);
        }
    }
}
