//! Seeded random program generation for stress-testing the whole
//! tool chain (front end → selection → scheduling → allocation →
//! simulation).
//!
//! Generated programs are closed (no inputs), deterministic, and
//! terminate; every integer division/remainder is guarded away from
//! zero so both the reference interpreter and generated code are
//! defined. Floating expressions avoid division entirely (values stay
//! in ranges where double rounding is exact enough to compare).
//!
//! Randomness comes from the in-repo [`crate::rng::SplitMix64`]
//! generator, so generation is deterministic across platforms and the
//! crate builds with no external dependencies.

use crate::rng::SplitMix64;

/// Parameters for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum expression depth.
    pub max_depth: u32,
    /// Number of scalar int variables.
    pub int_vars: u32,
    /// Number of scalar double variables.
    pub dbl_vars: u32,
    /// Number of statements in the loop body.
    pub stmts: u32,
    /// Loop iterations.
    pub iters: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 4,
            int_vars: 6,
            dbl_vars: 4,
            stmts: 10,
            iters: 8,
        }
    }
}

/// Generates a random self-checking program from a seed.
pub fn random_program(seed: u64, config: &GenConfig) -> String {
    let mut rng = SplitMix64::new(seed);
    let mut src = String::new();
    src.push_str("int main() {\n");
    for i in 0..config.int_vars {
        let init = rng.range(-50, 50);
        src.push_str(&format!("    int i{i} = {init};\n"));
    }
    for d in 0..config.dbl_vars {
        let whole = rng.range(-8, 8);
        let frac = rng.range(0, 16) as f64 / 16.0;
        src.push_str(&format!("    double d{d} = {:.6};\n", whole as f64 + frac));
    }
    src.push_str(&format!(
        "    int it;\n    for (it = 0; it < {}; it++) {{\n",
        config.iters
    ));
    for _ in 0..config.stmts {
        let stmt = random_stmt(&mut rng, config);
        src.push_str("        ");
        src.push_str(&stmt);
        src.push('\n');
    }
    src.push_str("    }\n    return ");
    let mut terms: Vec<String> = (0..config.int_vars).map(|i| format!("i{i}")).collect();
    for d in 0..config.dbl_vars {
        // Clamp doubles into int range before folding them in.
        terms.push(format!(
            "(int)(d{d} - (double)(int)(d{d} * 0.001) * 1000.0)"
        ));
    }
    src.push_str(&terms.join(" + "));
    src.push_str(";\n}\n");
    src
}

fn random_stmt(rng: &mut SplitMix64, config: &GenConfig) -> String {
    if rng.chance(0.3) && config.dbl_vars > 0 {
        let d = rng.below(config.dbl_vars as u64);
        let e = random_dbl_expr(rng, config, config.max_depth);
        // Keep magnitudes bounded so checksums stay exactly
        // representable.
        format!("d{d} = ({e}) * 0.5 + 0.125;")
    } else if rng.chance(0.25) {
        let i = rng.below(config.int_vars as u64);
        let c = random_int_expr(rng, config, 2);
        let t = random_int_expr(rng, config, 2);
        let f = random_int_expr(rng, config, 2);
        format!("if (({c}) % 7 < 3) i{i} = {t}; else i{i} = {f};")
    } else {
        let i = rng.below(config.int_vars as u64);
        let e = random_int_expr(rng, config, config.max_depth);
        format!("i{i} = ({e}) % 100003;")
    }
}

fn random_int_expr(rng: &mut SplitMix64, config: &GenConfig, depth: u32) -> String {
    if depth == 0 || rng.chance(0.3) {
        return if rng.chance(0.5) {
            format!("i{}", rng.below(config.int_vars as u64))
        } else {
            format!("{}", rng.range(-100, 100))
        };
    }
    let a = random_int_expr(rng, config, depth - 1);
    let b = random_int_expr(rng, config, depth - 1);
    match rng.below(8) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        2 => format!("({a} * {b})"),
        // Division guarded away from zero.
        3 => format!("({a} / (({b}) % 13 + 14))"),
        4 => format!("({a} % (({b}) % 11 + 12))"),
        5 => format!("({a} & {b})"),
        6 => format!("({a} ^ {b})"),
        _ => format!("({a} | {b})"),
    }
}

fn random_dbl_expr(rng: &mut SplitMix64, config: &GenConfig, depth: u32) -> String {
    if depth == 0 || rng.chance(0.35) {
        return if rng.chance(0.6) && config.dbl_vars > 0 {
            format!("d{}", rng.below(config.dbl_vars as u64))
        } else {
            let w = rng.range(-4, 4);
            let f = rng.range(0, 8) as f64 / 8.0;
            format!("{:.6}", w as f64 + f)
        };
    }
    let a = random_dbl_expr(rng, config, depth - 1);
    let b = random_dbl_expr(rng, config, depth - 1);
    match rng.below(3) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        _ => format!("({a} * 0.25 + {b} * 0.125)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::interp::Interp;

    #[test]
    fn generated_programs_compile_and_terminate() {
        let config = GenConfig::default();
        for seed in 0..20 {
            let src = random_program(seed, &config);
            let module = marion_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let mut interp = Interp::new(&module, 1 << 20).with_budget(10_000_000);
            interp
                .call_by_name("main", &[])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::default();
        assert_eq!(random_program(7, &config), random_program(7, &config));
        assert_ne!(random_program(7, &config), random_program(8, &config));
    }
}
