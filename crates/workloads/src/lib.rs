//! # marion-workloads — the evaluation programs
//!
//! The workloads behind the paper's evaluation, written in the
//! C subset that `marion-frontend` accepts:
//!
//! * [`livermore`] — the first fourteen Livermore Loop kernels
//!   (Table 4 compares estimated and actual execution time per kernel
//!   and strategy);
//! * [`suite`] — stand-ins for the paper's compile-time program suite
//!   (NAS Kernel, SPHOT, ARC2D and the Lcc front end), with a
//!   comparable floating-point-loop / integer-branchy mix (Table 3);
//! * [`gen`] — seeded random program generation for stress and
//!   property testing of the whole tool chain.

pub mod gen;
pub mod livermore;
pub mod multi;
pub mod rng;
pub mod suite;

/// A runnable benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (e.g. `LL3`, `nasker`).
    pub name: String,
    /// C-subset source; the entry point is `main`, which returns a
    /// scaled integer checksum so results can be compared exactly.
    pub source: String,
    /// What the program exercises.
    pub description: String,
}

impl Workload {
    /// Compiles the workload's source to IR.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source does not compile — covered by
    /// tests.
    pub fn module(&self) -> marion_ir::Module {
        marion_frontend::compile(&self.source)
            .unwrap_or_else(|e| panic!("workload {}: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::interp::Interp;

    #[test]
    fn all_workloads_compile_and_run_in_the_interpreter() {
        let mut all = livermore::kernels();
        all.extend(suite::programs());
        assert!(all.len() >= 18);
        for w in &all {
            let module = w.module();
            let mut interp = Interp::new(&module, 1 << 22).with_budget(200_000_000);
            let result = interp
                .call_by_name("main", &[])
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(result.is_some(), "{} returns nothing", w.name);
        }
    }

    #[test]
    fn livermore_has_fourteen_kernels() {
        let ks = livermore::kernels();
        assert_eq!(ks.len(), 14);
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(k.name, format!("LL{}", i + 1));
        }
    }
}
