//! Deterministic pseudo-randomness for workload generation.
//!
//! The implementation lives in the shared [`marion_rng`] crate — the
//! workspace's single SplitMix64 — so the program generator, the
//! machine-description generator (`marion-mdgen`) and every test
//! suite draw from the same stream function and seeds can never drift
//! between them. This module re-exports it under the historical path
//! `marion_workloads::rng::SplitMix64`.

pub use marion_rng::{mix64, SplitMix64};
