//! Multi-function workloads: the Livermore kernels linked into one
//! module.
//!
//! Each kernel ships as a single-`main` translation unit; here they
//! are absorbed into one module under `llN_` prefixes, with a driver
//! `main` that calls every kernel and returns the sum of their
//! checksums. The result is the module-shaped workload the parallel
//! per-function compilation path needs — one compilation unit, many
//! independent functions.

use crate::gen::{random_program, GenConfig};
use crate::livermore;
use marion_ir::{BinOp, FuncBuilder, Module};
use marion_maril::Ty;

/// Links the given single-`main` modules into one module with a
/// driver `main` that calls each absorbed entry (prefix `pN_`) in
/// order and returns the sum of their checksums.
fn link_with_driver(units: &[Module], prefixes: &[String]) -> Module {
    let mut module = Module::new();
    let mut entries = Vec::new();
    for (unit, prefix) in units.iter().zip(prefixes) {
        module.absorb(unit, prefix);
        entries.push(format!("{prefix}main"));
    }
    let mut b = FuncBuilder::new("main", Some(Ty::Int));
    let acc = b.new_vreg(Ty::Int);
    let zero = b.const_i(0, Ty::Int);
    b.set_vreg(acc, zero);
    for name in &entries {
        let sym = module.symbol_id(name).expect("absorbed entry");
        let r = b.call(sym, Vec::new(), Ty::Int);
        let cur = b.read_vreg(acc);
        let sum = b.bin(BinOp::Add, cur, r, Ty::Int);
        b.set_vreg(acc, sum);
    }
    let result = b.read_vreg(acc);
    b.ret(Some(result));
    module.add_func(b.finish());
    module
}

/// The first fourteen Livermore kernels linked into one module, plus
/// a driver `main` calling each `llN_main` in order and accumulating
/// an integer checksum.
pub fn combined_livermore() -> Module {
    let kernels = livermore::kernels();
    let units: Vec<Module> = kernels.iter().map(|w| w.module()).collect();
    let prefixes: Vec<String> = kernels
        .iter()
        .map(|w| format!("{}_", w.name.to_lowercase()))
        .collect();
    link_with_driver(&units, &prefixes)
}

/// `count` seeded random programs (seeds `seed..seed + count`) linked
/// into one module with a driver `main` summing their checksums — the
/// generated counterpart of [`combined_livermore`].
pub fn combined_generated(count: u64, seed: u64) -> Module {
    let config = GenConfig::default();
    let units: Vec<Module> = (0..count)
        .map(|i| {
            let src = random_program(seed + i, &config);
            marion_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("generated program seed {}: {e}", seed + i))
        })
        .collect();
    let prefixes: Vec<String> = (0..count).map(|i| format!("g{i}_")).collect();
    link_with_driver(&units, &prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::interp::Interp;

    #[test]
    fn combined_checksum_is_the_sum_of_the_kernels() {
        let mut expected = 0i64;
        for w in livermore::kernels() {
            let module = w.module();
            let mut interp = Interp::new(&module, 1 << 22).with_budget(200_000_000);
            expected += interp
                .call_by_name("main", &[])
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                .expect("kernel main returns a checksum")
                .as_i();
        }
        let module = combined_livermore();
        assert_eq!(module.funcs.len(), 15, "14 kernels + driver main");
        let mut interp = Interp::new(&module, 1 << 23).with_budget(3_000_000_000);
        let got = interp
            .call_by_name("main", &[])
            .expect("combined main")
            .expect("combined main returns a checksum")
            .as_i();
        assert_eq!(got, expected);
    }

    #[test]
    fn combined_generated_links_and_runs() {
        let module = combined_generated(6, 42);
        assert_eq!(module.funcs.len(), 7, "6 generated units + driver main");
        let mut interp = Interp::new(&module, 1 << 22).with_budget(500_000_000);
        interp
            .call_by_name("main", &[])
            .expect("combined generated main")
            .expect("checksum");
    }
}
