//! Pinned reference checksums for the Livermore kernels: any change to
//! a kernel's code or data must be deliberate (every timing experiment
//! in `marion-bench` verifies against these via the interpreter).

use marion_ir::interp::{Interp, Value};

const EXPECTED: &[(&str, i64)] = &[
    ("LL1", 12487),
    ("LL2", 142),
    ("LL3", 113),
    ("LL4", 3190),
    ("LL5", 1218),
    ("LL6", 78),
    ("LL7", 1183),
    ("LL8", 54),
    ("LL9", 2),
    ("LL10", -97),
    ("LL11", 1125),
    ("LL12", 1),
    ("LL13", 1324),
    ("LL14", 19717),
];

#[test]
fn livermore_checksums_are_pinned() {
    let kernels = marion_workloads::livermore::kernels();
    assert_eq!(kernels.len(), EXPECTED.len());
    for (kernel, (name, want)) in kernels.iter().zip(EXPECTED) {
        assert_eq!(kernel.name, *name);
        let module = kernel.module();
        let mut interp = Interp::new(&module, 1 << 22).with_budget(400_000_000);
        let got = interp.call_by_name("main", &[]).unwrap().unwrap();
        assert_eq!(
            got,
            Value::I(*want),
            "{name}: checksum drifted — was the kernel edited?"
        );
    }
}
