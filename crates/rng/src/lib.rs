//! # marion-rng — the workspace's one SplitMix64
//!
//! Every deterministic stream in the repository — workload program
//! generation, machine-description generation (`marion-mdgen`),
//! property-test drivers, and the `StableHasher` finalizer in
//! `marion-cache` — derives from this single implementation.
//! Duplicated copies used to live in `marion-workloads`, `marion-cache`
//! and two test suites; any drift between them would have silently
//! desynchronised fuzzer seeds from their reproducers, so the
//! implementation now has exactly one home.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom
//! number generators", OOPSLA 2014) passes BigCrush for this use: it
//! drives deterministic *generation*, not cryptography or statistics.
//! The same seed always yields the same stream on every platform,
//! which is what differential tests and fuzzing reproducers require.

/// SplitMix64's finalizer: a full-avalanche 64-bit permutation.
///
/// This is the mixing function behind both [`SplitMix64::next_u64`]
/// and the two-lane `StableHasher` in `marion-cache` — the cache's
/// on-disk keys are a defined function of this exact permutation, so
/// its constants must never change.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        // Inline rather than `mix64(self.state)` so the state advance
        // and the permutation stay textually tied to the published
        // algorithm (state += gamma; output = finalize(state)).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); the modulo bias is
    /// far below what program generation could ever observe.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform value in the half-open range `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Derives an independent stream: the child is seeded from the
    /// parent's output, so `fork`ing per work item keeps item streams
    /// stable when the amount of randomness one item consumes changes.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn matches_reference_vector() {
        // Reference values for seed 1234567 from the published
        // SplitMix64 algorithm.
        let mut r = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn stream_and_finalizer_share_the_permutation() {
        // The stream and the exposed finalizer must be the same
        // permutation: cache keys and fuzzer streams share it.
        let seed = 0xDEAD_BEEF_u64;
        let mut r = SplitMix64::new(seed);
        assert_eq!(r.next_u64(), mix64(seed));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.range(-50, 50);
            assert!((-50..50).contains(&v));
            let i = r.index(13);
            assert!(i < 13);
        }
        // chance(0)/chance(1) are degenerate but must not panic.
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(99);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // The parent stream continues past the fork deterministically.
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
