//! Differential testing: every program must produce the same result
//! when (a) interpreted at the IR level and (b) compiled by Marion and
//! executed on the pipeline simulator — for every machine and every
//! code generation strategy.

use marion_core::{Compiler, StrategyKind};
use marion_ir::interp::{Interp, Value};
use marion_machines::load_extended;
use marion_maril::Ty;
use marion_sim::{run_program, SimConfig};

fn check_program(name: &str, src: &str, ret_ty: Ty) {
    let module = marion_frontend::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut interp = Interp::new(&module, 1 << 21);
    let expected = interp
        .call_by_name("main", &[])
        .unwrap_or_else(|e| panic!("{name}: interp: {e}"))
        .expect("main returns a value");
    // The user-visible globals span [64, data_end) in both worlds
    // (pool constants are appended after them by the compiler, so the
    // shared prefix layouts agree).
    let user_data_end = {
        let mut next = 64u32;
        for g in &module.globals {
            next = (next + 7) & !7;
            next += g.init.size().max(1);
        }
        next as usize
    };
    for spec in load_extended() {
        for strategy in StrategyKind::ALL {
            let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
            let program = match compiler.compile_module(&module) {
                Ok(p) => p,
                // TOYP's CWVM passes at most one double parameter
                // (paper Fig. 2); programs needing more are outside
                // that machine's runtime model.
                Err(e) if e.message.contains("parameters") => continue,
                Err(e) => panic!("{name} on {}/{strategy}: {e}", spec.machine.name()),
            };
            let config = SimConfig {
                keep_memory: true,
                ..SimConfig::default()
            };
            let run = run_program(&spec.machine, &program, "main", &[], Some(ret_ty), &config)
                .unwrap_or_else(|e| panic!("{name} on {}/{strategy}: {e}", spec.machine.name()));
            let got = run.result.expect("result");
            let ok = match (expected, got) {
                (Value::I(a), Value::I(b)) => a == b,
                (Value::F(a), Value::F(b)) => (a - b).abs() < 1e-9 * a.abs().max(1.0),
                _ => false,
            };
            assert!(
                ok,
                "{name} on {}/{strategy}: interp {expected:?} != sim {got:?}\n{}",
                spec.machine.name(),
                program.render(&spec.machine)
            );
            // The entire user global area must match byte for byte.
            let sim_mem = run.memory.as_ref().expect("keep_memory");
            if sim_mem[64..user_data_end] != interp.mem[64..user_data_end] {
                let first = (64..user_data_end)
                    .find(|&i| sim_mem[i] != interp.mem[i])
                    .unwrap();
                panic!(
                    "{name} on {}/{strategy}: memory diverges at {first:#x}: \
                     interp {:#04x} sim {:#04x}",
                    spec.machine.name(),
                    interp.mem[first],
                    sim_mem[first]
                );
            }
        }
    }
}

#[test]
fn arithmetic_expressions() {
    check_program(
        "arith",
        "int main() {
            int a = 12345, b = -678;
            return a * 3 - b / 2 + a % 7 + (a << 3) - (a >> 2) + (a & b) + (a | b) + (a ^ b) + ~a + -b;
         }",
        Ty::Int,
    );
}

#[test]
fn loops_and_conditionals() {
    check_program(
        "loops",
        "int main() {
            int i, j, s = 0;
            for (i = 0; i < 20; i++) {
                for (j = 0; j <= i; j++) {
                    if ((i + j) % 3 == 0) s += i * j;
                    else if (i > 10) s -= j;
                }
            }
            while (s > 1000) s /= 2;
            do { s++; } while (s < 100);
            return s;
         }",
        Ty::Int,
    );
}

#[test]
fn double_arithmetic_and_arrays() {
    check_program(
        "doubles",
        "double x[40]; double y[40];
         int main() {
            int i; double s = 0.0;
            for (i = 0; i < 40; i++) { x[i] = i * 0.75 - 3.0; y[i] = 10.0 - i * 0.5; }
            for (i = 0; i < 40; i++) s += x[i] * y[i] + 0.125;
            if (s < 0.0) s = -s;
            return (int)(s * 16.0);
         }",
        Ty::Int,
    );
}

#[test]
fn function_calls_and_recursion() {
    check_program(
        "calls",
        "int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
         int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main() { return gcd(462, 1071) * 100 + fib(10); }",
        Ty::Int,
    );
}

#[test]
fn double_functions_and_args() {
    check_program(
        "dargs",
        "double hypot2(double a, double b) { return a * a + b * b; }
         int main() {
            double h = hypot2(3.0, 4.0);
            return (int)h;
         }",
        Ty::Int,
    );
}

#[test]
fn pointers_and_locals() {
    check_program(
        "ptrs",
        "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
         int main() {
            int x = 3, y = 17;
            int arr[8];
            int i;
            for (i = 0; i < 8; i++) arr[i] = i * i;
            swap(&x, &y);
            return x * 1000 + y * 10 + arr[5];
         }",
        Ty::Int,
    );
}

#[test]
fn float_single_precision() {
    check_program(
        "floats",
        "float frac(float a, float b) { return a / b; }
         int main() {
            float s = 0.0;
            int i;
            for (i = 1; i <= 8; i++) s += frac(1.0, i);
            return (int)(s * 10000.0);
         }",
        Ty::Int,
    );
}

#[test]
fn chars_shorts_and_conversions() {
    check_program(
        "narrow",
        "char cbuf[16]; short sbuf[16];
         int main() {
            int i, s = 0;
            for (i = 0; i < 16; i++) { cbuf[i] = (char)(i * 37); sbuf[i] = (short)(i * 4099); }
            for (i = 0; i < 16; i++) s += cbuf[i] + sbuf[i];
            return s + (int)3.99 + (int)-2.5;
         }",
        Ty::Int,
    );
}

#[test]
fn deep_double_expressions() {
    // Deep dependent chains of multiplies and adds exercise the i860
    // EAP chaining (A1m, dual-operation words) and the %aux latency
    // overrides on the other machines.
    check_program(
        "chains",
        "double a, b, x, y, z;
         double f() { return (x + b) + (a * z); }
         int main() {
            a = 1.5; b = 2.25; x = -0.5; y = 3.0; z = 0.125;
            double r = f() * 8.0 + (a * b) * (x + y + z) + (a + b) * (y * z);
            return (int)(r * 64.0);
         }",
        Ty::Int,
    );
}

#[test]
fn spill_heavy_kernel() {
    // Enough simultaneously-live values to force spills on TOYP's tiny
    // register file.
    check_program(
        "spills",
        "int main() {
            int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
            int i;
            for (i = 0; i < 10; i++) {
                a += b * c; b += c * d; c += d * e; d += e * f;
                e += f * g; f += g * h; g += h * a; h += a * b;
            }
            return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
         }",
        Ty::Int,
    );
}
