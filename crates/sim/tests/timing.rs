//! Timing-model tests: the simulator must charge stalls for
//! interlocks, reward dual issue, and model cache locality — the
//! behaviours Table 4's "actual" column depends on.

use marion_core::{Compiler, StrategyKind};
use marion_machines::load;
use marion_maril::Ty;
use marion_sim::{run_program, CacheConfig, SimConfig, Value};

fn compile_and_run(
    machine: &str,
    strategy: StrategyKind,
    src: &str,
    config: &SimConfig,
) -> (marion_sim::RunResult, usize) {
    let spec = load(machine);
    let module = marion_frontend::compile(src).unwrap();
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
    let program = compiler.compile_module(&module).unwrap();
    let run = run_program(&spec.machine, &program, "main", &[], Some(Ty::Int), config).unwrap();
    (run, program.asm.inst_count())
}

#[test]
fn scheduling_reduces_interlock_stalls() {
    // A load feeding an add chain: NoSchedule leaves the loads right
    // next to their uses; Postpass hoists them. Same machine, same
    // program — the scheduled version must stall less.
    let src = "int a[64];
        int main() {
            int i, s = 0;
            for (i = 0; i < 64; i++) a[i] = i;
            for (i = 0; i < 60; i++)
                s += a[i] * 3 + a[i + 1] * 5 + a[i + 2] * 7 + a[i + 3] * 11;
            return s;
        }";
    let cfg = SimConfig::no_caches();
    let (unsched, _) = compile_and_run("m88k", StrategyKind::NoSchedule, src, &cfg);
    let (sched, _) = compile_and_run("m88k", StrategyKind::Postpass, src, &cfg);
    assert_eq!(unsched.result, sched.result, "same semantics");
    assert!(
        sched.stall_cycles < unsched.stall_cycles,
        "scheduling should cut stalls: {} vs {}",
        sched.stall_cycles,
        unsched.stall_cycles
    );
    assert!(sched.cycles < unsched.cycles);
}

#[test]
fn dual_issue_beats_words_executed() {
    // On the i860, words executed < instructions executed when packing
    // happens; on single-issue TOYP they are equal.
    // Independent multiply/add chains that the i860 can overlap and
    // pack into dual-operation words.
    let src = "double a, b, x, y, c, d2;
        int main() {
            a = 1.5; b = 2.5; x = 0.25; y = 4.0;
            c = 0.0; d2 = 0.0;
            int i;
            for (i = 0; i < 50; i++) {
                c = c + a * b + x;
                d2 = d2 + x * y + b;
            }
            return (int)(c + d2);
        }";
    let cfg = SimConfig::default();
    let (i860, _) = compile_and_run("i860", StrategyKind::Postpass, src, &cfg);
    assert!(
        i860.insts_executed > i860.words_executed,
        "i860 should pack sub-operations: {} insts in {} words",
        i860.insts_executed,
        i860.words_executed
    );
    let (toyp, _) = compile_and_run("toyp", StrategyKind::Postpass, src, &cfg);
    assert_eq!(
        toyp.insts_executed, toyp.words_executed,
        "TOYP is single-issue"
    );
    assert_eq!(i860.result, toyp.result);
}

#[test]
fn cache_misses_cost_cycles_and_locality_pays() {
    let src = "int a[2048];
        int main() {
            int i, s = 0;
            for (i = 0; i < 2048; i++) a[i] = i;
            for (i = 0; i < 2048; i++) s += a[i];
            return s;
        }";
    let cached = SimConfig::default();
    let uncached = SimConfig::no_caches();
    let (with, _) = compile_and_run("r2000", StrategyKind::Postpass, src, &cached);
    let (without, _) = compile_and_run("r2000", StrategyKind::Postpass, src, &uncached);
    assert_eq!(with.result, without.result);
    assert!(with.miss_cycles > 0);
    assert_eq!(without.miss_cycles, 0);
    assert!(with.cycles > without.cycles);
    // Sequential access: most accesses hit (line size 16 = 4 ints, so
    // ≤ 1 miss per 4 loads on the second sweep).
    let loads = 2048 * 2;
    let penalty = CacheConfig::default().miss_penalty as u64;
    assert!(
        with.miss_cycles < loads / 2 * penalty,
        "locality should keep miss cycles low: {}",
        with.miss_cycles
    );
}

#[test]
fn structural_hazards_serialise_the_divider() {
    // Two independent divides on ZEPHYR-like machines fight over the
    // divider; measure against two independent adds.
    let divs = "int main() {
        int a = 1000, b = 7, c = 2000, d2 = 11;
        int i, s = 0;
        for (i = 0; i < 30; i++) s += a / b + c / d2;
        return s;
    }";
    let adds = "int main() {
        int a = 1000, b = 7, c = 2000, d2 = 11;
        int i, s = 0;
        for (i = 0; i < 30; i++) s += a + b + c + d2;
        return s;
    }";
    let cfg = SimConfig::no_caches();
    let (dv, _) = compile_and_run("r2000", StrategyKind::Postpass, divs, &cfg);
    let (ad, _) = compile_and_run("r2000", StrategyKind::Postpass, adds, &cfg);
    assert!(
        dv.cycles > ad.cycles * 3,
        "divides should dominate: {} vs {}",
        dv.cycles,
        ad.cycles
    );
}

#[test]
fn recursion_depth_and_stack_discipline() {
    // Deep recursion exercises prologue/epilogue, the return-address
    // save slot and stack growth.
    let src = "int sum(int n) { if (n == 0) return 0; return n + sum(n - 1); }
               int main() { return sum(300); }";
    let cfg = SimConfig::default();
    for machine in ["toyp", "r2000", "i860", "rs6000"] {
        let (run, _) = compile_and_run(machine, StrategyKind::Ips, src, &cfg);
        assert_eq!(
            run.result,
            Some(Value::I(300 * 301 / 2)),
            "wrong sum on {machine}"
        );
    }
}

#[test]
fn block_counts_reflect_the_trip_counts() {
    let src = "int main() {
        int i, s = 0;
        for (i = 0; i < 37; i++) s += i;
        return s;
    }";
    let spec = load("r2000");
    let module = marion_frontend::compile(src).unwrap();
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    let run = run_program(
        &spec.machine,
        &program,
        "main",
        &[],
        Some(Ty::Int),
        &SimConfig::default(),
    )
    .unwrap();
    // Some block must have executed exactly 37 times (the loop body).
    assert!(
        run.block_counts.values().any(|&c| c == 37),
        "{:?}",
        run.block_counts
    );
    // And the whole-program estimate uses those counts.
    let est = marion_sim::run::estimated_cycles(&program, &run.block_counts);
    assert!(est > 37);
}
