//! # marion-sim — a pipeline-accurate simulator for Marion targets
//!
//! Executes programs emitted by `marion-core` both *functionally*
//! (evaluating each instruction's Maril semantic expressions, so
//! generated code can be differentially tested against the
//! `marion-ir` reference interpreter) and *temporally* (an in-order
//! model driven by the same resource vectors and latencies the
//! scheduler used, plus interlock stalls and optional instruction/data
//! caches).
//!
//! The paper's Table 4 compares scheduler-estimated cycles against
//! *actual* execution time on hardware; the estimates ignore cache
//! misses, so actual/estimated ratios sit a little above 1.0. This
//! simulator reproduces that shape: with caches enabled, measured
//! cycles exceed the per-block estimates by realistic stall and miss
//! overheads.
//!
//! Explicitly advanced pipelines execute with per-word tick
//! semantics: all sub-operations of a long instruction word read the
//! machine state from before the word, then commit their writes —
//! the latch behaviour Rule 1 assumes.

pub mod exec;
pub mod regs;
pub mod run;

pub use marion_ir::interp::Value;
pub use run::{run_program, CacheConfig, RunResult, SimConfig, Simulator};

use std::error::Error;
use std::fmt;

/// A simulation fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError(pub String);

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation fault: {}", self.0)
    }
}

impl Error for SimError {}

pub(crate) fn fault<T>(msg: impl Into<String>) -> Result<T, SimError> {
    Err(SimError(msg.into()))
}
