//! Program loading and the in-order timing loop.

use crate::exec::{write_mem, Control, Effects, ExecCtx};
use crate::regs::RegFile;
use crate::{fault, SimError, Value};
use marion_core::{AsmInst, CompiledProgram};
use marion_maril::{Machine, ResSet, Ty};
use std::collections::HashMap;

/// A direct-mapped cache model: hit or miss per access, fixed miss
/// penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of lines.
    pub lines: u32,
    /// Line size in bytes (or words, for the instruction cache).
    pub line_bytes: u32,
    /// Cycles added on a miss.
    pub miss_penalty: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            lines: 256,
            line_bytes: 16,
            miss_penalty: 6,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Bytes of simulated memory.
    pub mem_size: u32,
    /// Optional instruction cache (indexed by word address).
    pub icache: Option<CacheConfig>,
    /// Optional data cache.
    pub dcache: Option<CacheConfig>,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Return the final memory image in [`RunResult::memory`]
    /// (differential tests compare it against the reference
    /// interpreter's).
    pub keep_memory: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem_size: 1 << 21,
            icache: Some(CacheConfig::default()),
            dcache: Some(CacheConfig::default()),
            max_cycles: 2_000_000_000,
            keep_memory: false,
        }
    }
}

impl SimConfig {
    /// A configuration with no caches: actual cycles then reflect only
    /// interlock stalls (useful for testing the scheduler's estimate).
    pub fn no_caches() -> SimConfig {
        SimConfig {
            icache: None,
            dcache: None,
            ..SimConfig::default()
        }
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instruction words issued.
    pub words_executed: u64,
    /// Machine instructions (sub-operations) executed — the dilation
    /// numerator.
    pub insts_executed: u64,
    /// Cycles lost to interlock and resource stalls.
    pub stall_cycles: u64,
    /// Cycles lost to cache misses.
    pub miss_cycles: u64,
    /// `nop` sub-operations retired (unfilled delay slots executed).
    pub nops_retired: u64,
    /// The entry function's return value, read from the integer
    /// result register (see also [`RunResult::fp_result`]).
    pub result: Option<Value>,
    /// The value of the floating result register at exit.
    pub fp_result: Option<Value>,
    /// Execution count per (function index, block index).
    pub block_counts: HashMap<(usize, usize), u64>,
    /// The final memory image, when [`SimConfig::keep_memory`] is set.
    pub memory: Option<Vec<u8>>,
}

impl RunResult {
    /// The paper's *dilation*: instructions executed / instructions
    /// generated.
    pub fn dilation(&self, program: &CompiledProgram) -> f64 {
        self.insts_executed as f64 / program.asm.inst_count().max(1) as f64
    }
}

/// The scheduler's whole-run cycle estimate: Σ over blocks of
/// (per-execution estimate × execution count). This is exactly how the
/// paper derives estimated times (block costs × profiled frequencies,
/// no cache effects).
pub fn estimated_cycles(program: &CompiledProgram, counts: &HashMap<(usize, usize), u64>) -> u64 {
    let mut total = 0u64;
    for ((f, b), n) in counts {
        if let Some(block) = program
            .asm
            .funcs
            .get(*f)
            .and_then(|func| func.blocks.get(*b))
        {
            total += block.est_cycles as u64 * n;
        }
    }
    total
}

/// A loaded program ready to run.
pub struct Simulator<'a> {
    machine: &'a Machine,
    program: &'a CompiledProgram,
    /// Flat code: (func index, block index, word index).
    flat: Vec<(usize, usize, usize)>,
    /// Flat index of each (func, block) start.
    block_start: Vec<Vec<usize>>,
    /// Flat entry index per function index.
    func_entry: Vec<usize>,
    /// Function index by symbol id (functions only).
    func_of_symbol: HashMap<u32, usize>,
    /// Data address by symbol index.
    sym_addrs: Vec<Option<u32>>,
    /// First address past the globals.
    data_end: u32,
}

impl<'a> Simulator<'a> {
    /// Loads a compiled program: flattens code and lays out globals.
    pub fn new(machine: &'a Machine, program: &'a CompiledProgram) -> Simulator<'a> {
        let mut flat = Vec::new();
        let mut block_start = Vec::new();
        let mut func_entry = Vec::new();
        for (fi, func) in program.asm.funcs.iter().enumerate() {
            func_entry.push(flat.len());
            let mut starts = Vec::new();
            for (bi, block) in func.blocks.iter().enumerate() {
                starts.push(flat.len());
                for wi in 0..block.words.len() {
                    flat.push((fi, bi, wi));
                }
                // An empty block still needs a landing point; point it
                // at the next word.
            }
            block_start.push(starts);
        }
        // Globals.
        let mut sym_addrs = vec![None; program.symbols.len()];
        let mut next = 64u32;
        let mut by_name: HashMap<&str, u32> = HashMap::new();
        for (name, init) in &program.globals {
            next = (next + 7) & !7;
            by_name.insert(name.as_str(), next);
            next += init.size().max(1);
        }
        let mut func_of_symbol = HashMap::new();
        for (si, name) in program.symbols.iter().enumerate() {
            if let Some(addr) = by_name.get(name.as_str()) {
                sym_addrs[si] = Some(*addr);
            }
            if let Some(fi) = program.asm.funcs.iter().position(|f| f.name == *name) {
                func_of_symbol.insert(si as u32, fi);
            }
        }
        Simulator {
            machine,
            program,
            flat,
            block_start,
            func_entry,
            func_of_symbol,
            sym_addrs,
            data_end: next,
        }
    }

    fn word(&self, idx: usize) -> &'a [AsmInst] {
        let (f, b, w) = self.flat[idx];
        &self.program.asm.funcs[f].blocks[b].words[w].insts
    }

    /// Runs `entry(args)` to completion.
    ///
    /// # Errors
    ///
    /// Faults on unknown entry, runtime errors (bad addresses,
    /// division by zero) or cycle-budget exhaustion.
    pub fn run(
        &self,
        entry: &str,
        args: &[Value],
        config: &SimConfig,
    ) -> Result<RunResult, SimError> {
        let Some(entry_fi) = self.program.asm.funcs.iter().position(|f| f.name == entry) else {
            return fault(format!("no function `{entry}`"));
        };
        let halt = self.flat.len();
        let cwvm = self.machine.cwvm();
        let mut regs = RegFile::new(self.machine);
        let mut mem = vec![0u8; config.mem_size as usize];
        if (self.data_end as usize) >= mem.len() {
            return fault("memory too small for globals");
        }
        // Globals image.
        {
            let mut next = 64u32;
            for (_, init) in &self.program.globals {
                next = (next + 7) & !7;
                let bytes = init.bytes();
                mem[next as usize..next as usize + bytes.len()].copy_from_slice(&bytes);
                next += init.size().max(1);
            }
        }
        // ABI setup.
        let sp = cwvm.sp.ok_or_else(|| SimError("no stack pointer".into()))?;
        regs.write(
            self.machine,
            sp,
            Value::I((config.mem_size as i64 - 64) & !15),
        );
        if let Some(fp) = cwvm.fp {
            regs.write(
                self.machine,
                fp,
                Value::I((config.mem_size as i64 - 64) & !15),
            );
        }
        let ra = cwvm
            .retaddr
            .ok_or_else(|| SimError("no return-address register".into()))?;
        regs.write(self.machine, ra, Value::I(halt as i64));
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        for arg in args {
            let (ty, used) = match arg {
                Value::I(_) => (Ty::Int, &mut int_used),
                Value::F(_) => (Ty::Double, &mut fp_used),
            };
            let arg_regs = cwvm.arg_regs(ty);
            let Some(reg) = arg_regs.get(*used).copied() else {
                return fault("too many simulated arguments");
            };
            *used += 1;
            regs.write(self.machine, reg, *arg);
        }

        // Timing state.
        let mut unit_ready: HashMap<u32, (u64, usize, usize)> = HashMap::new();
        let mut resource_window: Vec<(u64, ResSet)> = vec![(u64::MAX, ResSet::EMPTY); 64];
        let mut icache_tags: Vec<u64> = config
            .icache
            .map(|c| vec![u64::MAX; c.lines as usize])
            .unwrap_or_default();
        let mut dcache_tags: Vec<u64> = config
            .dcache
            .map(|c| vec![u64::MAX; c.lines as usize])
            .unwrap_or_default();

        let mut result = RunResult {
            cycles: 0,
            words_executed: 0,
            insts_executed: 0,
            stall_cycles: 0,
            miss_cycles: 0,
            nops_retired: 0,
            result: None,
            fp_result: None,
            block_counts: HashMap::new(),
            memory: None,
        };
        // Flat index -> block head marker for counting.
        let mut head_of: HashMap<usize, (usize, usize)> = HashMap::new();
        for (fi, starts) in self.block_start.iter().enumerate() {
            for (bi, s) in starts.iter().enumerate() {
                // Skip empty blocks (their start equals the next
                // block's start; counting the later block is enough).
                let nonempty = !self.program.asm.funcs[fi].blocks[bi].words.is_empty();
                if nonempty {
                    head_of.entry(*s).or_insert((fi, bi));
                }
            }
        }

        let nop_template = self.machine.nop_template();
        let mut pc = self.func_entry[entry_fi];
        let mut cycle: u64 = 0;
        // Pending redirect: take effect after `countdown` more words.
        let mut redirect: Option<(u32, usize)> = None;

        while pc != halt {
            if pc > self.flat.len() {
                return fault(format!("pc {pc} out of range"));
            }
            if cycle > config.max_cycles {
                return fault(format!("cycle budget exhausted at {cycle}"));
            }
            if let Some(&(fi, bi)) = head_of.get(&pc) {
                *result.block_counts.entry((fi, bi)).or_insert(0) += 1;
            }
            let insts = self.word(pc);
            if std::env::var("MARION_SIM_TRACE").is_ok() && result.words_executed < 200 {
                let (fi, bi, wi) = self.flat[pc];
                let word = &self.program.asm.funcs[fi].blocks[bi].words[wi];
                eprintln!(
                    "[{cycle}] pc={pc} {}.b{bi}.w{wi}: {}",
                    self.program.asm.funcs[fi].name,
                    marion_core::emit::render_word(self.machine, word, &self.program.symbols, "f")
                );
            }

            // ---- timing: operand interlocks ----
            let mut issue = cycle;
            for inst in insts {
                let t = self.machine.template(inst.template);
                for k in &t.effects.uses {
                    if let Some(marion_core::Operand::Phys(p)) = inst.ops.get((*k - 1) as usize) {
                        for u in self.machine.units_of(*p) {
                            if let Some(&(pissue, pflat, pinst)) = unit_ready.get(&u) {
                                let producer = &self.word(pflat)[pinst];
                                let lat = self.machine.edge_latency(
                                    producer.template,
                                    inst.template,
                                    &|a, b| {
                                        producer.ops.get((a - 1) as usize)
                                            == inst.ops.get((b - 1) as usize)
                                    },
                                );
                                issue = issue.max(pissue + lat as u64);
                            }
                        }
                    }
                }
            }
            // ---- timing: structural hazards ----
            'outer: loop {
                for inst in insts {
                    let t = self.machine.template(inst.template);
                    for (c, need) in t.rsrc.iter().enumerate() {
                        let at = issue + c as u64;
                        let slot = &resource_window[(at % 64) as usize];
                        if slot.0 == at && slot.1.intersects(need) {
                            issue += 1;
                            continue 'outer;
                        }
                    }
                }
                break;
            }
            // ---- timing: instruction cache ----
            if let Some(ic) = config.icache {
                let line = pc as u64 / (ic.line_bytes as u64).max(1);
                let idx = (line % ic.lines as u64) as usize;
                if icache_tags[idx] != line {
                    icache_tags[idx] = line;
                    issue += ic.miss_penalty as u64;
                    result.miss_cycles += ic.miss_penalty as u64;
                }
            }
            result.stall_cycles += issue - cycle;

            // Commit resources.
            for inst in insts {
                let t = self.machine.template(inst.template);
                for (c, need) in t.rsrc.iter().enumerate() {
                    let at = issue + c as u64;
                    let slot = &mut resource_window[(at % 64) as usize];
                    if slot.0 != at {
                        *slot = (at, *need);
                    } else {
                        slot.1.union_with(need);
                    }
                }
            }

            // ---- functional execution (pre-word state) ----
            let mut fx = Effects::default();
            {
                let ctx = ExecCtx {
                    machine: self.machine,
                    regs: &regs,
                    mem: &mem,
                    sym_addrs: &self.sym_addrs,
                };
                for inst in insts {
                    ctx.exec_inst(inst, &mut fx)
                        .map_err(|e| SimError(format!("at {}+{pc}: {e}", entry)))?;
                }
            }
            // ---- data cache ----
            let mut load_extra = 0u64;
            if let Some(dc) = config.dcache {
                for addr in &fx.mem_reads {
                    let line = *addr as u64 / dc.line_bytes as u64;
                    let idx = (line % dc.lines as u64) as usize;
                    if dcache_tags[idx] != line {
                        dcache_tags[idx] = line;
                        load_extra += dc.miss_penalty as u64;
                        result.miss_cycles += dc.miss_penalty as u64;
                    }
                }
                for (addr, _, _) in &fx.mem_writes {
                    let line = *addr as u64 / dc.line_bytes as u64;
                    let idx = (line % dc.lines as u64) as usize;
                    if dcache_tags[idx] != line {
                        dcache_tags[idx] = line;
                        // Write-allocate, but stores don't stall the
                        // pipe (write buffer).
                    }
                }
            }

            // ---- commit ----
            for (reg, units) in &fx.raw_writes {
                regs.write_units(self.machine, *reg, units);
                for u in self.machine.units_of(*reg) {
                    unit_ready.insert(u, (issue, pc, 0));
                }
            }
            for (i, inst) in insts.iter().enumerate() {
                let t = self.machine.template(inst.template);
                let extra = if t.effects.reads_mem { load_extra } else { 0 };
                for k in &t.effects.defs {
                    if let Some(marion_core::Operand::Phys(p)) = inst.ops.get((*k - 1) as usize) {
                        for u in self.machine.units_of(*p) {
                            unit_ready.insert(u, (issue + extra, pc, i));
                        }
                    }
                }
            }
            for (reg, value) in &fx.reg_writes {
                regs.write(self.machine, *reg, *value);
            }
            for (latch, value) in &fx.latch_writes {
                regs.write_latch(*latch, *value);
            }
            for (addr, value, ty) in &fx.mem_writes {
                write_mem(&mut mem, *addr, *value, *ty).map_err(SimError)?;
            }
            result.words_executed += 1;
            result.insts_executed += insts.len() as u64;
            if let Some(nop) = nop_template {
                result.nops_retired += insts.iter().filter(|i| i.template == nop).count() as u64;
            }

            // ---- control ----
            let slots_here: u32 = insts
                .iter()
                .map(|i| self.machine.template(i.template).slots.unsigned_abs())
                .max()
                .unwrap_or(0);
            let (fi, _, _) = self.flat[pc];
            let new_target = match fx.control {
                None => None,
                Some(Control::Branch(b)) => Some(self.block_target(fi, b.0 as usize)?),
                Some(Control::Call(sym)) => {
                    let callee = self.func_of_symbol.get(&sym.0).copied().ok_or_else(|| {
                        SimError(format!(
                            "call to undefined function `{}`",
                            self.program.symbols[sym.0 as usize]
                        ))
                    })?;
                    // The return address points past the delay slots.
                    let ret_to = pc + 1 + slots_here as usize;
                    regs.write(self.machine, ra, Value::I(ret_to as i64));
                    Some(self.func_entry[callee])
                }
                Some(Control::Return) => {
                    let target = regs.read(self.machine, ra).as_i();
                    if target as usize > halt || target < 0 {
                        return fault(format!("return to invalid address {target}"));
                    }
                    Some(target as usize)
                }
            };
            if let Some(target) = new_target {
                redirect = Some((slots_here, target));
            }

            // Advance.
            cycle = issue + 1;
            match &mut redirect {
                Some((0, target)) => {
                    pc = *target;
                    redirect = None;
                }
                Some((countdown, _)) => {
                    *countdown -= 1;
                    pc += 1;
                }
                None => pc += 1,
            }
        }
        result.cycles = cycle;
        // Entry return value: capture both result registers.
        result.result = self
            .machine
            .cwvm()
            .result_reg(Ty::Int)
            .map(|r| regs.read(self.machine, r));
        result.fp_result = self
            .machine
            .cwvm()
            .result_reg(Ty::Double)
            .map(|r| regs.read(self.machine, r));
        if config.keep_memory {
            result.memory = Some(mem);
        }
        Ok(result)
    }

    fn block_target(&self, func: usize, block: usize) -> Result<usize, SimError> {
        // An empty block's start equals the next block's start, which
        // is where execution should land anyway.
        self.block_start
            .get(func)
            .and_then(|s| s.get(block))
            .copied()
            .ok_or_else(|| SimError(format!("branch to unknown block b{block}")))
    }
}

/// Convenience wrapper: load, run, and type the result by the entry
/// point's return type.
///
/// # Errors
///
/// See [`Simulator::run`].
pub fn run_program(
    machine: &Machine,
    program: &CompiledProgram,
    entry: &str,
    args: &[Value],
    ret_ty: Option<Ty>,
    config: &SimConfig,
) -> Result<RunResult, SimError> {
    let sim = Simulator::new(machine, program);
    let mut result = sim.run(entry, args, config)?;
    result.result = match ret_ty {
        None => None,
        Some(ty) if ty.is_float() => result.fp_result,
        Some(_) => result.result,
    };
    Ok(result)
}
