//! Functional execution of instruction semantics.
//!
//! Each instruction's behaviour is its Maril semantic expression —
//! the same trees the selector matched — evaluated against the
//! simulated register file, latches and memory. A whole instruction
//! word reads pre-word state and commits afterwards (EAP tick
//! semantics).

use crate::regs::RegFile;
use crate::{fault, SimError};
use marion_core::{AsmInst, ImmVal, Operand};
use marion_ir::interp::{binop, compare, convert, Value};
use marion_maril::expr::{LValue, Stmt};
use marion_maril::{Builtin, Expr, Machine, PhysReg, Ty};

/// A control-flow event produced by an instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Control {
    /// Conditional/unconditional branch to a block of the current
    /// function.
    Branch(marion_ir::BlockId),
    /// Call to a function symbol.
    Call(marion_ir::SymbolId),
    /// Return to the address in the return-address register.
    Return,
}

/// The buffered effects of one instruction word.
#[derive(Debug, Default)]
pub struct Effects {
    /// Register writes to commit.
    pub reg_writes: Vec<(PhysReg, Value)>,
    /// Raw register writes (bit-exact moves), captured pre-word.
    pub raw_writes: Vec<(PhysReg, Vec<u32>)>,
    /// Temporal latch writes to commit.
    pub latch_writes: Vec<(usize, f64)>,
    /// Memory writes: (address, value, width type).
    pub mem_writes: Vec<(u32, Value, Ty)>,
    /// Memory addresses read (for the data cache model).
    pub mem_reads: Vec<u32>,
    /// Control event, if any.
    pub control: Option<Control>,
}

/// Evaluation context for one instruction.
pub struct ExecCtx<'a> {
    /// The machine description.
    pub machine: &'a Machine,
    /// Registers and latches (pre-word state).
    pub regs: &'a RegFile,
    /// Memory (pre-word state).
    pub mem: &'a [u8],
    /// Resolved data symbol addresses by symbol index.
    pub sym_addrs: &'a [Option<u32>],
}

impl<'a> ExecCtx<'a> {
    fn operand_value(&self, inst: &AsmInst, k: u8) -> Result<Value, SimError> {
        let Some(op) = inst.ops.get((k - 1) as usize) else {
            return fault(format!("operand ${k} missing"));
        };
        match op {
            Operand::Phys(p) => Ok(self.regs.read(self.machine, *p)),
            Operand::Imm(imm) => Ok(Value::I(self.imm_value(*imm)?)),
            other => fault(format!("operand {other} used as data")),
        }
    }

    fn imm_value(&self, imm: ImmVal) -> Result<i64, SimError> {
        Ok(match imm {
            ImmVal::Const(v) => v,
            ImmVal::Sym(s, a) => self.sym_addr(s)? as i64 + a,
            ImmVal::SymHigh(s, a) => ((self.sym_addr(s)? as i64 + a) >> 16) & 0xffff,
            ImmVal::SymLow(s, a) => (self.sym_addr(s)? as i64 + a) & 0xffff,
        })
    }

    fn sym_addr(&self, s: marion_ir::SymbolId) -> Result<u32, SimError> {
        self.sym_addrs
            .get(s.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| SimError(format!("symbol {s} has no data address")))
    }

    fn eval(&self, inst: &AsmInst, width: Ty, e: &Expr) -> Result<Value, SimError> {
        match e {
            Expr::Operand(k) => self.operand_value(inst, *k),
            Expr::Int(v) => Ok(Value::I(*v)),
            Expr::Temporal(name) => {
                let id = self
                    .machine
                    .temporal_by_name(name)
                    .ok_or_else(|| SimError(format!("unknown latch {name}")))?;
                Ok(Value::F(self.regs.read_latch(id.0 as usize)))
            }
            Expr::Mem(_, addr) => {
                let a = self.eval(inst, width, addr)?.as_i() as u32;
                read_mem(self.mem, a, width).map_err(SimError)
            }
            Expr::Bin(op, a, b) => {
                let l = self.eval(inst, width, a)?;
                let r = self.eval(inst, width, b)?;
                let ty = self
                    .machine
                    .template(inst.template)
                    .ty
                    .unwrap_or(Ty::Double);
                binop(*op, l, r, ty).map_err(|e| SimError(e.to_string()))
            }
            Expr::Un(op, a) => {
                let v = self.eval(inst, width, a)?;
                Ok(match (op, v) {
                    (marion_maril::UnOp::Neg, Value::I(x)) => {
                        Value::I(x.wrapping_neg() as i32 as i64)
                    }
                    (marion_maril::UnOp::Neg, Value::F(x)) => {
                        let ty = self
                            .machine
                            .template(inst.template)
                            .ty
                            .unwrap_or(Ty::Double);
                        Value::F(if ty == Ty::Float {
                            (-x) as f32 as f64
                        } else {
                            -x
                        })
                    }
                    (marion_maril::UnOp::Not, Value::I(x)) => Value::I(!x as i32 as i64),
                    (marion_maril::UnOp::Not, Value::F(_)) => {
                        return fault("bitwise not on float");
                    }
                })
            }
            Expr::Call(b, a) => {
                let v = self.eval(inst, width, a)?.as_i();
                Ok(Value::I(match b {
                    Builtin::High => ((v as u32) >> 16) as i64,
                    Builtin::Low => (v as u32 & 0xffff) as i64,
                    Builtin::Eval => v,
                }))
            }
            Expr::Convert(to, a) => {
                let v = self.eval(inst, width, a)?;
                let from = match v {
                    Value::I(_) => Ty::Int,
                    Value::F(_) => Ty::Double,
                };
                Ok(convert(v, from, *to))
            }
        }
    }

    /// Executes one instruction's semantics, buffering its effects.
    ///
    /// # Errors
    ///
    /// Faults on invalid memory accesses, division by zero, malformed
    /// operands.
    pub fn exec_inst(&self, inst: &AsmInst, out: &mut Effects) -> Result<(), SimError> {
        let t = self.machine.template(inst.template);
        let width = t.ty.unwrap_or(Ty::Int);

        // Register moves are raw bit copies: half-moves shuttle the
        // raw words of a double and must not round through f32.
        if let [Stmt::Assign(LValue::Operand(a), Expr::Operand(b))] = t.sem.as_slice() {
            if let (Some(Operand::Phys(d)), Some(Operand::Phys(s))) = (
                inst.ops.get((*a - 1) as usize),
                inst.ops.get((*b - 1) as usize),
            ) {
                let dw = self.machine.units_of(*d).count();
                let sw = self.machine.units_of(*s).count();
                if dw == sw {
                    out.raw_writes
                        .push((*d, self.regs.read_units(self.machine, *s)));
                    return Ok(());
                }
            }
        }

        for stmt in &t.sem {
            match stmt {
                Stmt::Nop => {}
                Stmt::Assign(lv, rhs) => {
                    // Track load addresses for the cache model.
                    collect_mem_reads(self, inst, width, rhs, &mut out.mem_reads)?;
                    let value = self.eval(inst, width, rhs)?;
                    match lv {
                        LValue::Operand(k) => {
                            let Some(Operand::Phys(p)) = inst.ops.get((*k - 1) as usize) else {
                                return fault(format!("def operand ${k} is not physical"));
                            };
                            out.reg_writes.push((*p, value));
                        }
                        LValue::Temporal(name) => {
                            let id = self
                                .machine
                                .temporal_by_name(name)
                                .ok_or_else(|| SimError(format!("unknown latch {name}")))?;
                            let f = match value {
                                Value::F(v) => v,
                                Value::I(v) => v as f64,
                            };
                            out.latch_writes.push((id.0 as usize, f));
                        }
                        LValue::Mem(_, addr) => {
                            collect_mem_reads(self, inst, width, addr, &mut out.mem_reads)?;
                            let a = self.eval(inst, width, addr)?.as_i() as u32;
                            out.mem_writes.push((a, value, width));
                        }
                    }
                }
                Stmt::CondGoto {
                    rel,
                    lhs,
                    rhs,
                    target,
                } => {
                    let l = self.eval(inst, width, lhs)?;
                    let r = self.eval(inst, width, rhs)?;
                    if compare(*rel, l, r).map_err(|e| SimError(e.to_string()))? {
                        let Some(Operand::Block(b)) = inst.ops.get((*target - 1) as usize) else {
                            return fault("branch target is not a block");
                        };
                        out.control = Some(Control::Branch(*b));
                    }
                }
                Stmt::Goto(k) => {
                    let Some(Operand::Block(b)) = inst.ops.get((*k - 1) as usize) else {
                        return fault("goto target is not a block");
                    };
                    out.control = Some(Control::Branch(*b));
                }
                Stmt::Call(k) => {
                    let Some(Operand::Func(s)) = inst.ops.get((*k - 1) as usize) else {
                        return fault("call target is not a function");
                    };
                    out.control = Some(Control::Call(*s));
                }
                Stmt::Return => {
                    out.control = Some(Control::Return);
                }
            }
        }
        Ok(())
    }
}

fn collect_mem_reads(
    ctx: &ExecCtx<'_>,
    inst: &AsmInst,
    width: Ty,
    e: &Expr,
    out: &mut Vec<u32>,
) -> Result<(), SimError> {
    match e {
        Expr::Mem(_, addr) => {
            let a = ctx.eval(inst, width, addr)?.as_i() as u32;
            out.push(a);
            Ok(())
        }
        Expr::Bin(_, a, b) => {
            collect_mem_reads(ctx, inst, width, a, out)?;
            collect_mem_reads(ctx, inst, width, b, out)
        }
        Expr::Un(_, a) | Expr::Call(_, a) | Expr::Convert(_, a) => {
            collect_mem_reads(ctx, inst, width, a, out)
        }
        _ => Ok(()),
    }
}

/// Reads a typed value from simulated memory.
///
/// # Errors
///
/// Returns a message on out-of-range access.
pub fn read_mem(mem: &[u8], addr: u32, ty: Ty) -> Result<Value, String> {
    let size = ty.size() as usize;
    let a = addr as usize;
    if a + size > mem.len() || addr < 64 {
        return Err(format!("load from invalid address {addr:#x}"));
    }
    Ok(match ty {
        Ty::Char => Value::I(mem[a] as i8 as i64),
        Ty::Short => Value::I(i16::from_le_bytes([mem[a], mem[a + 1]]) as i64),
        Ty::Int | Ty::Long | Ty::Ptr => {
            Value::I(i32::from_le_bytes(mem[a..a + 4].try_into().unwrap()) as i64)
        }
        Ty::Float => Value::F(f32::from_le_bytes(mem[a..a + 4].try_into().unwrap()) as f64),
        Ty::Double => Value::F(f64::from_le_bytes(mem[a..a + 8].try_into().unwrap())),
    })
}

/// Writes a typed value to simulated memory.
///
/// # Errors
///
/// Returns a message on out-of-range access.
pub fn write_mem(mem: &mut [u8], addr: u32, value: Value, ty: Ty) -> Result<(), String> {
    let size = ty.size() as usize;
    let a = addr as usize;
    if a + size > mem.len() || addr < 64 {
        return Err(format!("store to invalid address {addr:#x}"));
    }
    match ty {
        Ty::Char => mem[a] = value.as_i() as u8,
        Ty::Short => mem[a..a + 2].copy_from_slice(&(value.as_i() as i16).to_le_bytes()),
        Ty::Int | Ty::Long | Ty::Ptr => {
            mem[a..a + 4].copy_from_slice(&(value.as_i() as i32).to_le_bytes());
        }
        Ty::Float => mem[a..a + 4].copy_from_slice(&(value.as_f() as f32).to_le_bytes()),
        Ty::Double => mem[a..a + 8].copy_from_slice(&value.as_f().to_le_bytes()),
    }
    Ok(())
}
