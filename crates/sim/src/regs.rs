//! The simulated register file, at register-unit granularity.
//!
//! `%equiv` overlays mean one architectural value can span several
//! 32-bit units (a TOYP double covers two integer registers); storing
//! per-unit words makes aliasing exact: writing `d1` changes what
//! `r2`/`r3` read and vice versa, and `*func` half-moves are raw
//! 32-bit copies.

use marion_ir::interp::Value;
use marion_maril::{Machine, PhysReg};

/// The register file: one 32-bit word per register unit, plus the
/// temporal latches of explicitly advanced pipelines.
#[derive(Debug, Clone)]
pub struct RegFile {
    units: Vec<u32>,
    latches: Vec<f64>,
}

impl RegFile {
    /// Creates a zeroed register file for `machine`.
    pub fn new(machine: &Machine) -> RegFile {
        RegFile {
            units: vec![0; machine.unit_count() as usize],
            latches: vec![0.0; machine.temporals().len()],
        }
    }

    /// Whether a class holds floating values.
    pub fn is_fp_class(machine: &Machine, reg: PhysReg) -> bool {
        machine
            .reg_class(reg.class)
            .tys
            .iter()
            .all(|t| t.is_float())
    }

    /// Reads a register as a typed value. Width-1 fp registers hold
    /// f32 bits; width-2 fp registers hold f64 bits; integer registers
    /// hold i32.
    pub fn read(&self, machine: &Machine, reg: PhysReg) -> Value {
        let units: Vec<u32> = machine
            .units_of(reg)
            .map(|u| self.units[u as usize])
            .collect();
        if Self::is_fp_class(machine, reg) {
            match units.len() {
                1 => Value::F(f32::from_bits(units[0]) as f64),
                _ => {
                    let bits = (units[1] as u64) << 32 | units[0] as u64;
                    Value::F(f64::from_bits(bits))
                }
            }
        } else {
            match units.len() {
                1 => Value::I(units[0] as i32 as i64),
                _ => {
                    let bits = (units[1] as u64) << 32 | units[0] as u64;
                    // Wide integer registers are only used for doubles
                    // stored in general register pairs.
                    Value::F(f64::from_bits(bits))
                }
            }
        }
    }

    /// Writes a typed value to a register.
    pub fn write(&mut self, machine: &Machine, reg: PhysReg, value: Value) {
        let unit_ids: Vec<u32> = machine.units_of(reg).collect();
        match (unit_ids.len(), value) {
            (1, Value::I(v)) => self.units[unit_ids[0] as usize] = v as u32,
            (1, Value::F(v)) => self.units[unit_ids[0] as usize] = (v as f32).to_bits(),
            (_, Value::F(v)) => {
                let bits = v.to_bits();
                self.units[unit_ids[0] as usize] = bits as u32;
                self.units[unit_ids[1] as usize] = (bits >> 32) as u32;
            }
            (_, Value::I(v)) => {
                self.units[unit_ids[0] as usize] = v as u32;
                self.units[unit_ids[1] as usize] = (v >> 32) as u32;
            }
        }
    }

    /// Raw 32-bit copy between single-unit registers (register moves
    /// must be bit-exact even when the unit holds half of a double).
    pub fn copy_raw(&mut self, machine: &Machine, dest: PhysReg, src: PhysReg) {
        let s = self.read_units(machine, src);
        self.write_units(machine, dest, &s);
    }

    /// The raw unit words of a register.
    pub fn read_units(&self, machine: &Machine, reg: PhysReg) -> Vec<u32> {
        machine
            .units_of(reg)
            .map(|u| self.units[u as usize])
            .collect()
    }

    /// Writes raw unit words to a register.
    pub fn write_units(&mut self, machine: &Machine, reg: PhysReg, words: &[u32]) {
        for (u, w) in machine.units_of(reg).zip(words.iter()) {
            self.units[u as usize] = *w;
        }
    }

    /// Reads a temporal latch.
    pub fn read_latch(&self, id: usize) -> f64 {
        self.latches[id]
    }

    /// Writes a temporal latch.
    pub fn write_latch(&mut self, id: usize, value: f64) {
        self.latches[id] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_maril::Machine;

    fn toyp_like() -> Machine {
        Machine::parse(
            "t",
            r#"declare {
                %reg r[0:7] (int);
                %reg d[0:3] (double);
                %equiv r[0] d[0];
                %resource IF;
            }
            cwvm { %general (int) r; %general (double) d; }"#,
        )
        .unwrap()
    }

    #[test]
    fn aliasing_is_exact() {
        let m = toyp_like();
        let r = m.reg_class_by_name("r").unwrap();
        let d = m.reg_class_by_name("d").unwrap();
        let mut rf = RegFile::new(&m);
        rf.write(&m, PhysReg::new(d, 1), Value::F(1.5));
        // d1 overlays r2, r3: reading them gives the bit halves.
        let bits = 1.5f64.to_bits();
        assert_eq!(
            rf.read(&m, PhysReg::new(r, 2)),
            Value::I(bits as u32 as i32 as i64)
        );
        assert_eq!(
            rf.read(&m, PhysReg::new(r, 3)),
            Value::I((bits >> 32) as u32 as i32 as i64)
        );
        // Raw-copy both halves elsewhere and read back the double.
        rf.copy_raw(&m, PhysReg::new(r, 4), PhysReg::new(r, 2));
        rf.copy_raw(&m, PhysReg::new(r, 5), PhysReg::new(r, 3));
        assert_eq!(rf.read(&m, PhysReg::new(d, 2)), Value::F(1.5));
    }

    #[test]
    fn int_write_read_roundtrip() {
        let m = toyp_like();
        let r = m.reg_class_by_name("r").unwrap();
        let mut rf = RegFile::new(&m);
        rf.write(&m, PhysReg::new(r, 6), Value::I(-42));
        assert_eq!(rf.read(&m, PhysReg::new(r, 6)), Value::I(-42));
    }

    #[test]
    fn latches() {
        let m = Machine::parse(
            "t",
            r#"declare {
                %reg d[0:3] (double);
                %resource X;
                %clock k;
                %reg t1 (double; k) +temporal;
            }
            cwvm { %general (double) d; }"#,
        )
        .unwrap();
        let mut rf = RegFile::new(&m);
        rf.write_latch(0, 2.75);
        assert_eq!(rf.read_latch(0), 2.75);
    }
}
