//! Sema rejections must name the offending construct.
//!
//! The machine-description generator (`marion-mdgen`) leans on these
//! diagnostics: when a generated variant is rejected, the message is
//! the only evidence of which knob produced an invalid machine. Each
//! test here covers one of the rejection paths a generator most
//! commonly trips — bad register ranges, unknown resources, dangling
//! operand references — and pins the construct name into the message.

use marion_maril::Machine;

/// A valid skeleton; each test perturbs exactly one construct.
fn skeleton(instrs: &str, cwvm_extra: &str) -> String {
    format!(
        r#"
declare {{
    %reg r[0:7] (int);
    %resource IF; ID;
    %def c16 [-32768:32767];
    %label l [-128:127] +relative;
    %memory m[0:65535];
}}
cwvm {{
    %general (int) r;
    %allocable r[1:5];
    %sp r[7] +down;
    %fp r[6];
    %retaddr r[1];
    {cwvm_extra}
}}
instr {{
    %instr add r, r, r (int) {{$1 = $2 + $3;}} [IF; ID;] (1,1,0)
    {instrs}
}}
"#
    )
}

fn reject(src: &str) -> String {
    match Machine::parse("t", src) {
        Ok(_) => panic!("expected a sema rejection, but the description was accepted"),
        Err(e) => e.to_string(),
    }
}

/// An `%allocable` (or any) register range past the class size must
/// name the class and its true size, not just the numbers.
#[test]
fn out_of_bounds_range_names_the_class() {
    let src = skeleton("", "%calleesave r[6:12];");
    let msg = reject(&src);
    assert!(
        msg.contains("register range 6..12 out of bounds")
            && msg.contains("`r`")
            && msg.contains("8 registers"),
        "message must name the class and its size: {msg}"
    );
}

/// An instruction claiming a resource that was never declared must
/// name both the resource and the instruction.
#[test]
fn unknown_resource_names_the_instruction() {
    let src = skeleton(
        "%instr mul r, r, r (int) {$1 = $2 * $3;} [MUL;] (1,3,0)",
        "",
    );
    let msg = reject(&src);
    assert!(
        msg.contains("unknown resource `MUL`") && msg.contains("`mul`"),
        "message must name the resource and the instruction: {msg}"
    );
}

/// A semantic statement referencing `$3` on a two-operand instruction
/// must name the instruction and its real operand count.
#[test]
fn operand_reference_out_of_range_names_the_instruction() {
    let src = skeleton("%instr neg r, r (int) {$1 = $2 - $3;} [IF;] (1,1,0)", "");
    let msg = reject(&src);
    assert!(
        msg.contains("operand reference $3 out of range")
            && msg.contains("`neg`")
            && msg.contains("2 operands"),
        "message must name the instruction and operand count: {msg}"
    );
}

/// A negative `%aux` latency must name the instruction pair.
#[test]
fn negative_aux_latency_names_the_pair() {
    let src = skeleton("%aux add : add (-2)", "");
    let msg = reject(&src);
    assert!(
        msg.contains("negative %aux latency") && msg.contains("`add`:`add`"),
        "message must name the pair: {msg}"
    );
}

/// Negative cost/latency — the generator's most direct arithmetic
/// failure mode — must name the instruction.
#[test]
fn negative_cost_or_latency_names_the_instruction() {
    let src = skeleton(
        "%instr sub r, r, r (int) {$1 = $2 - $3;} [IF;] (1,-1,0)",
        "",
    );
    let msg = reject(&src);
    assert!(
        msg.contains("negative cost or latency") && msg.contains("`sub`"),
        "message must name the instruction: {msg}"
    );
}
