//! Robustness: the Maril front end must reject garbage with errors,
//! never panics — mutated descriptions, truncations and random token
//! soup all produce `Err`, and spans stay within the source.

use marion_maril::Machine;
use proptest::prelude::*;

const BASE: &str = r#"
declare {
    %reg r[0:7] (int);
    %resource IF; ID;
    %def c16 [-32768:32767];
    %label l [-128:127] +relative;
    %memory m[0:65535];
}
cwvm {
    %general (int) r;
    %allocable r[1:5];
    %sp r[7] +down;
    %fp r[6];
    %retaddr r[1];
}
instr {
    %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID;] (1,1,0)
    %instr b #l {goto $1;} [IF;] (1,1,1)
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating a valid description anywhere must not panic.
    #[test]
    fn truncations_never_panic(cut in 0usize..BASE.len()) {
        // Cut on a char boundary.
        let mut cut = cut;
        while !BASE.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = Machine::parse("t", &BASE[..cut]);
    }

    /// Splicing random bytes into a valid description must not panic,
    /// and any reported span must lie within the source.
    #[test]
    fn mutations_never_panic(pos in 0usize..BASE.len(), noise in "[ -~]{1,12}") {
        let mut pos = pos;
        while !BASE.is_char_boundary(pos) {
            pos -= 1;
        }
        let mutated = format!("{}{}{}", &BASE[..pos], noise, &BASE[pos..]);
        match Machine::parse("t", &mutated) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.span().start <= mutated.len());
                // Rendering the diagnostic must also be safe.
                let _ = e.render("t.maril", &mutated);
            }
        }
    }

    /// Pure token soup.
    #[test]
    fn token_soup_never_panics(src in "[%a-z0-9\\[\\]{}();:,#$*+<>=!&|^~. -]{0,200}") {
        let _ = Machine::parse("t", &src);
    }
}

#[test]
fn specific_nasty_inputs() {
    // (The empty string is a valid — degenerate — description.)
    for src in [
        "declare",
        "declare {",
        "declare { %reg }",
        "declare { %reg r[7:0] (int); }",
        "declare { %reg r[0:7] (bogus); }",
        "instr { %instr x {$1 = $2;} [A;] (1,1,0) }",
        "instr { %instr x r {$9 = $1;} [] (1,1,0) }",
        "declare { %resource A; } instr { %instr x {$1 = m[$2];} [A;] (1,1,0) }",
        "declare { %reg r[0:7] (int); %reg r[0:3] (int); }",
        "cwvm { %sp r[0]; }",
        "instr { %aux a : b (1) }",
        "declare { %class c { x }; }",
        "declare { %reg m1 (double; nope) +temporal; }",
        "%%%%%",
        "declare { %def d [5:1]; }",
    ] {
        assert!(Machine::parse("t", src).is_err(), "accepted garbage: {src}");
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut expr = String::from("$2");
    for _ in 0..60 {
        expr = format!("({expr} + $3)");
    }
    let src = format!(
        "declare {{ %reg r[0:7] (int); %resource A; }}
         cwvm {{ %general (int) r; }}
         instr {{ %instr x r, r, r (int) {{$1 = {expr};}} [A;] (1,1,0) }}"
    );
    Machine::parse("t", &src).unwrap();
}
