//! Robustness: the Maril front end must reject garbage with errors,
//! never panics — mutated descriptions, truncations and random token
//! soup all produce `Err`, and spans stay within the source.
//!
//! Fuzzing is driven by the workspace's shared SplitMix64 stream
//! (`marion-rng`, deterministic); each case can be reproduced from
//! its index.

use marion_maril::Machine;
use marion_rng::SplitMix64;

/// A small character-soup helper over the shared stream.
struct Rng(SplitMix64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(SplitMix64::new(seed))
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.index(n)
    }

    fn string(&mut self, charset: &[u8], max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| charset[self.below(charset.len())] as char)
            .collect()
    }
}

const BASE: &str = r#"
declare {
    %reg r[0:7] (int);
    %resource IF; ID;
    %def c16 [-32768:32767];
    %label l [-128:127] +relative;
    %memory m[0:65535];
}
cwvm {
    %general (int) r;
    %allocable r[1:5];
    %sp r[7] +down;
    %fp r[6];
    %retaddr r[1];
}
instr {
    %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID;] (1,1,0)
    %instr b #l {goto $1;} [IF;] (1,1,1)
}
"#;

/// Truncating a valid description anywhere must not panic.
#[test]
fn truncations_never_panic() {
    for cut in 0..=BASE.len() {
        if !BASE.is_char_boundary(cut) {
            continue;
        }
        let _ = Machine::parse("t", &BASE[..cut]);
    }
}

/// Splicing random bytes into a valid description must not panic,
/// and any reported span must lie within the source.
#[test]
fn mutations_never_panic() {
    let charset: Vec<u8> = (b' '..=b'~').collect();
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..256 {
        let mut pos = rng.below(BASE.len());
        while !BASE.is_char_boundary(pos) {
            pos -= 1;
        }
        let mut noise = rng.string(&charset, 12);
        if noise.is_empty() {
            noise.push('%');
        }
        let mutated = format!("{}{}{}", &BASE[..pos], noise, &BASE[pos..]);
        match Machine::parse("t", &mutated) {
            Ok(_) => {}
            Err(e) => {
                assert!(e.span().start <= mutated.len());
                // Rendering the diagnostic must also be safe.
                let _ = e.render("t.maril", &mutated);
            }
        }
    }
}

/// Pure token soup.
#[test]
fn token_soup_never_panics() {
    let charset: Vec<u8> =
        b"%abcdefghijklmnopqrstuvwxyz0123456789[]{}();:,#$*+<>=!&|^~. -".to_vec();
    let mut rng = Rng::new(0x5011);
    for _ in 0..256 {
        let src = rng.string(&charset, 200);
        let _ = Machine::parse("t", &src);
    }
}

#[test]
fn specific_nasty_inputs() {
    // (The empty string is a valid — degenerate — description.)
    for src in [
        "declare",
        "declare {",
        "declare { %reg }",
        "declare { %reg r[7:0] (int); }",
        "declare { %reg r[0:7] (bogus); }",
        "instr { %instr x {$1 = $2;} [A;] (1,1,0) }",
        "instr { %instr x r {$9 = $1;} [] (1,1,0) }",
        "declare { %resource A; } instr { %instr x {$1 = m[$2];} [A;] (1,1,0) }",
        "declare { %reg r[0:7] (int); %reg r[0:3] (int); }",
        "cwvm { %sp r[0]; }",
        "instr { %aux a : b (1) }",
        "declare { %class c { x }; }",
        "declare { %reg m1 (double; nope) +temporal; }",
        "%%%%%",
        "declare { %def d [5:1]; }",
    ] {
        assert!(Machine::parse("t", src).is_err(), "accepted garbage: {src}");
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut expr = String::from("$2");
    for _ in 0..60 {
        expr = format!("({expr} + $3)");
    }
    let src = format!(
        "declare {{ %reg r[0:7] (int); %resource A; }}
         cwvm {{ %general (int) r; }}
         instr {{ %instr x r, r, r (int) {{$1 = {expr};}} [A;] (1,1,0) }}"
    );
    Machine::parse("t", &src).unwrap();
}
