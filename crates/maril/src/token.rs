//! Token definitions for the Maril lexer.

use crate::error::Span;
use std::fmt;

/// A single lexed token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

/// The kinds of token Maril distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A `%`-prefixed directive, e.g. `%reg`, `%instr`. Stored without
    /// the leading `%` and lower-cased.
    Directive(String),
    /// An identifier: section names, register classes, mnemonics.
    /// Mnemonics may contain dots (`fadd.d`).
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::` — the generic-compare operator
    ColonColon,
    /// `#` — immediate/label operand marker
    Hash,
    /// `$` — operand reference sigil
    Dollar,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%` used as the modulo operator inside expressions
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `.` — used in `%aux` operand conditions like `1.$1`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `==>` — the glue-transformation rewrite arrow
    Arrow,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the directive name if this token is a directive.
    pub fn as_directive(&self) -> Option<&str> {
        match self {
            TokenKind::Directive(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Directive(d) => write!(f, "%{d}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::ColonColon => f.write_str("::"),
            TokenKind::Hash => f.write_str("#"),
            TokenKind::Dollar => f.write_str("$"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Amp => f.write_str("&"),
            TokenKind::Pipe => f.write_str("|"),
            TokenKind::Caret => f.write_str("^"),
            TokenKind::Tilde => f.write_str("~"),
            TokenKind::Bang => f.write_str("!"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Shl => f.write_str("<<"),
            TokenKind::Shr => f.write_str(">>"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Assign => f.write_str("="),
            TokenKind::EqEq => f.write_str("=="),
            TokenKind::Ne => f.write_str("!="),
            TokenKind::Arrow => f.write_str("==>"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}
