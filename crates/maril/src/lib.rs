//! # marion-maril — the Maril machine description language
//!
//! Maril is the machine description language of the Marion retargetable
//! code generator system (Bradlee, Henry & Eggers, PLDI 1991). A
//! description has three sections:
//!
//! * `declare` — registers, resources (pipeline stages, buses),
//!   immediate/label ranges, memory banks, clocks for explicitly
//!   advanced pipelines, and packing elements/classes;
//! * `cwvm` — the Compiler Writer's Virtual Machine: the runtime model
//!   (general-purpose sets, allocable registers, callee-saves, stack and
//!   frame pointers, argument and result registers);
//! * `instr` — one directive per machine instruction giving its
//!   operands, an optional type constraint, a semantic expression used
//!   to derive selection patterns, the hardware resources used on each
//!   cycle after issue, and a `(cost, latency, slots)` triple — plus
//!   `%move` register-move markers, `*func` escapes, `%aux` auxiliary
//!   latencies and `%glue` IL transformations.
//!
//! This crate is Marion's *code generator generator*: it parses a Maril
//! description and compiles it into the [`Machine`] tables (selection
//! patterns, resource vectors, latency/aux tables, packing classes,
//! clock effects) consumed by the `marion-core` back end.
//!
//! ```
//! use marion_maril::Machine;
//!
//! # fn main() -> Result<(), Box<marion_maril::MarilError>> {
//! let toy = r#"
//! declare {
//!   %reg r[0:7] (int);
//!   %resource IF; ID; IE; IA; IW;
//!   %def const16 [-32768:32767];
//! }
//! cwvm {
//!   %general (int) r;
//!   %allocable r[1:5];
//!   %sp r[7] +down;
//!   %fp r[6] +down;
//!   %retaddr r[1];
//! }
//! instr {
//!   %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID; IE; IA; IW;] (1,1,0)
//! }
//! "#;
//! let machine = Machine::parse("toy", toy)?;
//! assert_eq!(machine.templates().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod machine;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod stats;
pub mod token;

pub use error::{MarilError, Span};
pub use expr::{BinOp, Builtin, Expr, Stmt, UnOp};
pub use machine::{
    ClassId, ClockId, Cwvm, ImmDef, ImmDefId, Machine, OperandSpec, PhysReg, RegClass, RegClassId,
    ResSet, RootShape, SelectionIndex, Template, TemplateId, Ty,
};
pub use stats::DescriptionStats;
