//! Semantic analysis: checks a parsed [`Description`] and lowers it
//! into the compiled [`Machine`] tables.

use crate::ast::{self, CwvmItem, DeclItem, Description, InstrItem, OperandAst};
use crate::error::{MarilError, Span};
use crate::expr::{Expr, LValue, Stmt};
use crate::machine::{
    AuxLatency, ClassId, ClockId, Cwvm, GlueRule, ImmDef, LabelDef, Machine, OperandSpec,
    PackClass, PhysReg, RegClass, RegClassId, ResSet, Template, TemplateEffects, TemporalId,
    TemporalReg, Ty,
};
use crate::stats::DescriptionStats;
use std::collections::HashMap;

/// Analyses a description against its source text (used for line
/// statistics) and produces the compiled machine.
///
/// # Errors
///
/// Returns the first semantic inconsistency found: duplicate or
/// unknown names, out-of-range register indices, ill-formed `%equiv`
/// overlays, operand references outside the operand list, and so on.
pub fn analyze(name: &str, desc: &Description) -> Result<Machine, MarilError> {
    Analyzer::new(name, desc).run()
}

/// Like [`analyze`], but also computes per-section line counts from
/// the original source.
pub fn analyze_with_source(
    name: &str,
    src: &str,
    desc: &Description,
) -> Result<Machine, MarilError> {
    let mut machine = Analyzer::new(name, desc).run()?;
    let lines = |span: Option<Span>| {
        span.map(|s| src[s.start..s.end.min(src.len())].lines().count())
            .unwrap_or(0)
    };
    let stats = DescriptionStats {
        declare_lines: lines(desc.section_spans.declare),
        cwvm_lines: lines(desc.section_spans.cwvm),
        instr_lines: lines(desc.section_spans.instr),
        ..*machine.stats()
    };
    machine.set_stats(stats);
    Ok(machine)
}

struct Analyzer<'a> {
    name: &'a str,
    desc: &'a Description,
    reg_classes: Vec<RegClass>,
    temporals: Vec<TemporalReg>,
    resources: Vec<String>,
    imm_defs: Vec<ImmDef>,
    label_defs: Vec<LabelDef>,
    memories: Vec<String>,
    clocks: Vec<String>,
    elements: Vec<String>,
    classes: Vec<PackClass>,
    templates: Vec<Template>,
    aux: Vec<AuxLatency>,
    glue: Vec<GlueRule>,
    cwvm: Cwvm,
    escapes: usize,
}

impl<'a> Analyzer<'a> {
    fn new(name: &'a str, desc: &'a Description) -> Self {
        Analyzer {
            name,
            desc,
            reg_classes: Vec::new(),
            temporals: Vec::new(),
            resources: Vec::new(),
            imm_defs: Vec::new(),
            label_defs: Vec::new(),
            memories: Vec::new(),
            clocks: Vec::new(),
            elements: Vec::new(),
            classes: Vec::new(),
            templates: Vec::new(),
            aux: Vec::new(),
            glue: Vec::new(),
            cwvm: Cwvm::default(),
            escapes: 0,
        }
    }

    fn run(mut self) -> Result<Machine, MarilError> {
        self.declare_pass()?;
        self.equiv_pass()?;
        self.cwvm_pass()?;
        self.instr_pass()?;
        let stats = DescriptionStats {
            declare_lines: 0,
            cwvm_lines: 0,
            instr_lines: 0,
            instr_directives: self.templates.iter().filter(|t| t.escape.is_none()).count(),
            clocks: self.clocks.len(),
            elements: self.elements.len(),
            classes: self.classes.len(),
            aux_lats: self.aux.len(),
            glue_xforms: self.glue.len(),
            funcs: self.escapes,
        };
        Ok(Machine::from_parts(
            self.name.to_owned(),
            self.reg_classes,
            self.temporals,
            self.resources,
            self.imm_defs,
            self.label_defs,
            self.memories,
            self.clocks,
            self.elements,
            self.classes,
            self.templates,
            self.aux,
            self.glue,
            self.cwvm,
            stats,
        ))
    }

    fn clock_id(&self, name: &str, span: Span) -> Result<ClockId, MarilError> {
        self.clocks
            .iter()
            .position(|c| c == name)
            .map(|i| ClockId(i as u32))
            .ok_or_else(|| MarilError::sema(format!("unknown clock `{name}`"), span))
    }

    fn class_id(&self, name: &str) -> Option<RegClassId> {
        self.reg_classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| RegClassId(i as u32))
    }

    fn resolve_reg(&self, r: &ast::RegRef) -> Result<PhysReg, MarilError> {
        let class = self.class_id(&r.class).ok_or_else(|| {
            MarilError::sema(format!("unknown register class `{}`", r.class), r.span)
        })?;
        let c = &self.reg_classes[class.0 as usize];
        if r.index >= c.count {
            return Err(MarilError::sema(
                format!("register index {} out of range for `{}`", r.index, r.class),
                r.span,
            ));
        }
        Ok(PhysReg::new(class, r.index))
    }

    fn declare_pass(&mut self) -> Result<(), MarilError> {
        // Clocks must be visible to temporal %reg declarations that may
        // precede them textually, so gather clocks first.
        for item in &self.desc.declare {
            if let DeclItem::Clock { name, span } = item {
                if self.clocks.contains(name) {
                    return Err(MarilError::sema(format!("duplicate clock `{name}`"), *span));
                }
                self.clocks.push(name.clone());
            }
        }
        for item in &self.desc.declare {
            match item {
                DeclItem::Clock { .. } => {}
                DeclItem::Reg {
                    name,
                    range,
                    tys,
                    clock,
                    temporal,
                    span,
                } => {
                    if *temporal || clock.is_some() {
                        let clock_name = clock.as_deref().ok_or_else(|| {
                            MarilError::sema(
                                format!("temporal register `{name}` needs a clock"),
                                *span,
                            )
                        })?;
                        if range.is_some() {
                            return Err(MarilError::sema(
                                format!("temporal register `{name}` cannot be an array"),
                                *span,
                            ));
                        }
                        let clock = self.clock_id(clock_name, *span)?;
                        if self.temporals.iter().any(|t| t.name == *name) {
                            return Err(MarilError::sema(
                                format!("duplicate temporal register `{name}`"),
                                *span,
                            ));
                        }
                        self.temporals.push(TemporalReg {
                            name: name.clone(),
                            ty: tys.first().copied().unwrap_or(Ty::Int),
                            clock,
                        });
                    } else {
                        if self.reg_classes.iter().any(|c| c.name == *name) {
                            return Err(MarilError::sema(
                                format!("duplicate register class `{name}`"),
                                *span,
                            ));
                        }
                        let (lo, hi) = range.unwrap_or((0, 0));
                        if hi < lo {
                            return Err(MarilError::sema(
                                format!("empty register range for `{name}`"),
                                *span,
                            ));
                        }
                        if lo != 0 {
                            return Err(MarilError::sema(
                                format!("register class `{name}` must start at index 0"),
                                *span,
                            ));
                        }
                        self.reg_classes.push(RegClass {
                            name: name.clone(),
                            count: hi - lo + 1,
                            tys: tys.clone(),
                            unit_width: 0, // assigned by equiv_pass
                            unit_base: 0,
                            unit_stride: 0,
                        });
                    }
                }
                DeclItem::Resource { names, span } => {
                    for n in names {
                        if self.resources.contains(n) {
                            return Err(MarilError::sema(
                                format!("duplicate resource `{n}`"),
                                *span,
                            ));
                        }
                        self.resources.push(n.clone());
                    }
                    if self.resources.len() > 256 {
                        return Err(MarilError::sema("more than 256 resources", *span));
                    }
                }
                DeclItem::Def {
                    name,
                    range,
                    flags,
                    span,
                } => {
                    if self.imm_defs.iter().any(|d| d.name == *name) {
                        return Err(MarilError::sema(format!("duplicate %def `{name}`"), *span));
                    }
                    if range.1 < range.0 {
                        return Err(MarilError::sema(format!("empty range on `{name}`"), *span));
                    }
                    self.imm_defs.push(ImmDef {
                        name: name.clone(),
                        lo: range.0,
                        hi: range.1,
                        flags: flags.clone(),
                    });
                }
                DeclItem::Label {
                    name,
                    range,
                    flags,
                    span,
                } => {
                    if self.label_defs.iter().any(|d| d.name == *name) {
                        return Err(MarilError::sema(
                            format!("duplicate %label `{name}`"),
                            *span,
                        ));
                    }
                    self.label_defs.push(LabelDef {
                        name: name.clone(),
                        lo: range.0,
                        hi: range.1,
                        relative: flags.iter().any(|f| f == "relative"),
                    });
                }
                DeclItem::Memory { name, span, .. } => {
                    if self.memories.contains(name) {
                        return Err(MarilError::sema(
                            format!("duplicate memory bank `{name}`"),
                            *span,
                        ));
                    }
                    self.memories.push(name.clone());
                }
                DeclItem::Element { name, span } => {
                    if self.elements.contains(name) {
                        return Err(MarilError::sema(
                            format!("duplicate element `{name}`"),
                            *span,
                        ));
                    }
                    if self.elements.len() >= 256 {
                        return Err(MarilError::sema("more than 256 elements", *span));
                    }
                    self.elements.push(name.clone());
                }
                DeclItem::Class {
                    name,
                    elements,
                    span,
                } => {
                    if self.classes.iter().any(|c| c.name == *name) {
                        return Err(MarilError::sema(format!("duplicate class `{name}`"), *span));
                    }
                    let mut set = ResSet::EMPTY;
                    for e in elements {
                        let id = self.elements.iter().position(|x| x == e).ok_or_else(|| {
                            MarilError::sema(format!("unknown element `{e}`"), *span)
                        })?;
                        set.insert(id as u32);
                    }
                    self.classes.push(PackClass {
                        name: name.clone(),
                        elements: set,
                    });
                }
                DeclItem::Equiv { .. } => {} // second pass
            }
        }
        Ok(())
    }

    /// Assigns register units. Classes joined by `%equiv` share a unit
    /// space; the overlay follows register sizes (a 64-bit `d`
    /// register covers two 32-bit `r` units).
    fn equiv_pass(&mut self) -> Result<(), MarilError> {
        // Unit granularity is the smallest register size over all
        // classes, in bytes (at least 1).
        let min_size = self
            .reg_classes
            .iter()
            .map(|c| c.reg_size())
            .min()
            .unwrap_or(4);
        for c in &mut self.reg_classes {
            let w = (c.reg_size() / min_size).max(1);
            c.unit_width = w;
            c.unit_stride = w;
        }
        // Union groups of equivalent classes.
        let mut group: Vec<usize> = (0..self.reg_classes.len()).collect();
        fn find(group: &mut [usize], mut i: usize) -> usize {
            while group[i] != i {
                group[i] = group[group[i]];
                i = group[i];
            }
            i
        }
        let mut anchors: Vec<(usize, usize, u32, u32, Span)> = Vec::new();
        for item in &self.desc.declare {
            if let DeclItem::Equiv { a, b, span } = item {
                let ca = self
                    .class_id(&a.class)
                    .ok_or_else(|| {
                        MarilError::sema(format!("unknown register class `{}`", a.class), a.span)
                    })?
                    .0 as usize;
                let cb = self
                    .class_id(&b.class)
                    .ok_or_else(|| {
                        MarilError::sema(format!("unknown register class `{}`", b.class), b.span)
                    })?
                    .0 as usize;
                let ra = find(&mut group, ca);
                let rb = find(&mut group, cb);
                group[rb] = ra;
                anchors.push((ca, cb, a.index, b.index, *span));
            }
        }
        // Lay out unit bases: group leaders first, then overlays.
        let mut next_base = 0u32;
        let mut base_set = vec![false; self.reg_classes.len()];
        for (i, is_base) in base_set.iter_mut().enumerate() {
            if find(&mut group, i) == i {
                self.reg_classes[i].unit_base = next_base;
                *is_base = true;
                next_base += self.reg_classes[i].count * self.reg_classes[i].unit_stride;
            }
        }
        // Propagate anchors until fixpoint (handles chains of equivs).
        let mut progress = true;
        while progress {
            progress = false;
            for &(ca, cb, ia, ib, span) in &anchors {
                let (wa, sa) = {
                    let c = &self.reg_classes[ca];
                    (c.unit_base, c.unit_stride)
                };
                let (wb, sb) = {
                    let c = &self.reg_classes[cb];
                    (c.unit_base, c.unit_stride)
                };
                match (base_set[ca], base_set[cb]) {
                    (true, false) => {
                        // base_b + ib*stride_b == base_a + ia*stride_a
                        let target = wa + ia * sa;
                        let offset = ib * sb;
                        if offset > target {
                            return Err(MarilError::sema(
                                "equiv overlay extends below the unit space",
                                span,
                            ));
                        }
                        self.reg_classes[cb].unit_base = target - offset;
                        base_set[cb] = true;
                        progress = true;
                    }
                    (false, true) => {
                        let target = wb + ib * sb;
                        let offset = ia * sa;
                        if offset > target {
                            return Err(MarilError::sema(
                                "equiv overlay extends below the unit space",
                                span,
                            ));
                        }
                        self.reg_classes[ca].unit_base = target - offset;
                        base_set[ca] = true;
                        progress = true;
                    }
                    (true, true) => {
                        if wa + ia * sa != wb + ib * sb {
                            return Err(MarilError::sema("conflicting %equiv anchors", span));
                        }
                    }
                    (false, false) => {}
                }
            }
        }
        for (i, set) in base_set.iter().enumerate() {
            if !set {
                return Err(MarilError::sema(
                    format!(
                        "register class `{}` has no unit base (broken %equiv chain)",
                        self.reg_classes[i].name
                    ),
                    Span::default(),
                ));
            }
        }
        Ok(())
    }

    fn cwvm_pass(&mut self) -> Result<(), MarilError> {
        for item in &self.desc.cwvm {
            match item {
                CwvmItem::General { ty, class, span } => {
                    let id = self.class_id(class).ok_or_else(|| {
                        MarilError::sema(format!("unknown register class `{class}`"), *span)
                    })?;
                    self.cwvm.general.push((*ty, id));
                }
                CwvmItem::Allocable(range) => {
                    let regs = self.expand_range(range)?;
                    self.cwvm.allocable.extend(regs);
                }
                CwvmItem::CalleeSave(range) => {
                    let regs = self.expand_range(range)?;
                    self.cwvm.callee_save.extend(regs);
                }
                CwvmItem::Sp { reg, down } => {
                    self.cwvm.sp = Some(self.resolve_reg(reg)?);
                    self.cwvm.stack_down = *down;
                }
                CwvmItem::Fp { reg, .. } => {
                    self.cwvm.fp = Some(self.resolve_reg(reg)?);
                }
                CwvmItem::RetAddr(reg) => {
                    self.cwvm.retaddr = Some(self.resolve_reg(reg)?);
                }
                CwvmItem::GlobalPtr(reg) => {
                    self.cwvm.gp = Some(self.resolve_reg(reg)?);
                }
                CwvmItem::Hard { reg, value } => {
                    let r = self.resolve_reg(reg)?;
                    self.cwvm.hard.push((r, *value));
                }
                CwvmItem::Arg { ty, reg, index } => {
                    let r = self.resolve_reg(reg)?;
                    self.cwvm.args.push((*ty, r, *index));
                }
                CwvmItem::Result { reg, ty } => {
                    let r = self.resolve_reg(reg)?;
                    self.cwvm.results.push((r, *ty));
                }
            }
        }
        Ok(())
    }

    fn expand_range(&self, range: &ast::RegRange) -> Result<Vec<PhysReg>, MarilError> {
        let class = self.class_id(&range.class).ok_or_else(|| {
            MarilError::sema(
                format!("unknown register class `{}`", range.class),
                range.span,
            )
        })?;
        let count = self.reg_classes[class.0 as usize].count;
        let (lo, hi) = range.range.unwrap_or((0, count - 1));
        if hi >= count {
            return Err(MarilError::sema(
                format!(
                    "register range {}..{} out of bounds for class `{}` ({} registers)",
                    lo, hi, range.class, count
                ),
                range.span,
            ));
        }
        Ok((lo..=hi).map(|i| PhysReg::new(class, i)).collect())
    }

    fn instr_pass(&mut self) -> Result<(), MarilError> {
        let mut mnemonics: HashMap<String, usize> = HashMap::new();
        for item in &self.desc.instrs {
            match item {
                InstrItem::Instr(def) | InstrItem::Move(def) => {
                    let is_move = matches!(item, InstrItem::Move(_));
                    let tpl = self.compile_instr(def, is_move)?;
                    *mnemonics.entry(tpl.mnemonic.clone()).or_insert(0) += 1;
                    if tpl.escape.is_some() {
                        self.escapes += 1;
                    }
                    self.templates.push(tpl);
                }
                InstrItem::Aux {
                    first,
                    second,
                    cond,
                    latency,
                    span,
                } => {
                    if *latency < 0 {
                        return Err(MarilError::sema(
                            format!("negative %aux latency for pair `{first}`:`{second}`"),
                            *span,
                        ));
                    }
                    self.aux.push(AuxLatency {
                        first: first.clone(),
                        second: second.clone(),
                        cond: cond.map(|c| (c.first_op, c.second_op)),
                        latency: *latency as u32,
                    });
                }
                InstrItem::Glue {
                    rule,
                    operands,
                    span,
                } => {
                    let mut operand_classes = Vec::new();
                    for op in operands {
                        operand_classes.push(match op {
                            OperandAst::RegClass(name) => {
                                Some(self.class_id(name).ok_or_else(|| {
                                    MarilError::sema(
                                        format!("unknown register class `{name}` in %glue"),
                                        *span,
                                    )
                                })?)
                            }
                            _ => None,
                        });
                    }
                    let kind = match rule {
                        ast::GlueRule::Cond {
                            from_rel,
                            to_rel,
                            to_lhs,
                            to_rhs,
                        } => crate::machine::GlueKind::Cond {
                            from_rel: *from_rel,
                            to_rel: *to_rel,
                            to_lhs: to_lhs.clone(),
                            to_rhs: to_rhs.clone(),
                        },
                        ast::GlueRule::Value { from, to } => crate::machine::GlueKind::Value {
                            from: from.clone(),
                            to: to.clone(),
                        },
                    };
                    self.glue.push(GlueRule {
                        operand_classes,
                        kind,
                    });
                }
            }
        }
        // Aux directives must reference known mnemonics.
        for aux in &self.aux {
            for m in [&aux.first, &aux.second] {
                if !mnemonics.contains_key(m) {
                    return Err(MarilError::sema(
                        format!("%aux references unknown instruction `{m}`"),
                        Span::default(),
                    ));
                }
            }
        }
        Ok(())
    }

    fn compile_instr(&self, def: &ast::InstrDef, is_move: bool) -> Result<Template, MarilError> {
        let mut operands = Vec::with_capacity(def.operands.len());
        for op in &def.operands {
            operands.push(match op {
                OperandAst::RegClass(name) => {
                    let id = self.class_id(name).ok_or_else(|| {
                        MarilError::sema(
                            format!(
                                "unknown register class `{name}` in operand list of `{}`",
                                def.mnemonic
                            ),
                            def.span,
                        )
                    })?;
                    OperandSpec::Reg(id)
                }
                OperandAst::FixedReg(r) => OperandSpec::FixedReg(self.resolve_reg(r)?),
                OperandAst::Imm(name) | OperandAst::Lab(name) => {
                    if let Some(i) = self.imm_defs.iter().position(|d| d.name == *name) {
                        OperandSpec::Imm(crate::machine::ImmDefId(i as u32))
                    } else if let Some(i) = self.label_defs.iter().position(|d| d.name == *name) {
                        OperandSpec::Lab(crate::machine::LabelDefId(i as u32))
                    } else {
                        return Err(MarilError::sema(
                            format!(
                                "unknown %def/%label `{name}` on instruction `{}`",
                                def.mnemonic
                            ),
                            def.span,
                        ));
                    }
                }
            });
        }
        // Resource vector.
        let mut rsrc = Vec::with_capacity(def.resources.len());
        for cycle in &def.resources {
            let mut set = ResSet::EMPTY;
            for r in cycle {
                let id = self.resources.iter().position(|x| x == r).ok_or_else(|| {
                    MarilError::sema(
                        format!("unknown resource `{r}` on instruction `{}`", def.mnemonic),
                        def.span,
                    )
                })?;
                set.insert(id as u32);
            }
            rsrc.push(set);
        }
        let affects_clock = match &def.clock {
            Some(c) => Some(self.clock_id(c, def.span)?),
            None => None,
        };
        let class = match &def.class {
            Some(c) => Some(
                self.classes
                    .iter()
                    .position(|x| x.name == *c)
                    .map(|i| ClassId(i as u32))
                    .ok_or_else(|| {
                        MarilError::sema(
                            format!("unknown class `{c}` on instruction `{}`", def.mnemonic),
                            def.span,
                        )
                    })?,
            ),
            None => None,
        };
        if def.cost < 0 || def.latency < 0 {
            return Err(MarilError::sema(
                format!(
                    "negative cost or latency ({}, {}) on instruction `{}`",
                    def.cost, def.latency, def.mnemonic
                ),
                def.span,
            ));
        }
        let effects = self.effects_of(def, &operands)?;
        Ok(Template {
            mnemonic: def.mnemonic.clone(),
            label: def.label.clone(),
            escape: if def.escape {
                Some(def.mnemonic.clone())
            } else {
                None
            },
            operands,
            ty: def.ty,
            affects_clock,
            class,
            sem: def.sem.clone(),
            rsrc,
            cost: def.cost as u32,
            latency: def.latency as u32,
            slots: def.slots as i32,
            is_move,
            effects,
        })
    }

    fn effects_of(
        &self,
        def: &ast::InstrDef,
        operands: &[OperandSpec],
    ) -> Result<TemplateEffects, MarilError> {
        let mut fx = TemplateEffects::default();
        let n = operands.len() as u8;
        let check_ref = |k: u8| -> Result<(), MarilError> {
            if k == 0 || k > n {
                Err(MarilError::sema(
                    format!(
                        "operand reference ${k} out of range in `{}` (instruction has {n} operands)",
                        def.mnemonic
                    ),
                    def.span,
                ))
            } else {
                Ok(())
            }
        };
        // Collects data uses (operand and temporal reads) from an expr.
        fn scan_expr(
            this: &Analyzer<'_>,
            e: &Expr,
            def: &ast::InstrDef,
            fx: &mut TemplateEffects,
            check_ref: &dyn Fn(u8) -> Result<(), MarilError>,
        ) -> Result<(), MarilError> {
            match e {
                Expr::Operand(k) => {
                    check_ref(*k)?;
                    if !fx.uses.contains(k) {
                        fx.uses.push(*k);
                    }
                }
                Expr::Int(_) => {}
                Expr::Temporal(name) => {
                    let id = this.temporal_id(name, def.span)?;
                    if !fx.temporal_uses.contains(&id) {
                        fx.temporal_uses.push(id);
                    }
                }
                Expr::Mem(bank, addr) => {
                    if !this.memories.contains(bank) {
                        return Err(MarilError::sema(
                            format!("unknown memory bank `{bank}`"),
                            def.span,
                        ));
                    }
                    fx.reads_mem = true;
                    scan_expr(this, addr, def, fx, check_ref)?;
                }
                Expr::Bin(_, a, b) => {
                    scan_expr(this, a, def, fx, check_ref)?;
                    scan_expr(this, b, def, fx, check_ref)?;
                }
                Expr::Un(_, a) | Expr::Call(_, a) | Expr::Convert(_, a) => {
                    scan_expr(this, a, def, fx, check_ref)?;
                }
            }
            Ok(())
        }
        for stmt in &def.sem {
            match stmt {
                Stmt::Assign(lv, rhs) => {
                    scan_expr(self, rhs, def, &mut fx, &check_ref)?;
                    match lv {
                        LValue::Operand(k) => {
                            check_ref(*k)?;
                            match operands[(*k - 1) as usize] {
                                OperandSpec::Reg(_) | OperandSpec::FixedReg(_) => {}
                                _ => {
                                    return Err(MarilError::sema(
                                        format!("operand ${k} is assigned but is not a register"),
                                        def.span,
                                    ));
                                }
                            }
                            if !fx.defs.contains(k) {
                                fx.defs.push(*k);
                            }
                        }
                        LValue::Temporal(name) => {
                            let id = self.temporal_id(name, def.span)?;
                            if !fx.temporal_defs.contains(&id) {
                                fx.temporal_defs.push(id);
                            }
                        }
                        LValue::Mem(bank, addr) => {
                            if !self.memories.contains(bank) {
                                return Err(MarilError::sema(
                                    format!("unknown memory bank `{bank}`"),
                                    def.span,
                                ));
                            }
                            fx.writes_mem = true;
                            scan_expr(self, addr, def, &mut fx, &check_ref)?;
                        }
                    }
                }
                Stmt::CondGoto {
                    lhs, rhs, target, ..
                } => {
                    scan_expr(self, lhs, def, &mut fx, &check_ref)?;
                    scan_expr(self, rhs, def, &mut fx, &check_ref)?;
                    check_ref(*target)?;
                    self.check_label_operand(def, operands, *target)?;
                    fx.is_cond_branch = true;
                }
                Stmt::Goto(target) => {
                    check_ref(*target)?;
                    self.check_label_operand(def, operands, *target)?;
                    fx.is_goto = true;
                }
                Stmt::Call(target) => {
                    check_ref(*target)?;
                    self.check_label_operand(def, operands, *target)?;
                    fx.is_call = true;
                }
                Stmt::Return => fx.is_return = true,
                Stmt::Nop => {}
            }
        }
        Ok(fx)
    }

    fn temporal_id(&self, name: &str, span: Span) -> Result<TemporalId, MarilError> {
        self.temporals
            .iter()
            .position(|t| t.name == name)
            .map(|i| TemporalId(i as u32))
            .ok_or_else(|| MarilError::sema(format!("unknown temporal register `{name}`"), span))
    }

    fn check_label_operand(
        &self,
        def: &ast::InstrDef,
        operands: &[OperandSpec],
        k: u8,
    ) -> Result<(), MarilError> {
        match operands.get((k - 1) as usize) {
            Some(OperandSpec::Lab(_)) => Ok(()),
            Some(OperandSpec::Reg(_)) => Ok(()), // indirect jumps via register
            _ => Err(MarilError::sema(
                format!("branch target ${k} is not a label operand"),
                def.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn machine(src: &str) -> Machine {
        let desc = parse(&lex(src).unwrap()).unwrap();
        analyze("test", &desc).unwrap()
    }

    fn machine_err(src: &str) -> MarilError {
        let desc = parse(&lex(src).unwrap()).unwrap();
        analyze("test", &desc).unwrap_err()
    }

    const TOY_DECLS: &str = r#"
        declare {
            %reg r[0:7] (int);
            %reg d[0:3] (double);
            %equiv r[0] d[0];
            %resource IF; ID; IE; IA; IW;
            %def const16 [-32768:32767];
            %label rlab [-32768:32767] +relative;
            %memory m[0:2147483647];
        }
    "#;

    #[test]
    fn register_units_overlay() {
        let m = machine(TOY_DECLS);
        let r = m.reg_class_by_name("r").unwrap();
        let d = m.reg_class_by_name("d").unwrap();
        // d[0] covers r[0] and r[1]; d[1] covers r[2], r[3]...
        assert!(m.regs_overlap(PhysReg::new(d, 0), PhysReg::new(r, 0)));
        assert!(m.regs_overlap(PhysReg::new(d, 0), PhysReg::new(r, 1)));
        assert!(!m.regs_overlap(PhysReg::new(d, 0), PhysReg::new(r, 2)));
        assert!(m.regs_overlap(PhysReg::new(d, 1), PhysReg::new(r, 2)));
        assert!(!m.regs_overlap(PhysReg::new(r, 3), PhysReg::new(r, 4)));
        assert_eq!(m.unit_count(), 8);
    }

    #[test]
    fn effects_of_add() {
        let m = machine(&format!(
            "{TOY_DECLS} instr {{ %instr add r, r, r (int) {{$1 = $2 + $3;}} [IF; ID; IE; IA; IW;] (1,1,0) }}"
        ));
        let t = &m.templates()[0];
        assert_eq!(t.effects.defs, vec![1]);
        assert_eq!(t.effects.uses, vec![2, 3]);
        assert!(!t.effects.reads_mem && !t.effects.writes_mem);
        assert!(!t.effects.is_control());
        assert_eq!(t.rsrc.len(), 5);
    }

    #[test]
    fn effects_of_load_and_store() {
        let m = machine(&format!(
            "{TOY_DECLS} instr {{
                %instr ld r, r, #const16 {{$1 = m[$2+$3];}} [IF; ID; IE; IA; IW;] (1,3,0)
                %instr st r, r, #const16 {{m[$2+$3] = $1;}} [IF; ID; IE; IA; IW;] (1,1,0)
            }}"
        ));
        let ld = &m.templates()[0];
        assert_eq!(ld.effects.defs, vec![1]);
        assert_eq!(ld.effects.uses, vec![2, 3]);
        assert!(ld.effects.reads_mem);
        let st = &m.templates()[1];
        assert!(st.effects.defs.is_empty());
        assert_eq!(st.effects.uses, vec![1, 2, 3]);
        assert!(st.effects.writes_mem);
        // Spill helpers find them.
        let r = m.reg_class_by_name("r").unwrap();
        assert_eq!(m.spill_load(r), Some(crate::machine::TemplateId(0)));
        assert_eq!(m.spill_store(r), Some(crate::machine::TemplateId(1)));
    }

    #[test]
    fn branch_effects() {
        let m = machine(&format!(
            "{TOY_DECLS} instr {{
                %instr beq0 r, #rlab {{if ($1 == 0) goto $2;}} [IF; ID; IE;] (1,2,1)
            }}"
        ));
        let t = &m.templates()[0];
        assert!(t.effects.is_cond_branch);
        assert_eq!(t.effects.uses, vec![1]);
        assert_eq!(t.slots, 1);
    }

    #[test]
    fn temporal_effects_and_clock() {
        let m = machine(
            r#"
            declare {
                %reg d[0:3] (double);
                %resource M1; M2;
                %clock clk_m;
                %reg m1 (double; clk_m) +temporal;
                %reg m2 (double; clk_m) +temporal;
            }
            instr {
                %instr M1 d, d (double; clk_m) {m1 = $1 * $2;} [M1;] (1,1,0)
                %instr M2 (double; clk_m) {m2 = m1;} [M2;] (1,1,0)
            }
        "#,
        );
        assert_eq!(m.temporals().len(), 2);
        let m1 = &m.templates()[0];
        assert_eq!(m1.affects_clock, Some(ClockId(0)));
        assert_eq!(m1.effects.temporal_defs.len(), 1);
        let m2 = &m.templates()[1];
        assert_eq!(m2.effects.temporal_uses.len(), 1);
        assert_eq!(m2.effects.temporal_defs.len(), 1);
    }

    #[test]
    fn aux_latency_lookup() {
        let m = machine(&format!(
            "{TOY_DECLS} instr {{
                %instr fadd.d d, d, d {{$1 = $2 + $3;}} [IF;] (1,6,0)
                %instr st.d d, r, #const16 {{m[$2+$3] = $1;}} [IF;] (1,1,0)
                %aux fadd.d : st.d (1.$1 == 2.$1) (7)
            }}"
        ));
        let fadd = m.template_by_mnemonic("fadd.d").unwrap();
        let st = m.template_by_mnemonic("st.d").unwrap();
        // Condition holds: override to 7.
        assert_eq!(m.edge_latency(fadd, st, &|i, j| i == 1 && j == 1), 7);
        // Condition fails: normal latency 6.
        assert_eq!(m.edge_latency(fadd, st, &|_, _| false), 6);
        // Unrelated pair: producer's latency.
        assert_eq!(m.edge_latency(st, fadd, &|_, _| false), 1);
    }

    #[test]
    fn cwvm_compiled() {
        let m = machine(&format!(
            "{TOY_DECLS}
            cwvm {{
                %general (int) r;
                %general (double) d;
                %allocable r[1:5];
                %calleesave r[4:7];
                %sp r[7] +down;
                %fp r[6] +down;
                %retaddr r[1];
                %hard r[0] 0;
                %arg (int) r[2] 1;
                %arg (int) r[3] 2;
                %result r[2] (int);
            }}"
        ));
        let cw = m.cwvm();
        assert_eq!(cw.allocable.len(), 5);
        assert_eq!(cw.callee_save.len(), 4);
        assert!(cw.stack_down);
        let r = m.reg_class_by_name("r").unwrap();
        assert_eq!(cw.general_class(Ty::Int), Some(r));
        assert_eq!(cw.general_class(Ty::Ptr), Some(r));
        assert_eq!(cw.arg_regs(Ty::Int).len(), 2);
        assert_eq!(cw.result_reg(Ty::Int), Some(PhysReg::new(r, 2)));
        assert_eq!(cw.hard, vec![(PhysReg::new(r, 0), 0)]);
    }

    #[test]
    fn rejects_unknown_resource() {
        let err = machine_err(&format!(
            "{TOY_DECLS} instr {{ %instr add r, r, r {{$1 = $2 + $3;}} [BOGUS;] (1,1,0) }}"
        ));
        assert!(err.to_string().contains("unknown resource"));
    }

    #[test]
    fn rejects_out_of_range_operand_ref() {
        let err = machine_err(&format!(
            "{TOY_DECLS} instr {{ %instr add r, r {{$1 = $2 + $3;}} [IF;] (1,1,0) }}"
        ));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_unknown_temporal() {
        let err = machine_err(&format!(
            "{TOY_DECLS} instr {{ %instr adv {{zz = 1;}} [IF;] (1,1,0) }}"
        ));
        assert!(err.to_string().contains("unknown temporal register"));
    }

    #[test]
    fn rejects_duplicate_class_names() {
        let err = machine_err("declare { %reg r[0:7] (int); %reg r[0:3] (int); }");
        assert!(err.to_string().contains("duplicate register class"));
    }

    #[test]
    fn rejects_aux_on_unknown_mnemonic() {
        let err = machine_err(&format!("{TOY_DECLS} instr {{ %aux foo : bar (3) }}"));
        assert!(err.to_string().contains("unknown instruction"));
    }

    #[test]
    fn stats_count_items() {
        let m = machine(
            r#"
            declare {
                %reg d[0:3] (double);
                %resource M1;
                %clock clk_m;
                %element pfmul;
                %element pfadd;
                %class mul_ops { pfmul };
                %label rlab [-32768:32767] +relative;
            }
            instr {
                %instr M1 d, d (double; clk_m) <mul_ops> {$1 = $2;} [M1;] (1,1,0)
                %move *movd d, d {$1 = $2;} [] (0,0,0)
                %glue d, d {($1 == $2) ==> (($1 :: $2) == 0);}
            }
        "#,
        );
        let s = m.stats();
        assert_eq!(s.clocks, 1);
        assert_eq!(s.elements, 2);
        assert_eq!(s.classes, 1);
        assert_eq!(s.glue_xforms, 1);
        assert_eq!(s.funcs, 1);
    }

    #[test]
    fn move_template_lookup() {
        let m = machine(&format!(
            "{TOY_DECLS} instr {{
                %move [s.movs] add r, r, r[0] {{$1 = $2;}} [IF;] (1,1,0)
                %move *movd d, d {{$1 = $2;}} [] (0,0,0)
            }}"
        ));
        let r = m.reg_class_by_name("r").unwrap();
        let d = m.reg_class_by_name("d").unwrap();
        assert!(m.move_template(r).is_some());
        assert!(m.move_template(d).is_none());
        assert!(m.move_escape(d).is_some());
        assert!(m.template_by_label("s.movs").is_some());
    }
}
