//! Error and source-location types shared across the Maril pipeline.

use std::error::Error;
use std::fmt;

/// A byte range into the description source, used for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based (line, column) of the span start in `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced while lexing, parsing or analysing a Maril
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarilError {
    kind: ErrorKind,
    message: String,
    span: Span,
}

/// Coarse classification of a [`MarilError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// A malformed token (unterminated comment, bad number, ...).
    Lex,
    /// A grammar violation.
    Parse,
    /// A semantic inconsistency (duplicate names, unknown references,
    /// ill-formed resource vectors, ...).
    Sema,
}

impl MarilError {
    /// Creates a lexer error at `span`.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        MarilError {
            kind: ErrorKind::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parser error at `span`.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        MarilError {
            kind: ErrorKind::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a semantic-analysis error at `span`.
    pub fn sema(message: impl Into<String>, span: Span) -> Self {
        MarilError {
            kind: ErrorKind::Sema,
            message: message.into(),
            span,
        }
    }

    /// The classification of this error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message, without location information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error with line/column information against `src`.
    pub fn render(&self, name: &str, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{name}:{line}:{col}: {self}")
    }
}

impl fmt::Display for MarilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            ErrorKind::Lex => "lexical error",
            ErrorKind::Parse => "syntax error",
            ErrorKind::Sema => "semantic error",
        };
        write!(f, "{stage}: {}", self.message)
    }
}

impl Error for MarilError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(4, 9);
        let b = Span::new(2, 6);
        assert_eq!(a.join(b), Span::new(2, 9));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn render_includes_location_and_stage() {
        let err = MarilError::parse("expected `;`", Span::new(4, 5));
        let rendered = err.render("toy.maril", "ab\ncd\nef");
        assert!(rendered.contains("toy.maril:2:2"), "{rendered}");
        assert!(rendered.contains("syntax error"), "{rendered}");
    }

    #[test]
    fn display_is_lowercase_no_period() {
        let err = MarilError::sema("unknown resource `XX`", Span::default());
        let msg = err.to_string();
        assert!(msg.starts_with("semantic error: "), "{msg}");
        assert!(!msg.ends_with('.'));
    }
}
