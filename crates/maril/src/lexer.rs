//! Hand-written lexer for Maril descriptions.
//!
//! Maril is whitespace-insensitive and uses C-style `/* ... */`
//! comments (they do not nest). Identifiers may contain dots so that
//! instruction mnemonics like `fadd.d` and labels like `s.movs` lex as
//! a single token.

use crate::error::{MarilError, Span};
use crate::token::{Token, TokenKind};

/// Lexes an entire Maril source into a token vector ending in
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns an error for unterminated comments, malformed numbers or
/// characters outside the Maril alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>, MarilError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, MarilError> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => self.skip_comment()?,
                b'%' => self.lex_percent(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'0'..=b'9' => self.lex_number(start)?,
                _ => self.lex_punct(start)?,
            }
        }
        let end = self.src.len();
        self.push(TokenKind::Eof, Span::new(end, end));
        Ok(self.tokens)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }

    fn skip_comment(&mut self) -> Result<(), MarilError> {
        let start = self.pos;
        self.pos += 2;
        while self.pos + 1 < self.bytes.len() {
            if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(MarilError::lex(
            "unterminated comment",
            Span::new(start, self.src.len()),
        ))
    }

    fn lex_percent(&mut self, start: usize) -> Result<(), MarilError> {
        // `%foo` is a directive; a bare `%` is the modulo operator.
        if matches!(self.peek(1), Some(b'a'..=b'z') | Some(b'A'..=b'Z')) {
            self.pos += 1;
            let word_start = self.pos;
            while matches!(
                self.peek(0),
                Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
            ) {
                self.pos += 1;
            }
            let word = self.src[word_start..self.pos].to_ascii_lowercase();
            self.push(TokenKind::Directive(word), Span::new(start, self.pos));
        } else {
            self.pos += 1;
            self.push(TokenKind::Percent, Span::new(start, self.pos));
        }
        Ok(())
    }

    fn lex_ident(&mut self, start: usize) {
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
        ) || (self.peek(0) == Some(b'.')
            && matches!(
                self.peek(1),
                Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9')
            ))
        {
            self.pos += 1;
        }
        let text = self.src[start..self.pos].to_owned();
        self.push(TokenKind::Ident(text), Span::new(start, self.pos));
    }

    fn lex_number(&mut self, start: usize) -> Result<(), MarilError> {
        let radix = if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x') | Some(b'X'))
        {
            self.pos += 2;
            16
        } else {
            10
        };
        let digits_start = self.pos;
        while matches!(self.peek(0), Some(c) if (c as char).is_digit(radix)) {
            self.pos += 1;
        }
        let text = &self.src[digits_start..self.pos];
        if text.is_empty() {
            return Err(MarilError::lex(
                "malformed number",
                Span::new(start, self.pos),
            ));
        }
        let value = i64::from_str_radix(text, radix).map_err(|_| {
            MarilError::lex(
                format!("integer literal `{text}` out of range"),
                Span::new(start, self.pos),
            )
        })?;
        self.push(TokenKind::Int(value), Span::new(start, self.pos));
        Ok(())
    }

    fn lex_punct(&mut self, start: usize) -> Result<(), MarilError> {
        // `==>` must be tried before `==`.
        if self.src.get(self.pos..self.pos + 3) == Some("==>") {
            self.pos += 3;
            self.push(TokenKind::Arrow, Span::new(start, self.pos));
            return Ok(());
        }
        let kind2 = match self.src.get(self.pos..self.pos + 2) {
            Some("::") => Some(TokenKind::ColonColon),
            Some("==") => Some(TokenKind::EqEq),
            Some("!=") => Some(TokenKind::Ne),
            Some("<=") => Some(TokenKind::Le),
            Some(">=") => Some(TokenKind::Ge),
            Some("<<") => Some(TokenKind::Shl),
            Some(">>") => Some(TokenKind::Shr),
            _ => None,
        };
        if let Some(kind) = kind2 {
            self.pos += 2;
            self.push(kind, Span::new(start, self.pos));
            return Ok(());
        }
        let kind = match self.bytes[self.pos] {
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b':' => TokenKind::Colon,
            b'#' => TokenKind::Hash,
            b'$' => TokenKind::Dollar,
            b'*' => TokenKind::Star,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'/' => TokenKind::Slash,
            b'&' => TokenKind::Amp,
            b'|' => TokenKind::Pipe,
            b'^' => TokenKind::Caret,
            b'~' => TokenKind::Tilde,
            b'!' => TokenKind::Bang,
            b'<' => TokenKind::Lt,
            b'>' => TokenKind::Gt,
            b'=' => TokenKind::Assign,
            b'.' => TokenKind::Dot,
            other => {
                return Err(MarilError::lex(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start, start + 1),
                ));
            }
        };
        self.pos += 1;
        self.push(kind, Span::new(start, self.pos));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_directives_lowercased() {
        let toks = kinds("%reg %Instr %AUX");
        assert_eq!(
            toks[..3],
            [
                TokenKind::Directive("reg".into()),
                TokenKind::Directive("instr".into()),
                TokenKind::Directive("aux".into()),
            ]
        );
    }

    #[test]
    fn lexes_dotted_mnemonics_as_one_ident() {
        let toks = kinds("fadd.d st.d s.movs");
        assert_eq!(
            toks[..3],
            [
                TokenKind::Ident("fadd.d".into()),
                TokenKind::Ident("st.d".into()),
                TokenKind::Ident("s.movs".into()),
            ]
        );
    }

    #[test]
    fn dot_not_followed_by_alnum_is_an_error() {
        assert!(lex("a.").is_err() || kinds("a. ").len() >= 2);
    }

    #[test]
    fn lexes_numbers_and_negative_via_minus_token() {
        let toks = kinds("-32768:32767 0x1F");
        assert_eq!(toks[0], TokenKind::Minus);
        assert_eq!(toks[1], TokenKind::Int(32768));
        assert_eq!(toks[2], TokenKind::Colon);
        assert_eq!(toks[3], TokenKind::Int(32767));
        assert_eq!(toks[4], TokenKind::Int(31));
    }

    #[test]
    fn distinguishes_colon_coloncolon_and_arrow() {
        let toks = kinds(": :: == ==> = !=");
        assert_eq!(
            toks[..6],
            [
                TokenKind::Colon,
                TokenKind::ColonColon,
                TokenKind::EqEq,
                TokenKind::Arrow,
                TokenKind::Assign,
                TokenKind::Ne,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("add /* integer register */ r");
        assert_eq!(
            toks[..2],
            [TokenKind::Ident("add".into()), TokenKind::Ident("r".into())]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let err = lex("add /* oops").unwrap_err();
        assert!(err.to_string().contains("unterminated comment"));
    }

    #[test]
    fn percent_alone_is_modulo() {
        let toks = kinds("$1 % $2");
        assert!(toks.contains(&TokenKind::Percent));
    }

    #[test]
    fn eof_is_final_token() {
        let toks = kinds("");
        assert_eq!(toks, vec![TokenKind::Eof]);
    }

    #[test]
    fn spans_point_into_source() {
        let toks = lex("  add").unwrap();
        assert_eq!(toks[0].span, Span::new(2, 5));
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("add @").unwrap_err();
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn lexes_shift_operators() {
        let toks = kinds("$1 << 16 >> 2");
        assert!(toks.contains(&TokenKind::Shl));
        assert!(toks.contains(&TokenKind::Shr));
    }
}
