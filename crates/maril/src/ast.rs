//! Abstract syntax for a parsed (but not yet analysed) Maril
//! description.
//!
//! The parser produces this tree; [`crate::sema`] checks it and lowers
//! it into the compiled [`crate::machine::Machine`] tables.

use crate::error::Span;
use crate::expr::{BinOp, Expr, Stmt};
use crate::machine::Ty;

/// A whole description: `declare { ... } cwvm { ... } instr { ... }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Description {
    /// Items of the `declare` section, in source order.
    pub declare: Vec<DeclItem>,
    /// Items of the `cwvm` section, in source order.
    pub cwvm: Vec<CwvmItem>,
    /// Items of the `instr` section, in source order.
    pub instrs: Vec<InstrItem>,
    /// Source spans per section, for Table 1 line statistics.
    pub section_spans: SectionSpans,
}

/// Source spans of the three sections (paper Table 1 reports the
/// `declare` and `cwvm` sizes in lines; line counts are derived from
/// these spans against the original source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSpans {
    /// Span of the `declare { ... }` block.
    pub declare: Option<Span>,
    /// Span of the `cwvm { ... }` block.
    pub cwvm: Option<Span>,
    /// Span of the `instr { ... }` block.
    pub instr: Option<Span>,
}

/// A reference to one register of a class: `r[3]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegRef {
    /// Register class name, e.g. `r`.
    pub class: String,
    /// Index within the class.
    pub index: u32,
    /// Source location.
    pub span: Span,
}

/// A reference to a contiguous sub-range of a class: `r[1:5]` or `r`
/// (the whole class, index range omitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegRange {
    /// Register class name.
    pub class: String,
    /// Inclusive index range, or `None` for the whole class.
    pub range: Option<(u32, u32)>,
    /// Source location.
    pub span: Span,
}

/// One item of the `declare` section.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclItem {
    /// `%reg r[0:7] (int);` or `%reg m1 (double; clk_m) +temporal;`
    Reg {
        /// Class (or temporal register) name.
        name: String,
        /// Inclusive index range; `None` declares a single register.
        range: Option<(u32, u32)>,
        /// Datatypes that may reside in these registers.
        tys: Vec<Ty>,
        /// Clock the register is based on (temporal registers only).
        clock: Option<String>,
        /// `+temporal` flag.
        temporal: bool,
        /// Source location.
        span: Span,
    },
    /// `%equiv r[0] d[0];` — the second class overlays the first.
    Equiv {
        /// Anchor register in the first (smaller-granularity) class.
        a: RegRef,
        /// Anchor register in the overlaying class.
        b: RegRef,
        /// Source location.
        span: Span,
    },
    /// `%resource IF; ID; IE;` — processor resources.
    Resource {
        /// Declared resource names.
        names: Vec<String>,
        /// Source location.
        span: Span,
    },
    /// `%def const16 [-32768:32767];` — immediate operand range.
    Def {
        /// Name used as `#const16` in operand lists.
        name: String,
        /// Inclusive value range.
        range: (i64, i64),
        /// Optional `+flag`s.
        flags: Vec<String>,
        /// Source location.
        span: Span,
    },
    /// `%label rlab [-32768:32767] +relative;` — branch offsets.
    Label {
        /// Name used as `#rlab` in operand lists.
        name: String,
        /// Inclusive offset range.
        range: (i64, i64),
        /// Optional `+flag`s (e.g. `relative`, `absolute`).
        flags: Vec<String>,
        /// Source location.
        span: Span,
    },
    /// `%memory m[0:2147483647];` — a memory bank.
    Memory {
        /// Name used as `m[...]` in semantic expressions.
        name: String,
        /// Inclusive address range.
        range: (i64, i64),
        /// Source location.
        span: Span,
    },
    /// `%clock clk_m;` — a clock for an explicitly advanced pipeline.
    Clock {
        /// Clock name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// `%element pfmul;` — a long-instruction-word element.
    Element {
        /// Element name (the printable long-word mnemonic).
        name: String,
        /// Source location.
        span: Span,
    },
    /// `%class mul_ops { pfmul, m12apm };` — a packing class.
    Class {
        /// Class name referenced as `<mul_ops>` in instruction
        /// directives.
        name: String,
        /// Member elements.
        elements: Vec<String>,
        /// Source location.
        span: Span,
    },
}

/// One item of the `cwvm` section.
#[derive(Debug, Clone, PartialEq)]
pub enum CwvmItem {
    /// `%general (int) r;`
    General {
        /// Datatype served by the class.
        ty: Ty,
        /// Register class name.
        class: String,
        /// Source location.
        span: Span,
    },
    /// `%allocable r[1:5];`
    Allocable(RegRange),
    /// `%calleesave r[4:7];`
    CalleeSave(RegRange),
    /// `%sp r[7] +down;`
    Sp {
        /// The stack-pointer register.
        reg: RegRef,
        /// `+down` — the stack grows towards lower addresses.
        down: bool,
    },
    /// `%fp r[6] +down;`
    Fp {
        /// The frame-pointer register.
        reg: RegRef,
        /// `+down` flag.
        down: bool,
    },
    /// `%retaddr r[1];`
    RetAddr(RegRef),
    /// `%gp r[5];` — optional global data pointer.
    GlobalPtr(RegRef),
    /// `%hard r[0] 0;` — a register hard-wired to a value.
    Hard {
        /// The hard-wired register.
        reg: RegRef,
        /// Its constant value.
        value: i64,
    },
    /// `%arg (int) r[2] 1;` — the N-th argument register for a type.
    Arg {
        /// Argument datatype.
        ty: Ty,
        /// Register carrying the argument.
        reg: RegRef,
        /// 1-based argument position.
        index: u32,
    },
    /// `%result r[2] (int);`
    Result {
        /// Register carrying the result.
        reg: RegRef,
        /// Result datatype.
        ty: Ty,
    },
}

/// Operand shape in an instruction directive's operand list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperandAst {
    /// A register of a class: `r`.
    RegClass(String),
    /// A specific register: `r[0]`.
    FixedReg(RegRef),
    /// An immediate constrained by a `%def`: `#const16`.
    Imm(String),
    /// A branch/call target constrained by a `%label`: `#rlab`.
    Lab(String),
}

/// The body of an `%instr` or `%move` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrDef {
    /// Instruction mnemonic, e.g. `fadd.d`.
    pub mnemonic: String,
    /// `true` for `*func` escapes (`%move *movd d, d`).
    pub escape: bool,
    /// Optional `[label]` so escapes can reference this directive.
    pub label: Option<String>,
    /// Operand shapes in order (`$1` is `operands[0]`).
    pub operands: Vec<OperandAst>,
    /// Optional type constraint `(int)` used during selection.
    pub ty: Option<Ty>,
    /// Optional clock affected, from `(double; clk_m)`.
    pub clock: Option<String>,
    /// Optional packing class `<mul_ops>`.
    pub class: Option<String>,
    /// Semantic statements between braces.
    pub sem: Vec<Stmt>,
    /// Resource names required per cycle: `[IF; ID; F1,ID; ...]`.
    pub resources: Vec<Vec<String>>,
    /// `(cost, latency, slots)` triple.
    pub cost: i64,
    /// Cycles before the result may be used.
    pub latency: i64,
    /// Delay slots after the instruction (sign gives the execution
    /// condition, see paper §3.3).
    pub slots: i64,
    /// Source location.
    pub span: Span,
}

/// The operand condition on an `%aux` directive:
/// `(1.$1 == 2.$1)` — operand `$1` of the first instruction equals
/// operand `$1` of the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxCond {
    /// Operand index on the first instruction.
    pub first_op: u8,
    /// Operand index on the second instruction.
    pub second_op: u8,
}

/// One item of the `instr` section.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrItem {
    /// A plain machine instruction.
    Instr(InstrDef),
    /// A `%move` directive — how to copy within a register set.
    Move(InstrDef),
    /// `%aux fadd.d : st.d (1.$1 == 2.$1) (7)` — latency override for
    /// an instruction pair.
    Aux {
        /// Mnemonic of the producing instruction.
        first: String,
        /// Mnemonic of the consuming instruction.
        second: String,
        /// Operand condition, `None` meaning "always".
        cond: Option<AuxCond>,
        /// Overriding latency.
        latency: i64,
        /// Source location.
        span: Span,
    },
    /// A glue transformation. The paper's example rewrites branch
    /// comparisons: `{($1 == $2) ==> (($1 :: $2) == 0);}`.
    Glue {
        /// Operand class names for `$k` (documentation only).
        operands: Vec<OperandAst>,
        /// The rule itself.
        rule: GlueRule,
        /// Source location.
        span: Span,
    },
}

/// A tree-to-tree rewrite applied to the IL before code selection.
///
/// The left side is a *comparison shape* (`lhs REL rhs`) or a plain
/// expression; the right side is the replacement, which may use the
/// built-ins `high`, `low` and `eval`.
#[derive(Debug, Clone, PartialEq)]
pub enum GlueRule {
    /// Rewrites a branch condition: `(a REL b) ==> (a' REL' b')`.
    Cond {
        /// Relation matched on the left.
        from_rel: BinOp,
        /// Replacement relation.
        to_rel: BinOp,
        /// Replacement left operand (in terms of `$1`, `$2`).
        to_lhs: Expr,
        /// Replacement right operand.
        to_rhs: Expr,
    },
    /// Rewrites a value expression: `expr ==> expr'`.
    Value {
        /// Pattern matched (in terms of `$k` wildcards).
        from: Expr,
        /// Replacement.
        to: Expr,
    },
}
