//! Pretty-printing a parsed [`Description`] back to Maril source.
//!
//! The printer is the inverse of the parser up to whitespace and
//! comments: `parse(print(parse(s)))` equals `parse(s)`. Useful for
//! tooling (normalising descriptions, emitting machine variants
//! programmatically) and as a strong parser test.

use crate::ast::*;
use crate::expr::{LValue, Stmt};
use std::fmt::Write as _;

/// Renders a description as Maril source.
pub fn print_description(desc: &Description) -> String {
    let mut out = String::new();
    if !desc.declare.is_empty() {
        out.push_str("declare {\n");
        for item in &desc.declare {
            let _ = writeln!(out, "    {}", print_decl(item));
        }
        out.push_str("}\n");
    }
    if !desc.cwvm.is_empty() {
        out.push_str("cwvm {\n");
        for item in &desc.cwvm {
            let _ = writeln!(out, "    {}", print_cwvm(item));
        }
        out.push_str("}\n");
    }
    if !desc.instrs.is_empty() {
        out.push_str("instr {\n");
        for item in &desc.instrs {
            let _ = writeln!(out, "    {}", print_instr_item(item));
        }
        out.push_str("}\n");
    }
    out
}

fn print_range(range: &Option<(u32, u32)>) -> String {
    match range {
        Some((lo, hi)) => format!("[{lo}:{hi}]"),
        None => String::new(),
    }
}

fn print_flags(flags: &[String]) -> String {
    flags.iter().map(|f| format!(" +{f}")).collect::<String>()
}

fn print_decl(item: &DeclItem) -> String {
    match item {
        DeclItem::Reg {
            name,
            range,
            tys,
            clock,
            temporal,
            ..
        } => {
            let tys: Vec<String> = tys.iter().map(|t| t.to_string()).collect();
            let clock = clock.as_ref().map(|c| format!("; {c}")).unwrap_or_default();
            let temporal = if *temporal { " +temporal" } else { "" };
            format!(
                "%reg {name}{} ({}{clock}){temporal};",
                print_range(range),
                tys.join(", ")
            )
        }
        DeclItem::Equiv { a, b, .. } => {
            format!("%equiv {}[{}] {}[{}];", a.class, a.index, b.class, b.index)
        }
        DeclItem::Resource { names, .. } => {
            format!("%resource {};", names.join("; "))
        }
        DeclItem::Def {
            name, range, flags, ..
        } => format!(
            "%def {name} [{}:{}]{};",
            range.0,
            range.1,
            print_flags(flags)
        ),
        DeclItem::Label {
            name, range, flags, ..
        } => format!(
            "%label {name} [{}:{}]{};",
            range.0,
            range.1,
            print_flags(flags)
        ),
        DeclItem::Memory { name, range, .. } => {
            format!("%memory {name}[{}:{}];", range.0, range.1)
        }
        DeclItem::Clock { name, .. } => format!("%clock {name};"),
        DeclItem::Element { name, .. } => format!("%element {name};"),
        DeclItem::Class { name, elements, .. } => {
            format!("%class {name} {{ {} }};", elements.join(", "))
        }
    }
}

fn print_reg_ref(r: &RegRef) -> String {
    format!("{}[{}]", r.class, r.index)
}

fn print_reg_range(r: &RegRange) -> String {
    format!("{}{}", r.class, print_range(&r.range))
}

fn print_cwvm(item: &CwvmItem) -> String {
    match item {
        CwvmItem::General { ty, class, .. } => format!("%general ({ty}) {class};"),
        CwvmItem::Allocable(r) => format!("%allocable {};", print_reg_range(r)),
        CwvmItem::CalleeSave(r) => format!("%calleesave {};", print_reg_range(r)),
        CwvmItem::Sp { reg, down } => format!(
            "%sp {}{};",
            print_reg_ref(reg),
            if *down { " +down" } else { "" }
        ),
        CwvmItem::Fp { reg, down } => format!(
            "%fp {}{};",
            print_reg_ref(reg),
            if *down { " +down" } else { "" }
        ),
        CwvmItem::RetAddr(reg) => format!("%retaddr {};", print_reg_ref(reg)),
        CwvmItem::GlobalPtr(reg) => format!("%gp {};", print_reg_ref(reg)),
        CwvmItem::Hard { reg, value } => format!("%hard {} {value};", print_reg_ref(reg)),
        CwvmItem::Arg { ty, reg, index } => {
            format!("%arg ({ty}) {} {index};", print_reg_ref(reg))
        }
        CwvmItem::Result { reg, ty } => format!("%result {} ({ty});", print_reg_ref(reg)),
    }
}

fn print_operand(op: &OperandAst) -> String {
    match op {
        OperandAst::RegClass(name) => name.clone(),
        OperandAst::FixedReg(r) => print_reg_ref(r),
        OperandAst::Imm(name) | OperandAst::Lab(name) => format!("#{name}"),
    }
}

fn print_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Assign(LValue::Operand(k), e) => format!("${k} = {};", print_expr(e)),
        Stmt::Assign(LValue::Temporal(t), e) => format!("{t} = {};", print_expr(e)),
        Stmt::Assign(LValue::Mem(bank, a), e) => {
            format!("{bank}[{}] = {};", print_expr(a), print_expr(e))
        }
        Stmt::CondGoto {
            rel,
            lhs,
            rhs,
            target,
        } => format!(
            "if ({} {rel} {}) goto ${target};",
            print_expr(lhs),
            print_expr(rhs)
        ),
        Stmt::Goto(k) => format!("goto ${k};"),
        Stmt::Call(k) => format!("call ${k};"),
        Stmt::Return => "return;".into(),
        Stmt::Nop => String::new(),
    }
}

fn print_expr(e: &crate::Expr) -> String {
    // The Display impl already parenthesises compound expressions.
    e.to_string()
}

fn print_instr_item(item: &InstrItem) -> String {
    match item {
        InstrItem::Instr(def) => format!("%instr {}", print_instr_def(def)),
        InstrItem::Move(def) => format!("%move {}", print_instr_def(def)),
        InstrItem::Aux {
            first,
            second,
            cond,
            latency,
            ..
        } => {
            let cond = cond
                .map(|c| format!(" (1.${} == 2.${})", c.first_op, c.second_op))
                .unwrap_or_default();
            format!("%aux {first} : {second}{cond} ({latency})")
        }
        InstrItem::Glue { operands, rule, .. } => {
            let ops: Vec<String> = operands.iter().map(print_operand).collect();
            let ops = if ops.is_empty() {
                String::new()
            } else {
                format!("{} ", ops.join(", "))
            };
            let body = match rule {
                GlueRule::Cond {
                    from_rel,
                    to_rel,
                    to_lhs,
                    to_rhs,
                } => format!(
                    "($1 {from_rel} $2) ==> ({} {to_rel} {})",
                    print_expr(to_lhs),
                    print_expr(to_rhs)
                ),
                GlueRule::Value { from, to } => {
                    format!("{} ==> {}", print_expr(from), print_expr(to))
                }
            };
            format!("%glue {ops}{{{body};}}")
        }
    }
}

fn print_instr_def(def: &InstrDef) -> String {
    let mut out = String::new();
    if let Some(label) = &def.label {
        let _ = write!(out, "[{label}] ");
    }
    if def.escape {
        out.push('*');
    }
    out.push_str(&def.mnemonic);
    if !def.operands.is_empty() {
        let ops: Vec<String> = def.operands.iter().map(print_operand).collect();
        let _ = write!(out, " {}", ops.join(", "));
    }
    if let Some(ty) = def.ty {
        match &def.clock {
            Some(c) => {
                let _ = write!(out, " ({ty}; {c})");
            }
            None => {
                let _ = write!(out, " ({ty})");
            }
        }
    }
    if let Some(class) = &def.class {
        let _ = write!(out, " <{class}>");
    }
    let stmts: Vec<String> = def.sem.iter().map(print_stmt).collect();
    let _ = write!(out, " {{{}}}", stmts.join(" "));
    let cycles: Vec<String> = def.resources.iter().map(|c| c.join(",")).collect();
    let _ = write!(out, " [{}]", {
        let mut t = cycles.join("; ");
        if !t.is_empty() {
            t.push(';');
        }
        t
    });
    let _ = write!(out, " ({},{},{})", def.cost, def.latency, def.slots);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    /// Strips spans so round-tripped ASTs compare structurally.
    fn normalize(desc: &Description) -> String {
        // Printing twice normalises formatting; comparing the printed
        // forms avoids span differences entirely.
        print_description(desc)
    }

    fn round_trip(src: &str) {
        let first = parse(&lex(src).unwrap()).unwrap();
        let printed = print_description(&first);
        let second = parse(&lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            normalize(&first),
            normalize(&second),
            "round trip changed the description:\n{printed}"
        );
    }

    #[test]
    fn round_trips_a_kitchen_sink() {
        round_trip(
            r#"
            declare {
                %reg r[0:7] (int);
                %reg d[0:3] (double);
                %equiv r[0] d[0];
                %resource IF; ID; IE;
                %clock clk_m;
                %reg m1 (double; clk_m) +temporal;
                %element pfmul;
                %element pfadd;
                %class muls { pfmul, pfadd };
                %def const16 [-32768:32767];
                %def addr [0:65535] +abs;
                %label rlab [-1024:1023] +relative;
                %memory m[0:1048575];
            }
            cwvm {
                %general (int) r;
                %allocable r[1:5];
                %calleesave r[4:7];
                %sp r[7] +down;
                %fp r[6];
                %retaddr r[1];
                %hard r[0] 0;
                %arg (int) r[2] 1;
                %result r[2] (int);
            }
            instr {
                %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID,IE;] (1,1,0)
                %instr M1 d, d (double; clk_m) <muls> {m1 = $1 * $2;} [IF;] (1,1,0)
                %instr st r, r, #const16 {m[$2+$3] = $1;} [IF;] (1,1,0)
                %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IF;] (1,2,-1)
                %instr nop {} [IF;] (1,1,0)
                %move [s.movs] add2 r, r, r[0] {$1 = $2;} [IF;] (1,1,0)
                %move *movd d, d {$1 = $2;} [] (0,0,0)
                %aux add : st (1.$1 == 2.$1) (3)
                %aux add : add (2)
                %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
            }
            "#,
        );
    }

    #[test]
    fn round_trips_all_bundled_machine_sections() {
        // The bundled descriptions live in marion-machines (which
        // depends on this crate), so this test uses representative
        // fragments of each feature instead; the machines crate has
        // its own parse tests.
        round_trip("declare { %resource A; B; C; }");
        round_trip("instr { %instr ret {return;} [A;] (1,1,1) }");
        round_trip(
            "instr { %instr bsr #l {call $1;} [A;] (1,1,1) }
                    declare { %label l [0:1] +relative; %resource A; }",
        );
    }
}
