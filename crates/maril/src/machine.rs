//! The compiled machine model.
//!
//! [`Machine`] is what the Marion *code generator generator* produces
//! from a Maril description: selection patterns (the semantic trees of
//! each template, in description order), scheduling tables (resource
//! vectors, latencies, auxiliary latencies, delay slots, packing
//! classes, clock effects) and the runtime model (CWVM).

use crate::error::MarilError;
use crate::expr::{Expr, LValue, Stmt};
use std::fmt;

/// The signed C-language native datatypes Maril supports, plus
/// pointers (paper §3.1: "Maril supports the signed C Language native
/// types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// 8-bit `char`.
    Char,
    /// 16-bit `short`.
    Short,
    /// 32-bit `int`.
    Int,
    /// 32-bit `long` (this is 1991).
    Long,
    /// 32-bit `float`.
    Float,
    /// 64-bit `double`.
    Double,
    /// 32-bit pointer.
    Ptr,
}

impl Ty {
    /// Size of a value of this type, in bytes.
    pub fn size(self) -> u32 {
        match self {
            Ty::Char => 1,
            Ty::Short => 2,
            Ty::Int | Ty::Long | Ty::Float | Ty::Ptr => 4,
            Ty::Double => 8,
        }
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::Float | Ty::Double)
    }

    /// Parses the Maril keyword spelling of a type.
    pub fn from_keyword(kw: &str) -> Option<Ty> {
        Some(match kw {
            "char" => Ty::Char,
            "short" => Ty::Short,
            "int" => Ty::Int,
            "long" => Ty::Long,
            "float" => Ty::Float,
            "double" => Ty::Double,
            "ptr" => Ty::Ptr,
            _ => return None,
        })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ty::Char => "char",
            Ty::Short => "short",
            Ty::Int => "int",
            Ty::Long => "long",
            Ty::Float => "float",
            Ty::Double => "double",
            Ty::Ptr => "ptr",
        })
    }
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Index of a register class in [`Machine::reg_classes`].
    RegClassId
);
id_type!(
    /// Index of an instruction template in [`Machine::templates`].
    TemplateId
);
id_type!(
    /// Index of an immediate range (`%def`) in [`Machine::imm_defs`].
    ImmDefId
);
id_type!(
    /// Index of a label range (`%label`) in [`Machine::label_defs`].
    LabelDefId
);
id_type!(
    /// Index of a clock in [`Machine::clocks`].
    ClockId
);
id_type!(
    /// Index of a packing class in [`Machine::classes`].
    ClassId
);
id_type!(
    /// Index of a temporal register in [`Machine::temporals`].
    TemporalId
);

/// A physical register: class plus index within the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg {
    /// The register class.
    pub class: RegClassId,
    /// Index within the class.
    pub index: u32,
}

impl PhysReg {
    /// Creates a physical register reference.
    pub fn new(class: RegClassId, index: u32) -> Self {
        PhysReg { class, index }
    }
}

/// A 256-bit set used both for processor resources and for packing
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResSet {
    words: [u64; 4],
}

impl ResSet {
    /// The empty set.
    pub const EMPTY: ResSet = ResSet { words: [0; 4] };

    /// A set containing every id in `0..n`.
    pub fn all(n: usize) -> ResSet {
        let mut s = ResSet::EMPTY;
        for i in 0..n.min(256) {
            s.insert(i as u32);
        }
        s
    }

    /// Adds `id` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 256`.
    pub fn insert(&mut self, id: u32) {
        assert!(id < 256, "resource/element id {id} out of range");
        self.words[(id / 64) as usize] |= 1u64 << (id % 64);
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        id < 256 && self.words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }

    /// Whether the two sets share any member.
    pub fn intersects(&self, other: &ResSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ResSet) -> ResSet {
        let mut out = ResSet::EMPTY;
        for i in 0..4 {
            out.words[i] = self.words[i] & other.words[i];
        }
        out
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &ResSet) {
        for i in 0..4 {
            self.words[i] |= other.words[i];
        }
    }

    /// True when no member is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..256u32).filter(move |i| self.contains(*i))
    }

    /// The raw 64-bit words (bit `i` of word `i / 64` = member
    /// `i`). Exposed for structural hashing.
    pub fn words(&self) -> &[u64; 4] {
        &self.words
    }
}

/// A register class (one `%reg` array declaration).
#[derive(Debug, Clone, PartialEq)]
pub struct RegClass {
    /// Class name, e.g. `r`.
    pub name: String,
    /// Number of registers in the class.
    pub count: u32,
    /// Datatypes that may live in these registers.
    pub tys: Vec<Ty>,
    /// Width of one register in *register units* (see
    /// [`Machine::units_of`]): 1 for a 32-bit class, 2 for a 64-bit
    /// class overlaying it, etc.
    pub unit_width: u32,
    /// First global unit id of register 0 of this class.
    pub unit_base: u32,
    /// Stride in units between consecutive registers (equals
    /// `unit_width`; kept separate for clarity).
    pub unit_stride: u32,
}

impl RegClass {
    /// Size in bytes of one register (from the largest residing type).
    pub fn reg_size(&self) -> u32 {
        self.tys.iter().map(|t| t.size()).max().unwrap_or(4)
    }
}

/// A temporal register — a latch of an explicitly advanced pipeline,
/// declared `%reg m1 (double; clk_m) +temporal;`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalReg {
    /// Latch name, e.g. `m1`.
    pub name: String,
    /// Value type held in the latch.
    pub ty: Ty,
    /// The clock whose ticks change this latch.
    pub clock: ClockId,
}

/// An immediate operand range (`%def`).
#[derive(Debug, Clone, PartialEq)]
pub struct ImmDef {
    /// Name referenced as `#name`.
    pub name: String,
    /// Inclusive minimum.
    pub lo: i64,
    /// Inclusive maximum.
    pub hi: i64,
    /// Raw `+flag`s.
    pub flags: Vec<String>,
}

impl ImmDef {
    /// Whether `v` fits the range.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// A label operand range (`%label`).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelDef {
    /// Name referenced as `#name`.
    pub name: String,
    /// Inclusive offset range.
    pub lo: i64,
    /// Inclusive offset range.
    pub hi: i64,
    /// `+relative` — offset is PC-relative.
    pub relative: bool,
}

/// A packing class: the set of long-instruction-word elements a
/// sub-operation may appear in (paper §4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct PackClass {
    /// Class name.
    pub name: String,
    /// Member elements as a bitset over [`Machine::elements`].
    pub elements: ResSet,
}

/// Compiled operand shape of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSpec {
    /// Any register of the class.
    Reg(RegClassId),
    /// A specific register (e.g. hard-wired `r[0]`).
    FixedReg(PhysReg),
    /// An immediate in the given `%def` range.
    Imm(ImmDefId),
    /// A branch/call target in the given `%label` range.
    Lab(LabelDefId),
}

/// An auxiliary latency entry (`%aux`), overriding the producer's
/// normal latency for a particular consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuxLatency {
    /// Producer mnemonic.
    pub first: String,
    /// Consumer mnemonic.
    pub second: String,
    /// Operand-equality condition, `None` = unconditional.
    pub cond: Option<(u8, u8)>,
    /// The overriding latency.
    pub latency: u32,
}

/// A compiled glue transformation.
///
/// The paper's `%glue r, r { ... }` operand prefix constrains the
/// register classes of the matched operands: the rule only fires when
/// operand `$k`'s natural class equals `operand_classes[k-1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GlueRule {
    /// Class constraint per `$k` wildcard (`None` = any).
    pub operand_classes: Vec<Option<RegClassId>>,
    /// The rewrite.
    pub kind: GlueKind,
}

/// The two kinds of glue rewrite.
#[derive(Debug, Clone, PartialEq)]
pub enum GlueKind {
    /// Rewrites a branch condition `a REL b` into `lhs REL' rhs`
    /// (with `$1`/`$2` standing for `a`/`b`).
    Cond {
        /// Relation matched.
        from_rel: crate::expr::BinOp,
        /// Replacement relation.
        to_rel: crate::expr::BinOp,
        /// Replacement left expression.
        to_lhs: Expr,
        /// Replacement right expression.
        to_rhs: Expr,
    },
    /// Rewrites a value tree.
    Value {
        /// Pattern (with `$k` wildcards).
        from: Expr,
        /// Replacement.
        to: Expr,
    },
}

/// The compiled runtime model (`cwvm` section).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cwvm {
    /// General-purpose class per datatype.
    pub general: Vec<(Ty, RegClassId)>,
    /// Registers available to the global register allocator.
    pub allocable: Vec<PhysReg>,
    /// Registers preserved across calls.
    pub callee_save: Vec<PhysReg>,
    /// Stack pointer.
    pub sp: Option<PhysReg>,
    /// Frame pointer.
    pub fp: Option<PhysReg>,
    /// Return-address register.
    pub retaddr: Option<PhysReg>,
    /// Optional global data pointer.
    pub gp: Option<PhysReg>,
    /// Hard-wired registers and their values.
    pub hard: Vec<(PhysReg, i64)>,
    /// Argument registers: (type, register, 1-based position).
    pub args: Vec<(Ty, PhysReg, u32)>,
    /// Result registers per type.
    pub results: Vec<(PhysReg, Ty)>,
    /// Stack grows downward.
    pub stack_down: bool,
}

impl Cwvm {
    /// The general-purpose class for `ty`, if declared.
    pub fn general_class(&self, ty: Ty) -> Option<RegClassId> {
        self.general
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, c)| *c)
            .or_else(|| {
                // Integer-like types share the int class; float falls
                // back to double's class and vice versa.
                let fallback = match ty {
                    Ty::Char | Ty::Short | Ty::Long | Ty::Ptr | Ty::Int => Ty::Int,
                    Ty::Float => Ty::Double,
                    Ty::Double => Ty::Float,
                };
                self.general
                    .iter()
                    .find(|(t, _)| *t == fallback)
                    .map(|(_, c)| *c)
            })
    }

    /// The result register for `ty`, if declared.
    pub fn result_reg(&self, ty: Ty) -> Option<PhysReg> {
        self.results
            .iter()
            .find(|(_, t)| *t == ty)
            .map(|(r, _)| *r)
            .or_else(|| {
                let fallback = match ty {
                    Ty::Char | Ty::Short | Ty::Long | Ty::Ptr => Ty::Int,
                    Ty::Float => Ty::Double,
                    other => other,
                };
                self.results
                    .iter()
                    .find(|(_, t)| *t == fallback)
                    .map(|(r, _)| *r)
            })
    }

    /// Argument registers for `ty`, ordered by position. Exact-type
    /// declarations win; a machine without dedicated `float` argument
    /// registers falls back to its `double` ones (and vice versa).
    pub fn arg_regs(&self, ty: Ty) -> Vec<PhysReg> {
        let key = match ty {
            Ty::Char | Ty::Short | Ty::Long | Ty::Ptr => Ty::Int,
            other => other,
        };
        let collect = |want: Ty| -> Vec<PhysReg> {
            let mut v: Vec<(u32, PhysReg)> = self
                .args
                .iter()
                .filter(|(t, _, _)| {
                    *t == want || (want == Ty::Int && matches!(t, Ty::Ptr | Ty::Long))
                })
                .map(|(_, r, i)| (*i, *r))
                .collect();
            v.sort();
            v.into_iter().map(|(_, r)| r).collect()
        };
        let exact = collect(key);
        if !exact.is_empty() {
            return exact;
        }
        match key {
            Ty::Float => collect(Ty::Double),
            Ty::Double => collect(Ty::Float),
            _ => exact,
        }
    }
}

/// Derived classification of what a template does, computed from its
/// semantic statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TemplateEffects {
    /// Operand indices (1-based) written by the instruction.
    pub defs: Vec<u8>,
    /// Operand indices (1-based) read by the instruction.
    pub uses: Vec<u8>,
    /// Temporal registers written.
    pub temporal_defs: Vec<TemporalId>,
    /// Temporal registers read.
    pub temporal_uses: Vec<TemporalId>,
    /// Reads a memory bank.
    pub reads_mem: bool,
    /// Writes a memory bank.
    pub writes_mem: bool,
    /// Is a conditional branch.
    pub is_cond_branch: bool,
    /// Is an unconditional branch.
    pub is_goto: bool,
    /// Is a call.
    pub is_call: bool,
    /// Is a return.
    pub is_return: bool,
}

impl TemplateEffects {
    /// True if the instruction transfers control.
    pub fn is_control(&self) -> bool {
        self.is_cond_branch || self.is_goto || self.is_call || self.is_return
    }
}

/// One compiled instruction template (from an `%instr` or `%move`
/// directive).
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Mnemonic as written in the description.
    pub mnemonic: String,
    /// Optional `[label]` naming this directive.
    pub label: Option<String>,
    /// `Some(fn_name)` when this is a `*func` escape to be expanded by
    /// a user-supplied function instead of emitted directly.
    pub escape: Option<String>,
    /// Operand shapes; `$k` refers to `operands[k-1]`.
    pub operands: Vec<OperandSpec>,
    /// Type constraint for selection.
    pub ty: Option<Ty>,
    /// Clock this instruction advances (EAP sub-operations).
    pub affects_clock: Option<ClockId>,
    /// Packing class, restricting which long-word elements this
    /// sub-operation may appear in.
    pub class: Option<ClassId>,
    /// Semantic statements.
    pub sem: Vec<Stmt>,
    /// Resources needed per cycle after issue.
    pub rsrc: Vec<ResSet>,
    /// Cost (0 marks a dummy instruction that is never emitted).
    pub cost: u32,
    /// Normal result latency in cycles.
    pub latency: u32,
    /// Delay slots (sign encodes the execution condition).
    pub slots: i32,
    /// Whether this came from a `%move` directive.
    pub is_move: bool,
    /// Derived def/use/branch classification.
    pub effects: TemplateEffects,
}

impl Template {
    /// True for zero-cost dummy instructions (never emitted).
    pub fn is_dummy(&self) -> bool {
        self.cost == 0 && self.escape.is_none()
    }

    /// The register class written by this instruction, if any.
    pub fn def_class(&self) -> Option<RegClassId> {
        self.effects
            .defs
            .first()
            .and_then(|k| match self.operands.get((*k - 1) as usize) {
                Some(OperandSpec::Reg(c)) => Some(*c),
                Some(OperandSpec::FixedReg(p)) => Some(p.class),
                _ => None,
            })
    }
}

/// The root shape of an IR value node, used to look up selection
/// candidates in a [`SelectionIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootShape {
    /// A binary arithmetic node.
    Bin(crate::expr::BinOp),
    /// A unary arithmetic node.
    Un(crate::expr::UnOp),
    /// A memory load.
    Load,
    /// A type conversion.
    Cvt,
    /// A constant (or constant-foldable) value, or a global address —
    /// anything an immediate operand or `Int` literal pattern could
    /// subsume.
    Imm,
    /// Anything else (only temporal-chain patterns can apply).
    Other,
}

/// A dispatch index from pattern-root shape to the candidate template
/// list, precomputed once per [`Machine`] — the table the "code
/// generator generator" step builds so the selector consults a
/// handful of templates instead of scanning the whole description.
///
/// Every candidate list is stored in **description order** (ascending
/// [`TemplateId`]), so iterating a list preserves the paper's
/// "first declared pattern wins" tie-break exactly. Completeness
/// invariant: for every IR node, the list returned by
/// [`SelectionIndex::value_candidates`] is a superset of the templates
/// the brute-force scan could have matched — templates whose semantic
/// root is a temporal register (chain launchers like the i860's
/// `FWB d {$1 = m3}`) can match *any* node shape through a producer
/// chain, so they appear merged into every lookup.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectionIndex {
    /// Value templates rooted `$1 = a OP b`, per operator.
    bin: Vec<(crate::expr::BinOp, Vec<TemplateId>)>,
    /// Value templates rooted `$1 = OP a`, per operator.
    un: Vec<(crate::expr::UnOp, Vec<TemplateId>)>,
    /// Value templates rooted `$1 = m[addr]`.
    load: Vec<TemplateId>,
    /// Value templates rooted at a conversion.
    cvt: Vec<TemplateId>,
    /// Value templates rooted `$1 = #imm` / `$1 = <literal>` /
    /// `$1 = <hard-wired reg>` — candidates for constants and global
    /// addresses.
    imm: Vec<TemplateId>,
    /// Value templates rooted at a temporal register: candidates for
    /// every node shape (resolved through producer chains).
    chained: Vec<TemplateId>,
    /// Load-immediate templates (`$1 = $k` with an immediate operand
    /// spec), including escape expansions — the `emit_li` scan.
    load_imm: Vec<TemplateId>,
    /// Store templates (`m[addr] = value`).
    stores: Vec<TemplateId>,
    /// Conditional-branch templates (`if (a REL b) goto $k`).
    cond_branches: Vec<TemplateId>,
    /// Unconditional-branch templates (`goto $k`).
    gotos: Vec<TemplateId>,
    /// Templates defining each temporal register, indexed by
    /// [`TemporalId`] — the chain-producer scan.
    temporal_defs: Vec<Vec<TemplateId>>,
}

impl SelectionIndex {
    /// Builds the index from a template list (description order).
    fn build(templates: &[Template], temporal_count: usize) -> SelectionIndex {
        use crate::expr::Expr as E;
        let mut ix = SelectionIndex {
            temporal_defs: vec![Vec::new(); temporal_count],
            ..SelectionIndex::default()
        };
        for (i, t) in templates.iter().enumerate() {
            let tid = TemplateId(i as u32);
            for &td in &t.effects.temporal_defs {
                ix.temporal_defs[td.0 as usize].push(tid);
            }
            match t.sem.as_slice() {
                [Stmt::Assign(LValue::Operand(1), rhs)] => match rhs {
                    E::Bin(op, _, _) => match ix.bin.iter_mut().find(|(o, _)| o == op) {
                        Some((_, v)) => v.push(tid),
                        None => ix.bin.push((*op, vec![tid])),
                    },
                    E::Un(op, _) => match ix.un.iter_mut().find(|(o, _)| o == op) {
                        Some((_, v)) => v.push(tid),
                        None => ix.un.push((*op, vec![tid])),
                    },
                    E::Mem(_, _) => ix.load.push(tid),
                    E::Convert(_, _) => ix.cvt.push(tid),
                    E::Int(_) => ix.imm.push(tid),
                    E::Temporal(_) => ix.chained.push(tid),
                    E::Operand(k) => {
                        // `$1 = $k`: an immediate spec is a
                        // load-immediate pattern; a hard-wired register
                        // spec subsumes constants; a plain register
                        // spec is a move, which value selection skips.
                        match t.operands.get((*k - 1) as usize) {
                            Some(OperandSpec::Imm(_)) => {
                                ix.imm.push(tid);
                                ix.load_imm.push(tid);
                            }
                            Some(OperandSpec::FixedReg(_)) | Some(OperandSpec::Reg(_)) => {}
                            _ => {}
                        }
                    }
                    E::Call(..) => {}
                },
                [Stmt::Assign(LValue::Mem(..), _)] => ix.stores.push(tid),
                [Stmt::CondGoto { .. }] => ix.cond_branches.push(tid),
                [Stmt::Goto(_)] => ix.gotos.push(tid),
                _ => {}
            }
        }
        ix
    }

    /// Candidate value templates for a node of the given root shape,
    /// in description order. `foldable` marks nodes that fold to an
    /// integer constant (an `Un(Neg)` over a literal also matches
    /// immediate patterns, not just negation patterns).
    pub fn value_candidates(&self, shape: RootShape, foldable: bool) -> Vec<TemplateId> {
        let shaped: &[TemplateId] = match shape {
            RootShape::Bin(op) => self
                .bin
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, v)| v.as_slice())
                .unwrap_or(&[]),
            RootShape::Un(op) => self
                .un
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, v)| v.as_slice())
                .unwrap_or(&[]),
            RootShape::Load => &self.load,
            RootShape::Cvt => &self.cvt,
            RootShape::Imm => &self.imm,
            RootShape::Other => &[],
        };
        // `Imm` already names the immediate bucket; merge it in for
        // foldable nodes of other shapes.
        let imm: &[TemplateId] = if foldable && !matches!(shape, RootShape::Imm) {
            &self.imm
        } else {
            &[]
        };
        let mut out = Vec::with_capacity(shaped.len() + imm.len() + self.chained.len());
        out.extend_from_slice(shaped);
        out.extend_from_slice(imm);
        out.extend_from_slice(&self.chained);
        out.sort_unstable();
        out
    }

    /// Load-immediate templates, in description order.
    pub fn load_imm_candidates(&self) -> &[TemplateId] {
        &self.load_imm
    }

    /// Store templates, in description order.
    pub fn store_candidates(&self) -> &[TemplateId] {
        &self.stores
    }

    /// Conditional-branch templates, in description order.
    pub fn cond_branch_candidates(&self) -> &[TemplateId] {
        &self.cond_branches
    }

    /// Unconditional-branch templates, in description order.
    pub fn goto_candidates(&self) -> &[TemplateId] {
        &self.gotos
    }

    /// Templates defining temporal register `id`, in description
    /// order.
    pub fn temporal_def_candidates(&self, id: TemporalId) -> &[TemplateId] {
        &self.temporal_defs[id.0 as usize]
    }
}

/// The fully compiled machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    name: String,
    reg_classes: Vec<RegClass>,
    temporals: Vec<TemporalReg>,
    resources: Vec<String>,
    imm_defs: Vec<ImmDef>,
    label_defs: Vec<LabelDef>,
    memories: Vec<String>,
    clocks: Vec<String>,
    elements: Vec<String>,
    classes: Vec<PackClass>,
    templates: Vec<Template>,
    aux: Vec<AuxLatency>,
    glue: Vec<GlueRule>,
    cwvm: Cwvm,
    stats: crate::stats::DescriptionStats,
    index: SelectionIndex,
    /// Indices into `aux` whose `first` mnemonic is the template's,
    /// per producer template id — derived at construction so
    /// [`Machine::edge_latency`] touches the aux list only for the
    /// few templates that actually carry `%aux` overrides.
    aux_by_first: Vec<Vec<u32>>,
}

impl Machine {
    /// Parses and analyses a full Maril description.
    ///
    /// # Errors
    ///
    /// Returns the first lexical, syntactic or semantic error found,
    /// with a source span (render it with [`MarilError::render`]).
    pub fn parse(name: &str, src: &str) -> Result<Machine, Box<MarilError>> {
        let tokens = crate::lexer::lex(src).map_err(Box::new)?;
        let desc = crate::parser::parse(&tokens).map_err(Box::new)?;
        crate::sema::analyze_with_source(name, src, &desc).map_err(Box::new)
    }

    /// Internal constructor used by semantic analysis.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        reg_classes: Vec<RegClass>,
        temporals: Vec<TemporalReg>,
        resources: Vec<String>,
        imm_defs: Vec<ImmDef>,
        label_defs: Vec<LabelDef>,
        memories: Vec<String>,
        clocks: Vec<String>,
        elements: Vec<String>,
        classes: Vec<PackClass>,
        templates: Vec<Template>,
        aux: Vec<AuxLatency>,
        glue: Vec<GlueRule>,
        cwvm: Cwvm,
        stats: crate::stats::DescriptionStats,
    ) -> Machine {
        let index = SelectionIndex::build(&templates, temporals.len());
        let aux_by_first: Vec<Vec<u32>> = templates
            .iter()
            .map(|t| {
                aux.iter()
                    .enumerate()
                    .filter(|(_, a)| a.first == t.mnemonic)
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
        Machine {
            name,
            reg_classes,
            temporals,
            resources,
            imm_defs,
            label_defs,
            memories,
            clocks,
            elements,
            classes,
            templates,
            aux,
            glue,
            cwvm,
            stats,
            index,
            aux_by_first,
        }
    }

    /// The precomputed selection dispatch index (built once, at
    /// description-compile time).
    pub fn selection_index(&self) -> &SelectionIndex {
        &self.index
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All register classes.
    pub fn reg_classes(&self) -> &[RegClass] {
        &self.reg_classes
    }

    /// One register class.
    pub fn reg_class(&self, id: RegClassId) -> &RegClass {
        &self.reg_classes[id.0 as usize]
    }

    /// Looks up a register class by name.
    pub fn reg_class_by_name(&self, name: &str) -> Option<RegClassId> {
        self.reg_classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| RegClassId(i as u32))
    }

    /// All temporal registers.
    pub fn temporals(&self) -> &[TemporalReg] {
        &self.temporals
    }

    /// Looks up a temporal register by name.
    pub fn temporal_by_name(&self, name: &str) -> Option<TemporalId> {
        self.temporals
            .iter()
            .position(|t| t.name == name)
            .map(|i| TemporalId(i as u32))
    }

    /// One temporal register.
    pub fn temporal(&self, id: TemporalId) -> &TemporalReg {
        &self.temporals[id.0 as usize]
    }

    /// Declared resource names; the index is the resource id.
    pub fn resources(&self) -> &[String] {
        &self.resources
    }

    /// Immediate ranges.
    pub fn imm_defs(&self) -> &[ImmDef] {
        &self.imm_defs
    }

    /// One immediate range.
    pub fn imm_def(&self, id: ImmDefId) -> &ImmDef {
        &self.imm_defs[id.0 as usize]
    }

    /// Label ranges.
    pub fn label_defs(&self) -> &[LabelDef] {
        &self.label_defs
    }

    /// Declared memory banks.
    pub fn memories(&self) -> &[String] {
        &self.memories
    }

    /// Declared clocks.
    pub fn clocks(&self) -> &[String] {
        &self.clocks
    }

    /// Declared long-word elements.
    pub fn elements(&self) -> &[String] {
        &self.elements
    }

    /// Declared packing classes.
    pub fn classes(&self) -> &[PackClass] {
        &self.classes
    }

    /// One packing class.
    pub fn class(&self, id: ClassId) -> &PackClass {
        &self.classes[id.0 as usize]
    }

    /// All instruction templates, in description order (the selector
    /// tries them in this order).
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// One template.
    pub fn template(&self, id: TemplateId) -> &Template {
        &self.templates[id.0 as usize]
    }

    /// Finds the first template with the given mnemonic.
    pub fn template_by_mnemonic(&self, mnemonic: &str) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| t.mnemonic == mnemonic)
            .map(|i| TemplateId(i as u32))
    }

    /// Finds a template by its `[label]`.
    pub fn template_by_label(&self, label: &str) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| t.label.as_deref() == Some(label))
            .map(|i| TemplateId(i as u32))
    }

    /// The auxiliary-latency table.
    pub fn aux_latencies(&self) -> &[AuxLatency] {
        &self.aux
    }

    /// Returns a copy of this machine with all `%aux` directives
    /// removed (for ablation experiments on the value of pair-specific
    /// latencies).
    pub fn without_aux(&self) -> Machine {
        let mut m = self.clone();
        m.aux.clear();
        m.aux_by_first = vec![Vec::new(); m.templates.len()];
        m
    }

    /// Computes the latency of a dependence edge from `first` to
    /// `second`, honouring `%aux` overrides. `ops_equal(i, j)` must
    /// report whether operand `i` of the producer equals operand `j`
    /// of the consumer.
    pub fn edge_latency(
        &self,
        first: TemplateId,
        second: TemplateId,
        ops_equal: &dyn Fn(u8, u8) -> bool,
    ) -> u32 {
        let ft = self.template(first);
        // Only the few templates named in `%aux` directives have
        // candidate overrides; everything else returns immediately.
        let cands = &self.aux_by_first[first.0 as usize];
        if cands.is_empty() {
            return ft.latency;
        }
        let st = self.template(second);
        for &ai in cands {
            let aux = &self.aux[ai as usize];
            if aux.second == st.mnemonic {
                match aux.cond {
                    None => return aux.latency,
                    Some((i, j)) if ops_equal(i, j) => return aux.latency,
                    _ => {}
                }
            }
        }
        ft.latency
    }

    /// Compiled glue transformations, in description order.
    pub fn glue_rules(&self) -> &[GlueRule] {
        &self.glue
    }

    /// The runtime model.
    pub fn cwvm(&self) -> &Cwvm {
        &self.cwvm
    }

    /// Description statistics for Table 1.
    pub fn stats(&self) -> &crate::stats::DescriptionStats {
        &self.stats
    }

    /// Replaces the statistics (used internally once line counts have
    /// been computed against the source text).
    pub(crate) fn set_stats(&mut self, stats: crate::stats::DescriptionStats) {
        self.stats = stats;
    }

    /// Total number of register *units*. Units are the granularity of
    /// interference: `%equiv` overlapping classes map to shared units
    /// (one TOYP `d` register covers two `r` units).
    pub fn unit_count(&self) -> u32 {
        self.reg_classes
            .iter()
            .map(|c| c.unit_base + c.count * c.unit_stride)
            .max()
            .unwrap_or(0)
    }

    /// The register units occupied by a physical register.
    pub fn units_of(&self, reg: PhysReg) -> impl Iterator<Item = u32> + '_ {
        let c = self.reg_class(reg.class);
        let start = c.unit_base + reg.index * c.unit_stride;
        start..start + c.unit_width
    }

    /// The register units occupied by `reg`, as a half-open range
    /// `[start, end)`. Units of one register are always contiguous.
    pub fn unit_range(&self, reg: PhysReg) -> (u32, u32) {
        let c = self.reg_class(reg.class);
        let start = c.unit_base + reg.index * c.unit_stride;
        (start, start + c.unit_width)
    }

    /// Whether two physical registers overlap (same storage). Unit
    /// ranges are contiguous, so this is interval intersection.
    pub fn regs_overlap(&self, a: PhysReg, b: PhysReg) -> bool {
        let (sa, ea) = self.unit_range(a);
        let (sb, eb) = self.unit_range(b);
        sa < eb && sb < ea
    }

    /// Allocable registers of one class, in CWVM order.
    pub fn allocable_of_class(&self, class: RegClassId) -> Vec<PhysReg> {
        self.cwvm
            .allocable
            .iter()
            .filter(|r| r.class == class)
            .copied()
            .collect()
    }

    /// Finds a plain (non-escape) `%move` template copying within
    /// `class`.
    pub fn move_template(&self, class: RegClassId) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| {
                t.is_move
                    && t.escape.is_none()
                    && t.def_class() == Some(class)
                    && t.effects
                        .uses
                        .iter()
                        .any(|k| matches!(t.operands.get((*k - 1) as usize), Some(OperandSpec::Reg(c)) if *c == class))
            })
            .map(|i| TemplateId(i as u32))
    }

    /// Finds an escape `%move` for `class` (used when no single
    /// instruction can copy a register, e.g. TOYP's `*movd`).
    pub fn move_escape(&self, class: RegClassId) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| {
                t.is_move
                    && t.escape.is_some()
                    && matches!(t.operands.first(), Some(OperandSpec::Reg(c)) if *c == class)
            })
            .map(|i| TemplateId(i as u32))
    }

    /// Finds a load template `$1 = m[$2 + $3]` producing `class`, for
    /// spill reloads.
    pub fn spill_load(&self, class: RegClassId) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| {
                if t.def_class() != Some(class) || t.escape.is_some() {
                    return false;
                }
                matches!(
                    t.sem.as_slice(),
                    [Stmt::Assign(LValue::Operand(1), Expr::Mem(_, addr))]
                        if matches!(**addr, Expr::Bin(crate::expr::BinOp::Add, _, _))
                )
            })
            .map(|i| TemplateId(i as u32))
    }

    /// Finds a store template `m[$2 + $3] = $1` consuming `class`, for
    /// spill stores.
    pub fn spill_store(&self, class: RegClassId) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| {
                if t.escape.is_some() {
                    return false;
                }
                let stores_class = matches!(t.operands.first(),
                    Some(OperandSpec::Reg(c)) if *c == class);
                stores_class
                    && matches!(
                        t.sem.as_slice(),
                        [Stmt::Assign(
                            LValue::Mem(_, Expr::Bin(crate::expr::BinOp::Add, _, _)),
                            Expr::Operand(1)
                        )]
                    )
            })
            .map(|i| TemplateId(i as u32))
    }

    /// The machine's `nop` template, required for delay-slot filling.
    pub fn nop_template(&self) -> Option<TemplateId> {
        self.template_by_mnemonic("nop")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resset_basic_ops() {
        let mut a = ResSet::EMPTY;
        a.insert(3);
        a.insert(130);
        assert!(a.contains(3));
        assert!(a.contains(130));
        assert!(!a.contains(4));
        assert_eq!(a.len(), 2);
        let mut b = ResSet::EMPTY;
        b.insert(130);
        assert!(a.intersects(&b));
        b = ResSet::EMPTY;
        b.insert(7);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(7));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 7, 130]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resset_insert_out_of_range_panics() {
        let mut a = ResSet::EMPTY;
        a.insert(256);
    }

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::Char.size(), 1);
        assert_eq!(Ty::Int.size(), 4);
        assert_eq!(Ty::Double.size(), 8);
        assert!(Ty::Float.is_float());
        assert!(!Ty::Ptr.is_float());
        assert_eq!(Ty::from_keyword("double"), Some(Ty::Double));
        assert_eq!(Ty::from_keyword("void"), None);
    }

    #[test]
    fn resset_all() {
        let s = ResSet::all(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(0) && s.contains(4) && !s.contains(5));
    }
}
