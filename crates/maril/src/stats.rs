//! Description statistics, mirroring the paper's Table 1.

use std::fmt;

/// Size and composition of one machine description. The paper's
/// Table 1 reports these for the 88000, R2000 and i860: section sizes
/// in lines and item counts per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DescriptionStats {
    /// Lines of the `declare` section.
    pub declare_lines: usize,
    /// Lines of the `cwvm` section.
    pub cwvm_lines: usize,
    /// Lines of the `instr` section.
    pub instr_lines: usize,
    /// Number of `%instr` directives (including `%move`).
    pub instr_directives: usize,
    /// Number of clocks declared.
    pub clocks: usize,
    /// Number of long-instruction-word elements.
    pub elements: usize,
    /// Number of packing classes.
    pub classes: usize,
    /// Number of `%aux` auxiliary latency directives.
    pub aux_lats: usize,
    /// Number of `%glue` transformations.
    pub glue_xforms: usize,
    /// Number of `*func` escapes.
    pub funcs: usize,
}

impl fmt::Display for DescriptionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "declare lines   {:>6}", self.declare_lines)?;
        writeln!(f, "cwvm lines      {:>6}", self.cwvm_lines)?;
        writeln!(f, "instr lines     {:>6}", self.instr_lines)?;
        writeln!(f, "instr dirs      {:>6}", self.instr_directives)?;
        writeln!(f, "clocks          {:>6}", self.clocks)?;
        writeln!(f, "elements        {:>6}", self.elements)?;
        writeln!(f, "classes         {:>6}", self.classes)?;
        writeln!(f, "aux lats        {:>6}", self.aux_lats)?;
        writeln!(f, "glue xforms     {:>6}", self.glue_xforms)?;
        write!(f, "funcs           {:>6}", self.funcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_row() {
        let s = DescriptionStats {
            clocks: 4,
            elements: 140,
            classes: 67,
            ..Default::default()
        };
        let text = s.to_string();
        for key in [
            "declare", "cwvm", "clocks", "elements", "classes", "aux", "glue", "funcs",
        ] {
            assert!(text.contains(key), "missing {key}: {text}");
        }
        assert!(text.contains("140"));
    }
}
