//! Recursive-descent parser for Maril descriptions.
//!
//! The grammar follows the paper's Figures 1–5. Each section is a
//! keyword (`declare` / `cwvm` / `instr`) followed by a braced list of
//! `%`-directives. Sections may appear in any order; each at most
//! once.

use crate::ast::*;
use crate::error::{MarilError, Span};
use crate::expr::{BinOp, Builtin, Expr, LValue, Stmt, UnOp};
use crate::machine::Ty;
use crate::token::{Token, TokenKind};

/// Parses a token stream (from [`crate::lexer::lex`]) into a
/// [`Description`].
///
/// # Errors
///
/// Returns the first grammar violation, with its source span.
pub fn parse(tokens: &[Token]) -> Result<Description, MarilError> {
    Parser { tokens, pos: 0 }.description()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, ahead: usize) -> &TokenKind {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<&'a Token, MarilError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(MarilError::parse(
                format!("expected `{kind}`, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), MarilError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(MarilError::parse(
                format!("expected identifier, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<i64, MarilError> {
        let neg = self.eat(&TokenKind::Minus);
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(MarilError::parse(
                format!("expected integer, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn description(mut self) -> Result<Description, MarilError> {
        let mut desc = Description::default();
        while !matches!(self.peek(), TokenKind::Eof) {
            let (section, span) = self.expect_ident()?;
            self.expect(&TokenKind::LBrace)?;
            match section.as_str() {
                "declare" => {
                    while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
                        let item = self.decl_item()?;
                        desc.declare.push(item);
                    }
                }
                "cwvm" => {
                    while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
                        let item = self.cwvm_item()?;
                        desc.cwvm.push(item);
                    }
                }
                "instr" => {
                    while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
                        let item = self.instr_item()?;
                        desc.instrs.push(item);
                    }
                }
                other => {
                    return Err(MarilError::parse(
                        format!("unknown section `{other}` (expected declare, cwvm or instr)"),
                        span,
                    ));
                }
            }
            let close = self.expect(&TokenKind::RBrace)?.span;
            let section_span = Some(Span::new(span.start, close.end));
            match section.as_str() {
                "declare" => desc.section_spans.declare = section_span,
                "cwvm" => desc.section_spans.cwvm = section_span,
                _ => desc.section_spans.instr = section_span,
            }
        }
        Ok(desc)
    }

    // ---------------- declare ----------------

    fn decl_item(&mut self) -> Result<DeclItem, MarilError> {
        let span = self.span();
        let dir = match self.peek().clone() {
            TokenKind::Directive(d) => {
                self.bump();
                d
            }
            other => {
                return Err(MarilError::parse(
                    format!("expected a %directive, found `{other}`"),
                    span,
                ));
            }
        };
        match dir.as_str() {
            "reg" => self.decl_reg(span),
            "equiv" => {
                let a = self.reg_ref()?;
                let b = self.reg_ref()?;
                self.expect(&TokenKind::Semi)?;
                Ok(DeclItem::Equiv { a, b, span })
            }
            "resource" => {
                let mut names = Vec::new();
                loop {
                    let (name, _) = self.expect_ident()?;
                    names.push(name);
                    if !self.eat(&TokenKind::Semi) && !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    if !matches!(self.peek(), TokenKind::Ident(_)) {
                        break;
                    }
                }
                Ok(DeclItem::Resource { names, span })
            }
            "def" | "label" => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let lo = self.expect_int()?;
                self.expect(&TokenKind::Colon)?;
                let hi = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                let flags = self.flags()?;
                self.expect(&TokenKind::Semi)?;
                if dir == "def" {
                    Ok(DeclItem::Def {
                        name,
                        range: (lo, hi),
                        flags,
                        span,
                    })
                } else {
                    Ok(DeclItem::Label {
                        name,
                        range: (lo, hi),
                        flags,
                        span,
                    })
                }
            }
            "memory" => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let lo = self.expect_int()?;
                self.expect(&TokenKind::Colon)?;
                let hi = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semi)?;
                Ok(DeclItem::Memory {
                    name,
                    range: (lo, hi),
                    span,
                })
            }
            "clock" => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
                Ok(DeclItem::Clock { name, span })
            }
            "element" => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
                Ok(DeclItem::Element { name, span })
            }
            "class" => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::LBrace)?;
                let mut elements = Vec::new();
                loop {
                    let (e, _) = self.expect_ident()?;
                    elements.push(e);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                self.eat(&TokenKind::Semi);
                Ok(DeclItem::Class {
                    name,
                    elements,
                    span,
                })
            }
            other => Err(MarilError::parse(
                format!("unknown declare directive `%{other}`"),
                span,
            )),
        }
    }

    fn decl_reg(&mut self, span: Span) -> Result<DeclItem, MarilError> {
        let (name, _) = self.expect_ident()?;
        let range = if self.eat(&TokenKind::LBracket) {
            let lo = self.expect_int()?;
            self.expect(&TokenKind::Colon)?;
            let hi = self.expect_int()?;
            self.expect(&TokenKind::RBracket)?;
            Some((lo as u32, hi as u32))
        } else {
            None
        };
        self.expect(&TokenKind::LParen)?;
        let mut tys = vec![self.ty()?];
        while self.eat(&TokenKind::Comma) {
            tys.push(self.ty()?);
        }
        let clock = if self.eat(&TokenKind::Semi) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect(&TokenKind::RParen)?;
        let flags = self.flags()?;
        self.expect(&TokenKind::Semi)?;
        Ok(DeclItem::Reg {
            name,
            range,
            tys,
            clock,
            temporal: flags.iter().any(|f| f == "temporal"),
            span,
        })
    }

    fn flags(&mut self) -> Result<Vec<String>, MarilError> {
        let mut flags = Vec::new();
        while self.eat(&TokenKind::Plus) {
            flags.push(self.expect_ident()?.0);
        }
        Ok(flags)
    }

    fn ty(&mut self) -> Result<Ty, MarilError> {
        let (name, span) = self.expect_ident()?;
        Ty::from_keyword(&name)
            .ok_or_else(|| MarilError::parse(format!("unknown type `{name}`"), span))
    }

    fn reg_ref(&mut self) -> Result<RegRef, MarilError> {
        let (class, span) = self.expect_ident()?;
        self.expect(&TokenKind::LBracket)?;
        let index = self.expect_int()? as u32;
        self.expect(&TokenKind::RBracket)?;
        Ok(RegRef { class, index, span })
    }

    fn reg_range(&mut self) -> Result<RegRange, MarilError> {
        let (class, span) = self.expect_ident()?;
        let range = if self.eat(&TokenKind::LBracket) {
            let lo = self.expect_int()? as u32;
            let hi = if self.eat(&TokenKind::Colon) {
                self.expect_int()? as u32
            } else {
                lo
            };
            self.expect(&TokenKind::RBracket)?;
            Some((lo, hi))
        } else {
            None
        };
        Ok(RegRange { class, range, span })
    }

    // ---------------- cwvm ----------------

    fn cwvm_item(&mut self) -> Result<CwvmItem, MarilError> {
        let span = self.span();
        let dir = match self.peek().clone() {
            TokenKind::Directive(d) => {
                self.bump();
                d
            }
            other => {
                return Err(MarilError::parse(
                    format!("expected a %directive, found `{other}`"),
                    span,
                ));
            }
        };
        let item = match dir.as_str() {
            "general" => {
                self.expect(&TokenKind::LParen)?;
                let ty = self.ty()?;
                self.expect(&TokenKind::RParen)?;
                let (class, cspan) = self.expect_ident()?;
                CwvmItem::General {
                    ty,
                    class,
                    span: cspan,
                }
            }
            "allocable" => CwvmItem::Allocable(self.reg_range()?),
            "calleesave" => CwvmItem::CalleeSave(self.reg_range()?),
            "sp" => {
                let reg = self.reg_ref()?;
                let flags = self.flags()?;
                CwvmItem::Sp {
                    reg,
                    down: flags.iter().any(|f| f == "down"),
                }
            }
            "fp" => {
                let reg = self.reg_ref()?;
                let flags = self.flags()?;
                CwvmItem::Fp {
                    reg,
                    down: flags.iter().any(|f| f == "down"),
                }
            }
            "retaddr" => CwvmItem::RetAddr(self.reg_ref()?),
            "gp" | "globalptr" => CwvmItem::GlobalPtr(self.reg_ref()?),
            "hard" => {
                let reg = self.reg_ref()?;
                let value = self.expect_int()?;
                CwvmItem::Hard { reg, value }
            }
            "arg" => {
                self.expect(&TokenKind::LParen)?;
                let ty = self.ty()?;
                self.expect(&TokenKind::RParen)?;
                let reg = self.reg_ref()?;
                let index = self.expect_int()? as u32;
                CwvmItem::Arg { ty, reg, index }
            }
            "result" => {
                let reg = self.reg_ref()?;
                self.expect(&TokenKind::LParen)?;
                let ty = self.ty()?;
                self.expect(&TokenKind::RParen)?;
                CwvmItem::Result { reg, ty }
            }
            other => {
                return Err(MarilError::parse(
                    format!("unknown cwvm directive `%{other}`"),
                    span,
                ));
            }
        };
        self.expect(&TokenKind::Semi)?;
        Ok(item)
    }

    // ---------------- instr ----------------

    fn instr_item(&mut self) -> Result<InstrItem, MarilError> {
        let span = self.span();
        let dir = match self.peek().clone() {
            TokenKind::Directive(d) => {
                self.bump();
                d
            }
            other => {
                return Err(MarilError::parse(
                    format!("expected a %directive, found `{other}`"),
                    span,
                ));
            }
        };
        match dir.as_str() {
            "instr" => Ok(InstrItem::Instr(self.instr_def(span)?)),
            "move" => Ok(InstrItem::Move(self.instr_def(span)?)),
            "aux" => self.aux_item(span),
            "glue" => self.glue_item(span),
            other => Err(MarilError::parse(
                format!("unknown instr directive `%{other}`"),
                span,
            )),
        }
    }

    fn instr_def(&mut self, span: Span) -> Result<InstrDef, MarilError> {
        // Optional [label] before the mnemonic (Fig. 3: `%move [s.movs] add ...`).
        let label = if self.eat(&TokenKind::LBracket) {
            let (l, _) = self.expect_ident()?;
            self.expect(&TokenKind::RBracket)?;
            Some(l)
        } else {
            None
        };
        let escape = self.eat(&TokenKind::Star);
        let (mnemonic, _) = self.expect_ident()?;
        // Operand list runs until `(`, `<` or `{`.
        let mut operands = Vec::new();
        if !matches!(
            self.peek(),
            TokenKind::LParen | TokenKind::LBrace | TokenKind::Lt
        ) {
            loop {
                operands.push(self.operand()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        // Optional type constraint `(int)` / `(double; clk_m)`.
        let mut ty = None;
        let mut clock = None;
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            ty = Some(self.ty()?);
            if self.eat(&TokenKind::Semi) {
                clock = Some(self.expect_ident()?.0);
            }
            self.expect(&TokenKind::RParen)?;
        }
        // Optional packing class `<mul_ops>`.
        let class = if self.eat(&TokenKind::Lt) {
            let (c, _) = self.expect_ident()?;
            self.expect(&TokenKind::Gt)?;
            Some(c)
        } else {
            None
        };
        self.expect(&TokenKind::LBrace)?;
        let sem = self.stmts()?;
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::LBracket)?;
        let resources = self.resource_vector()?;
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::LParen)?;
        let cost = self.expect_int()?;
        self.expect(&TokenKind::Comma)?;
        let latency = self.expect_int()?;
        self.expect(&TokenKind::Comma)?;
        let slots = self.expect_int()?;
        self.expect(&TokenKind::RParen)?;
        Ok(InstrDef {
            mnemonic,
            escape,
            label,
            operands,
            ty,
            clock,
            class,
            sem,
            resources,
            cost,
            latency,
            slots,
            span,
        })
    }

    fn operand(&mut self) -> Result<OperandAst, MarilError> {
        if self.eat(&TokenKind::Hash) {
            let (name, span) = self.expect_ident()?;
            // Whether it is an Imm or Lab is resolved by sema; store
            // the ambiguity as Imm and let sema reclassify.
            let _ = span;
            return Ok(OperandAst::Imm(name));
        }
        let (class, span) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expect_int()? as u32;
            self.expect(&TokenKind::RBracket)?;
            Ok(OperandAst::FixedReg(RegRef { class, index, span }))
        } else {
            Ok(OperandAst::RegClass(class))
        }
    }

    fn resource_vector(&mut self) -> Result<Vec<Vec<String>>, MarilError> {
        let mut cycles = Vec::new();
        while matches!(self.peek(), TokenKind::Ident(_)) {
            let mut cycle = vec![self.expect_ident()?.0];
            while self.eat(&TokenKind::Comma) {
                cycle.push(self.expect_ident()?.0);
            }
            cycles.push(cycle);
            if !self.eat(&TokenKind::Semi) {
                break;
            }
        }
        Ok(cycles)
    }

    fn aux_item(&mut self, span: Span) -> Result<InstrItem, MarilError> {
        let (first, _) = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let (second, _) = self.expect_ident()?;
        let mut cond = None;
        // Optional `(1.$1 == 2.$1)` condition; distinguished from the
        // latency parens by the `.` after the first integer.
        if matches!(self.peek(), TokenKind::LParen)
            && matches!(self.peek_at(1), TokenKind::Int(_))
            && matches!(self.peek_at(2), TokenKind::Dot)
        {
            self.bump(); // (
            let fi = self.expect_int()?;
            self.expect(&TokenKind::Dot)?;
            self.expect(&TokenKind::Dollar)?;
            let fop = self.expect_int()?;
            self.expect(&TokenKind::EqEq)?;
            let si = self.expect_int()?;
            self.expect(&TokenKind::Dot)?;
            self.expect(&TokenKind::Dollar)?;
            let sop = self.expect_int()?;
            self.expect(&TokenKind::RParen)?;
            if fi != 1 || si != 2 {
                return Err(MarilError::parse(
                    "aux condition must compare `1.$i` with `2.$j`",
                    span,
                ));
            }
            cond = Some(AuxCond {
                first_op: fop as u8,
                second_op: sop as u8,
            });
        }
        self.expect(&TokenKind::LParen)?;
        let latency = self.expect_int()?;
        self.expect(&TokenKind::RParen)?;
        Ok(InstrItem::Aux {
            first,
            second,
            cond,
            latency,
            span,
        })
    }

    fn glue_item(&mut self, span: Span) -> Result<InstrItem, MarilError> {
        let mut operands = Vec::new();
        if !matches!(self.peek(), TokenKind::LBrace) {
            loop {
                operands.push(self.operand()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let from = self.expr(0)?;
        self.expect(&TokenKind::Arrow)?;
        let to = self.expr(0)?;
        self.eat(&TokenKind::Semi);
        self.expect(&TokenKind::RBrace)?;
        let rule = match (split_rel(&from), split_rel(&to)) {
            (Some((fr, _, _)), Some((tr, tl, trr))) => GlueRule::Cond {
                from_rel: fr,
                to_rel: tr,
                to_lhs: tl,
                to_rhs: trr,
            },
            _ => GlueRule::Value { from, to },
        };
        Ok(InstrItem::Glue {
            operands,
            rule,
            span,
        })
    }

    // ---------------- statements & expressions ----------------

    fn stmts(&mut self) -> Result<Vec<Stmt>, MarilError> {
        let mut out = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            if self.eat(&TokenKind::Semi) {
                continue;
            }
            out.push(self.stmt()?);
        }
        if out.is_empty() {
            out.push(Stmt::Nop);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, MarilError> {
        match self.peek().clone() {
            TokenKind::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr(0)?;
                self.expect(&TokenKind::RParen)?;
                let (goto_kw, gspan) = self.expect_ident()?;
                if goto_kw != "goto" {
                    return Err(MarilError::parse(
                        "expected `goto` after if-condition",
                        gspan,
                    ));
                }
                self.expect(&TokenKind::Dollar)?;
                let target = self.expect_int()? as u8;
                self.expect(&TokenKind::Semi)?;
                let (rel, lhs, rhs) = split_rel(&cond).ok_or_else(|| {
                    MarilError::parse("if-condition must be a relational comparison", gspan)
                })?;
                Ok(Stmt::CondGoto {
                    rel,
                    lhs,
                    rhs,
                    target,
                })
            }
            TokenKind::Ident(kw) if kw == "goto" => {
                self.bump();
                self.expect(&TokenKind::Dollar)?;
                let target = self.expect_int()? as u8;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Goto(target))
            }
            TokenKind::Ident(kw) if kw == "call" => {
                self.bump();
                self.expect(&TokenKind::Dollar)?;
                let target = self.expect_int()? as u8;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Call(target))
            }
            TokenKind::Ident(kw) if kw == "return" => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return)
            }
            _ => {
                let lv = self.lvalue()?;
                self.expect(&TokenKind::Assign)?;
                let rhs = self.expr(0)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Assign(lv, rhs))
            }
        }
    }

    fn lvalue(&mut self) -> Result<LValue, MarilError> {
        if self.eat(&TokenKind::Dollar) {
            let k = self.expect_int()? as u8;
            return Ok(LValue::Operand(k));
        }
        let (name, _) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let addr = self.expr(0)?;
            self.expect(&TokenKind::RBracket)?;
            Ok(LValue::Mem(name, addr))
        } else {
            Ok(LValue::Temporal(name))
        }
    }

    /// Pratt expression parser. Precedence (loosest to tightest):
    /// `|`, `^`, `&`, `== !=`, `< <= > >= ::`, `<< >>`, `+ -`,
    /// `* / %`.
    fn expr(&mut self, min_bp: u8) -> Result<Expr, MarilError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, bp) = match self.peek() {
                TokenKind::Pipe => (BinOp::Or, 1),
                TokenKind::Caret => (BinOp::Xor, 2),
                TokenKind::Amp => (BinOp::And, 3),
                TokenKind::EqEq => (BinOp::Eq, 4),
                TokenKind::Ne => (BinOp::Ne, 4),
                TokenKind::Lt => (BinOp::Lt, 5),
                TokenKind::Le => (BinOp::Le, 5),
                TokenKind::Gt => (BinOp::Gt, 5),
                TokenKind::Ge => (BinOp::Ge, 5),
                TokenKind::ColonColon => (BinOp::Cmp, 5),
                TokenKind::Shl => (BinOp::Shl, 6),
                TokenKind::Shr => (BinOp::Shr, 6),
                TokenKind::Plus => (BinOp::Add, 7),
                TokenKind::Minus => (BinOp::Sub, 7),
                TokenKind::Star => (BinOp::Mul, 8),
                TokenKind::Slash => (BinOp::Div, 8),
                TokenKind::Percent => (BinOp::Rem, 8),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr(bp + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, MarilError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                other => Expr::Un(UnOp::Neg, Box::new(other)),
            });
        }
        if self.eat(&TokenKind::Tilde) {
            let inner = self.unary()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, MarilError> {
        match self.peek().clone() {
            TokenKind::Dollar => {
                self.bump();
                let k = self.expect_int()? as u8;
                Ok(Expr::Operand(k))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                // `(int)$2` conversion vs parenthesised expression.
                if let TokenKind::Ident(name) = self.peek_at(1) {
                    if Ty::from_keyword(name).is_some()
                        && matches!(self.peek_at(2), TokenKind::RParen)
                    {
                        self.bump(); // (
                        let ty = self.ty()?;
                        self.bump(); // )
                        let inner = self.unary()?;
                        return Ok(Expr::Convert(ty, Box::new(inner)));
                    }
                }
                self.bump();
                let e = self.expr(0)?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let builtin = match name.as_str() {
                        "high" => Builtin::High,
                        "low" => Builtin::Low,
                        "eval" => Builtin::Eval,
                        other => {
                            return Err(MarilError::parse(
                                format!("unknown built-in `{other}`"),
                                span,
                            ));
                        }
                    };
                    let arg = self.expr(0)?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call(builtin, Box::new(arg)))
                } else if self.eat(&TokenKind::LBracket) {
                    let addr = self.expr(0)?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Mem(name, Box::new(addr)))
                } else {
                    Ok(Expr::Temporal(name))
                }
            }
            other => Err(MarilError::parse(
                format!("expected expression, found `{other}`"),
                self.span(),
            )),
        }
    }
}

/// If `e` is a top-level relational comparison, splits it into
/// `(relation, lhs, rhs)`.
fn split_rel(e: &Expr) -> Option<(BinOp, Expr, Expr)> {
    match e {
        Expr::Bin(op, lhs, rhs) if op.is_relational() => {
            Some((*op, (**lhs).clone(), (**rhs).clone()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Description {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_toyp_declare() {
        let d = parse_src(
            r#"declare {
                %reg r[0:7] (int);
                %reg d[0:3] (double);
                %equiv r[0] d[0];
                %resource IF; ID; IE; IA; IW;
                %resource F1; F2; F3; F4; F5;
                %def const16 [-32768:32767];
                %label rlab [-32768:32767] +relative;
                %memory m[0:2147483647];
            }"#,
        );
        assert_eq!(d.declare.len(), 8);
        assert!(matches!(
            &d.declare[0],
            DeclItem::Reg { name, range: Some((0, 7)), tys, .. }
                if name == "r" && tys == &[Ty::Int]
        ));
        assert!(matches!(
            &d.declare[3],
            DeclItem::Resource { names, .. } if names.len() == 5
        ));
        assert!(matches!(
            &d.declare[6],
            DeclItem::Label { name, flags, .. } if name == "rlab" && flags == &["relative".to_string()]
        ));
    }

    #[test]
    fn parses_temporal_reg_with_clock() {
        let d = parse_src(
            r#"declare {
                %clock clk_m;
                %reg m1 (double; clk_m) +temporal;
            }"#,
        );
        assert!(matches!(
            &d.declare[1],
            DeclItem::Reg { name, range: None, clock: Some(c), temporal: true, .. }
                if name == "m1" && c == "clk_m"
        ));
    }

    #[test]
    fn parses_cwvm() {
        let d = parse_src(
            r#"cwvm {
                %general (int) r;
                %allocable r[1:5];
                %calleesave r[4:7];
                %sp r[7] +down;
                %fp r[6] +down;
                %retaddr r[1];
                %hard r[0] 0;
                %arg (int) r[2] 1;
                %result r[2] (int);
            }"#,
        );
        assert_eq!(d.cwvm.len(), 9);
        assert!(matches!(&d.cwvm[3], CwvmItem::Sp { down: true, .. }));
        assert!(matches!(
            &d.cwvm[7],
            CwvmItem::Arg {
                ty: Ty::Int,
                index: 1,
                ..
            }
        ));
    }

    #[test]
    fn parses_simple_instr() {
        let d = parse_src(
            r#"instr {
                %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID; IE; IA; IW;] (1,1,0)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!("expected instr");
        };
        assert_eq!(def.mnemonic, "add");
        assert_eq!(def.operands.len(), 3);
        assert_eq!(def.resources.len(), 5);
        assert_eq!((def.cost, def.latency, def.slots), (1, 1, 0));
        assert_eq!(def.sem.len(), 1);
    }

    #[test]
    fn parses_fixed_reg_and_imm_operands() {
        let d = parse_src(
            r#"instr {
                %instr add r, r[0], #const16 (int) {$1 = $3;} [IF;] (1,1,0)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!()
        };
        assert!(
            matches!(&def.operands[1], OperandAst::FixedReg(r) if r.class == "r" && r.index == 0)
        );
        assert!(matches!(&def.operands[2], OperandAst::Imm(n) if n == "const16"));
    }

    #[test]
    fn parses_branch_with_negative_slots() {
        let d = parse_src(
            r#"instr {
                %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IF; ID; IE;] (1,2,-1)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!()
        };
        assert_eq!(def.slots, -1);
        assert!(matches!(
            &def.sem[0],
            Stmt::CondGoto {
                rel: BinOp::Eq,
                target: 2,
                ..
            }
        ));
    }

    #[test]
    fn parses_multi_resource_cycles() {
        let d = parse_src(
            r#"instr {
                %instr fadd.d d, d, d {$1 = $2 + $3;} [IF; ID; F1,ID; F1; F2; F3; F4; F5; IW,F5;] (1,6,0)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!()
        };
        assert_eq!(def.resources.len(), 9);
        assert_eq!(def.resources[2], vec!["F1".to_string(), "ID".to_string()]);
    }

    #[test]
    fn parses_move_with_label_and_escape() {
        let d = parse_src(
            r#"instr {
                %move [s.movs] add r, r, r[0] {$1 = $2;} [IF; ID; IE; IA; IW;] (1,1,0)
                %move *movd d, d {$1 = $2;} [] (0,0,0)
            }"#,
        );
        let InstrItem::Move(m1) = &d.instrs[0] else {
            panic!()
        };
        assert_eq!(m1.label.as_deref(), Some("s.movs"));
        assert!(!m1.escape);
        let InstrItem::Move(m2) = &d.instrs[1] else {
            panic!()
        };
        assert!(m2.escape);
        assert!(m2.resources.is_empty());
    }

    #[test]
    fn parses_aux_with_condition() {
        let d = parse_src(
            r#"instr {
                %aux fadd.d : st.d (1.$1 == 2.$1) (7)
            }"#,
        );
        assert!(matches!(
            &d.instrs[0],
            InstrItem::Aux { first, second, cond: Some(AuxCond { first_op: 1, second_op: 1 }), latency: 7, .. }
                if first == "fadd.d" && second == "st.d"
        ));
    }

    #[test]
    fn parses_aux_without_condition() {
        let d = parse_src(r#"instr { %aux ld : st (3) }"#);
        assert!(matches!(
            &d.instrs[0],
            InstrItem::Aux {
                cond: None,
                latency: 3,
                ..
            }
        ));
    }

    #[test]
    fn parses_glue_cond_rule() {
        let d = parse_src(
            r#"instr {
                %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
            }"#,
        );
        let InstrItem::Glue { rule, .. } = &d.instrs[0] else {
            panic!()
        };
        let GlueRule::Cond {
            from_rel,
            to_rel,
            to_lhs,
            to_rhs,
        } = rule
        else {
            panic!("expected cond rule, got {rule:?}")
        };
        assert_eq!(*from_rel, BinOp::Eq);
        assert_eq!(*to_rel, BinOp::Eq);
        assert_eq!(to_lhs.to_string(), "($1 :: $2)");
        assert_eq!(to_rhs.to_string(), "0");
    }

    #[test]
    fn parses_conversion_expression() {
        let d = parse_src(
            r#"instr {
                %instr cvt d, r {$1 = (double)$2;} [IF;] (1,2,0)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!()
        };
        assert!(matches!(
            &def.sem[0],
            Stmt::Assign(_, Expr::Convert(Ty::Double, _))
        ));
    }

    #[test]
    fn parses_temporal_semantics_and_class() {
        let d = parse_src(
            r#"declare { %clock clk_m; }
               instr {
                %instr M1 d, d (double; clk_m) <mul_ops> {m1 = $1 * $2;} [M1;] (1,1,0)
                %instr M2 (double; clk_m) {m2 = m1;} [M2;] (1,1,0)
            }"#,
        );
        let InstrItem::Instr(m1) = &d.instrs[0] else {
            panic!()
        };
        assert_eq!(m1.clock.as_deref(), Some("clk_m"));
        assert_eq!(m1.class.as_deref(), Some("mul_ops"));
        let InstrItem::Instr(m2) = &d.instrs[1] else {
            panic!()
        };
        assert!(m2.operands.is_empty());
        assert!(matches!(
            &m2.sem[0],
            Stmt::Assign(LValue::Temporal(t), Expr::Temporal(s)) if t == "m2" && s == "m1"
        ));
    }

    #[test]
    fn parses_store_semantics() {
        let d = parse_src(
            r#"instr {
                %instr st r, r, #const16 {m[$2+$3] = $1;} [IF;] (1,1,0)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!()
        };
        assert!(matches!(
            &def.sem[0],
            Stmt::Assign(LValue::Mem(bank, _), Expr::Operand(1)) if bank == "m"
        ));
    }

    #[test]
    fn rejects_unknown_section() {
        let err = parse(&lex("bogus { }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown section"));
    }

    #[test]
    fn rejects_missing_triple() {
        let err =
            parse(&lex("instr { %instr add r, r, r {$1 = $2 + $3;} [IF;] }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn parses_call_and_return_semantics() {
        let d = parse_src(
            r#"instr {
                %instr bsr #rlab {call $1;} [IF; ID; IE;] (1,1,1)
                %instr rts {return;} [IF; ID; IE;] (1,1,1)
            }"#,
        );
        let InstrItem::Instr(bsr) = &d.instrs[0] else {
            panic!()
        };
        assert!(matches!(&bsr.sem[0], Stmt::Call(1)));
        let InstrItem::Instr(rts) = &d.instrs[1] else {
            panic!()
        };
        assert!(matches!(&rts.sem[0], Stmt::Return));
    }

    #[test]
    fn parses_builtin_high_low() {
        let d = parse_src(
            r#"instr {
                %instr lui r, #const32 {$1 = high($2) << 16;} [IF;] (1,1,0)
            }"#,
        );
        let InstrItem::Instr(def) = &d.instrs[0] else {
            panic!()
        };
        assert!(matches!(
            &def.sem[0],
            Stmt::Assign(_, Expr::Bin(BinOp::Shl, lhs, _))
                if matches!(**lhs, Expr::Call(Builtin::High, _))
        ));
    }
}
