//! Semantic expressions.
//!
//! Each `%instr` directive carries a single-assignment C expression
//! (the paper's third directive part) describing what the instruction
//! computes, e.g. `{$1 = $2 + $3;}` or `{if ($1 == 0) goto $2;}`. The
//! selector derives tree patterns from these expressions, the code DAG
//! builder derives def/use sets, and the simulator evaluates them.

use std::fmt;

/// Binary operators usable in semantic expressions and glue rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `::` — the generic compare, producing a condition value
    Cmp,
    /// `==` producing 0/1
    Eq,
    /// `!=` producing 0/1
    Ne,
    /// `<` producing 0/1
    Lt,
    /// `<=` producing 0/1
    Le,
    /// `>` producing 0/1
    Gt,
    /// `>=` producing 0/1
    Ge,
}

impl BinOp {
    /// True for the six relational operators (and not `::`).
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// The relation with operand order swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    /// The logically negated relation (`a < b` ⇔ `!(a >= b)`).
    pub fn negated(self) -> BinOp {
        match self {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            other => other,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Cmp => "::",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
        })
    }
}

/// Built-in functions usable inside semantic expressions and glue
/// transformations (paper §3.3: `high`, `low`, `eval` and datatype
/// conversions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// Upper 16 bits of a 32-bit immediate.
    High,
    /// Lower 16 bits of a 32-bit immediate.
    Low,
    /// Constant-fold the argument (glue transformations only).
    Eval,
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Builtin::High => "high",
            Builtin::Low => "low",
            Builtin::Eval => "eval",
        })
    }
}

/// A semantic expression tree.
///
/// `Operand(k)` refers to the instruction's `$k` (1-based, as in the
/// paper). `Temporal(name)` names a temporal register (a latch of an
/// explicitly advanced pipeline). `Mem` is a memory-bank access.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `$k` — 1-based reference to the instruction's k-th operand.
    Operand(u8),
    /// Integer literal.
    Int(i64),
    /// A temporal register such as `m1` (i860 multiply-pipe latch).
    Temporal(String),
    /// Memory access `m[addr]` on the named memory bank.
    Mem(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Built-in application, e.g. `high($2)`.
    Call(Builtin, Box<Expr>),
    /// Datatype conversion used as a built-in, e.g. `(double)$2`.
    Convert(crate::machine::Ty, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Visits every node of the tree, pre-order.
    pub fn walk(&self, visit: &mut dyn FnMut(&Expr)) {
        visit(self);
        match self {
            Expr::Mem(_, addr) => addr.walk(visit),
            Expr::Bin(_, lhs, rhs) => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Un(_, inner) | Expr::Call(_, inner) | Expr::Convert(_, inner) => {
                inner.walk(visit);
            }
            Expr::Operand(_) | Expr::Int(_) | Expr::Temporal(_) => {}
        }
    }

    /// Collects the operand indices referenced anywhere in the tree.
    pub fn operand_refs(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Operand(k) = e {
                if !out.contains(k) {
                    out.push(*k);
                }
            }
        });
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Operand(k) => write!(f, "${k}"),
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Temporal(name) => f.write_str(name),
            Expr::Mem(bank, addr) => write!(f, "{bank}[{addr}]"),
            Expr::Bin(op, lhs, rhs) => write!(f, "({lhs} {op} {rhs})"),
            Expr::Un(op, inner) => write!(f, "{op}{inner}"),
            Expr::Call(b, arg) => write!(f, "{b}({arg})"),
            Expr::Convert(ty, arg) => write!(f, "({ty}){arg}"),
        }
    }
}

/// The destination of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `$k = ...`
    Operand(u8),
    /// `m1 = ...` — write a temporal register.
    Temporal(String),
    /// `m[addr] = ...` — store to a memory bank.
    Mem(String, Expr),
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Operand(k) => write!(f, "${k}"),
            LValue::Temporal(name) => f.write_str(name),
            LValue::Mem(bank, addr) => write!(f, "{bank}[{addr}]"),
        }
    }
}

/// A statement inside an instruction's semantic braces.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `$1 = expr;` / `m1 = expr;` / `m[a] = expr;`
    Assign(LValue, Expr),
    /// `if (lhs REL rhs) goto $k;` — conditional branch.
    CondGoto {
        /// The relation tested (one of the six relational operators).
        rel: BinOp,
        /// Left comparison operand.
        lhs: Expr,
        /// Right comparison operand.
        rhs: Expr,
        /// The `$k` label operand jumped to.
        target: u8,
    },
    /// `goto $k;` — unconditional branch.
    Goto(u8),
    /// `call $k;` — procedure call to a label operand.
    Call(u8),
    /// `return;` — return from the current procedure.
    Return,
    /// An empty body `{}` (pure escapes / pipeline advances only).
    Nop,
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign(lv, e) => write!(f, "{lv} = {e};"),
            Stmt::CondGoto {
                rel,
                lhs,
                rhs,
                target,
            } => write!(f, "if ({lhs} {rel} {rhs}) goto ${target};"),
            Stmt::Goto(k) => write!(f, "goto ${k};"),
            Stmt::Call(k) => write!(f, "call ${k};"),
            Stmt::Return => f.write_str("return;"),
            Stmt::Nop => f.write_str(";"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_refs_deduplicates() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Operand(2),
            Expr::bin(BinOp::Mul, Expr::Operand(3), Expr::Operand(2)),
        );
        assert_eq!(e.operand_refs(), vec![2, 3]);
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::Mem(
            "m".into(),
            Box::new(Expr::bin(BinOp::Add, Expr::Operand(2), Expr::Operand(3))),
        );
        assert_eq!(e.to_string(), "m[($2 + $3)]");
    }

    #[test]
    fn relational_helpers() {
        assert!(BinOp::Le.is_relational());
        assert!(!BinOp::Cmp.is_relational());
        assert_eq!(BinOp::Lt.swapped(), BinOp::Gt);
        assert_eq!(BinOp::Lt.negated(), BinOp::Ge);
        assert_eq!(BinOp::Eq.swapped(), BinOp::Eq);
    }

    #[test]
    fn stmt_display() {
        let s = Stmt::CondGoto {
            rel: BinOp::Eq,
            lhs: Expr::Operand(1),
            rhs: Expr::Int(0),
            target: 2,
        };
        assert_eq!(s.to_string(), "if ($1 == 0) goto $2;");
    }
}
