//! Pluggable output sinks for finished traces. A [`Sink`] consumes a
//! [`TraceData`]; the two bundled sinks emit the human-readable text
//! report and the machine-readable JSON Lines form.

use crate::TraceData;
use std::io::{self, Write};

/// Consumes a finished trace, e.g. by writing it somewhere.
pub trait Sink {
    fn emit(&mut self, data: &TraceData) -> io::Result<()>;
}

/// Writes the human-readable report to the wrapped writer.
pub struct TextSink<W: Write>(pub W);

impl<W: Write> Sink for TextSink<W> {
    fn emit(&mut self, data: &TraceData) -> io::Result<()> {
        self.0.write_all(data.render_text().as_bytes())
    }
}

/// Writes JSON Lines to the wrapped writer.
pub struct JsonlSink<W: Write>(pub W);

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, data: &TraceData) -> io::Result<()> {
        self.0.write_all(data.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};

    #[test]
    fn sinks_write_both_forms() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.add("f", "n", 1);
        let data = tracer.finish().unwrap();

        let mut text = Vec::new();
        TextSink(&mut text).emit(&data).unwrap();
        assert!(String::from_utf8(text).unwrap().contains("counters:"));

        let mut jsonl = Vec::new();
        JsonlSink(&mut jsonl).emit(&data).unwrap();
        let parsed = TraceData::parse_jsonl(&String::from_utf8(jsonl).unwrap()).unwrap();
        assert_eq!(parsed, data);
    }
}
