//! Lightweight observability for the Marion pipeline: wall-clock
//! spans, named counters and structured events, with no external
//! dependencies.
//!
//! The design optimises for the *disabled* case: a [`Tracer`] built
//! with [`Tracer::off`] carries no state and every operation on it is
//! a branch on `None`. Code under measurement takes `&Tracer` and
//! never needs to know whether collection is live.
//!
//! A live tracer accumulates [`Record`]s; [`Tracer::finish`] folds the
//! counter map into the record stream and yields a [`TraceData`],
//! which can be rendered as a human-readable report
//! ([`TraceData::render_text`]) or serialised as JSON Lines
//! ([`TraceData::to_jsonl`]) for downstream aggregation by
//! `marion-report`. [`TraceData::parse_jsonl`] round-trips the JSONL
//! form.
//!
//! Spans nest: the guard returned by [`Tracer::span`] records its
//! start eagerly (so records appear in begin order) and fills in the
//! duration when dropped. Counters are keyed by `(ctx, name)` and
//! accumulate; events carry arbitrary flat key/value payloads.
//!
//! ## Micro-spans and the self-profile
//!
//! [`Tracer::mspan`] opens a *micro-span*: an aggregated timed region
//! for hot interior loops where recording one [`Record::Span`] per
//! instance would flood the stream. Spans and micro-spans share one
//! call-tree: every drop folds `(count, duration)` into a trie node
//! keyed by the path of open span/micro-span names, and the parent
//! node accumulates the child's duration into its `child_us` (so
//! *self* time is `total_us - child_us`). [`Tracer::finish`] walks the
//! trie and emits one [`Record::Prof`] per path — deterministic
//! structure (paths and counts) for a given input, wall-clock values
//! varying run to run. Micro-spans must close in LIFO order; the guard
//! checks the balanced-stack invariant at drop and a violation
//! surfaces as the `mspan_unbalanced` counter in ctx `prof`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

pub mod hist;
pub mod json;
pub mod sink;
pub mod timeseries;

pub use hist::Histogram;
pub use sink::{JsonlSink, Sink, TextSink};
pub use timeseries::{TimeSeries, WindowStats};

/// What the tracer should collect beyond the always-on spans,
/// counters and events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Emit a per-block reservation table (cycles x resource vector)
    /// event for every scheduled block. Verbose; off by default.
    pub reservation_tables: bool,
    /// Emit a per-block `sched_explain` event carrying the scheduler's
    /// cycle-by-cycle stall narrative for every final-pass block.
    /// Verbose; off by default.
    pub explanations: bool,
}

/// A scalar value carried by an [`Record::Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One collected fact. `ctx` scopes the record (typically
/// `machine/function` or `machine/function/block`); `name` says what
/// it is.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A timed region. `depth` is the span-stack depth at begin time
    /// (0 = top level); `start_us`/`dur_us` are microseconds relative
    /// to the tracer's origin.
    Span {
        name: String,
        ctx: String,
        depth: u32,
        start_us: u64,
        dur_us: u64,
    },
    /// An accumulated named total.
    Counter {
        name: String,
        ctx: String,
        value: i64,
    },
    /// A one-off structured fact with flat key/value fields.
    Event {
        name: String,
        ctx: String,
        fields: Vec<(String, Value)>,
    },
    /// A fixed-bucket log2 distribution of samples (see
    /// [`hist::Histogram`]). Merging sums bucket counts losslessly.
    /// Boxed: the 65-bucket array would otherwise dominate the size of
    /// every `Record`.
    Hist {
        name: String,
        ctx: String,
        hist: Box<Histogram>,
    },
    /// A point-in-time level (queue depth, busy workers, ...). The
    /// tracer keeps the latest value per `(ctx, name)`; merging two
    /// traces keeps the maximum (high-water) of duplicate gauges, the
    /// only duplicate rule that is associative and commutative.
    Gauge {
        name: String,
        ctx: String,
        value: i64,
    },
    /// One aggregated call-tree profile node: all instances of the
    /// span/micro-span whose open-name path is `path` (components
    /// joined with `/`), with their total wall time and the portion
    /// attributed to nested children. Self time is
    /// `total_us - child_us`. Purely timing data — stripped from
    /// compile-cache entries exactly like spans. Merging sums
    /// `count`/`total_us`/`child_us` per path.
    Prof {
        path: String,
        count: u64,
        total_us: u64,
        child_us: u64,
    },
}

/// One node of the in-tracer profile trie (see [`Tracer::mspan`]).
struct ProfNode {
    name: String,
    parent: u32,
    children: Vec<u32>,
    count: u64,
    total_us: u64,
    child_us: u64,
}

struct Inner {
    origin: Instant,
    records: Vec<Record>,
    /// Indices into `records` of spans that have begun but not ended.
    open: Vec<usize>,
    counters: BTreeMap<(String, String), i64>,
    hists: BTreeMap<(String, String), Histogram>,
    gauges: BTreeMap<(String, String), i64>,
    config: TraceConfig,
    /// Profile trie; index 0 is the synthetic root.
    prof: Vec<ProfNode>,
    /// Current trie position (innermost open span/micro-span).
    prof_cur: u32,
    /// Number of currently open micro-span frames (balance check).
    prof_open: u32,
    /// Micro-span guards dropped out of LIFO order.
    prof_violations: u64,
}

impl Inner {
    /// Descends into the trie child of `prof_cur` named `name`
    /// (creating it on first visit); returns `(node, previous cur)`.
    fn prof_enter(&mut self, name: &str) -> (u32, u32) {
        let prev = self.prof_cur;
        let found = self.prof[prev as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.prof[c as usize].name == name);
        let node = match found {
            Some(c) => c,
            None => {
                let id = self.prof.len() as u32;
                self.prof.push(ProfNode {
                    name: name.to_string(),
                    parent: prev,
                    children: Vec::new(),
                    count: 0,
                    total_us: 0,
                    child_us: 0,
                });
                self.prof[prev as usize].children.push(id);
                id
            }
        };
        self.prof_cur = node;
        (node, prev)
    }

    /// Closes a trie frame: folds the elapsed time into `node`,
    /// attributes it to the parent's `child_us`, and restores `prev`
    /// as the current position.
    fn prof_exit(&mut self, node: u32, prev: u32, dur_us: u64) {
        let parent = self.prof[node as usize].parent;
        let n = &mut self.prof[node as usize];
        n.count += 1;
        n.total_us += dur_us;
        if parent != 0 {
            self.prof[parent as usize].child_us += dur_us;
        }
        self.prof_cur = prev;
    }
}

/// The collector. Cheap to pass by reference everywhere; all methods
/// are no-ops when built with [`Tracer::off`].
pub struct Tracer {
    inner: Option<RefCell<Inner>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// A live tracer collecting according to `config`.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            inner: Some(RefCell::new(Inner {
                origin: Instant::now(),
                records: Vec::new(),
                open: Vec::new(),
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
                gauges: BTreeMap::new(),
                config,
                prof: vec![ProfNode {
                    name: String::new(),
                    parent: 0,
                    children: Vec::new(),
                    count: 0,
                    total_us: 0,
                    child_us: 0,
                }],
                prof_cur: 0,
                prof_open: 0,
                prof_violations: 0,
            })),
        }
    }

    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether per-block reservation tables were requested (false when
    /// the tracer is off).
    pub fn wants_reservation_tables(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.borrow().config.reservation_tables)
            .unwrap_or(false)
    }

    /// Whether per-block schedule explanations were requested (false
    /// when the tracer is off).
    pub fn wants_explanations(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.borrow().config.explanations)
            .unwrap_or(false)
    }

    /// Begin a timed span; the region ends when the returned guard is
    /// dropped. Spans may nest freely.
    pub fn span(&self, ctx: &str, name: &str) -> SpanGuard<'_> {
        let frame = self.inner.as_ref().map(|cell| {
            let mut inner = cell.borrow_mut();
            let start_us = inner.origin.elapsed().as_micros() as u64;
            let depth = inner.open.len() as u32;
            let index = inner.records.len();
            inner.records.push(Record::Span {
                name: name.to_string(),
                ctx: ctx.to_string(),
                depth,
                start_us,
                dur_us: 0,
            });
            inner.open.push(index);
            let (node, prev) = inner.prof_enter(name);
            (index, node, prev)
        });
        SpanGuard {
            tracer: self,
            frame,
        }
    }

    /// Begin an aggregated micro-span for a hot interior region. No
    /// per-instance record is emitted; the elapsed time folds into the
    /// profile trie under the current open span/micro-span path (see
    /// [`Record::Prof`]). Guards must drop in LIFO order — the drop
    /// checks the balanced-stack invariant and records a violation
    /// otherwise. Near-zero cost when the tracer is off.
    pub fn mspan(&self, name: &str) -> MicroGuard<'_> {
        let frame = self.inner.as_ref().map(|cell| {
            let mut inner = cell.borrow_mut();
            let start_us = inner.origin.elapsed().as_micros() as u64;
            let (node, prev) = inner.prof_enter(name);
            inner.prof_open += 1;
            MicroFrame {
                node,
                prev,
                start_us,
                expect_open: inner.prof_open,
            }
        });
        MicroGuard {
            tracer: self,
            frame,
        }
    }

    /// Add `delta` to the counter `(ctx, name)`.
    pub fn add(&self, ctx: &str, name: &str, delta: i64) {
        if let Some(cell) = &self.inner {
            *cell
                .borrow_mut()
                .counters
                .entry((ctx.to_string(), name.to_string()))
                .or_insert(0) += delta;
        }
    }

    /// Records one sample into the log2 histogram `(ctx, name)`.
    pub fn observe(&self, ctx: &str, name: &str, value: u64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut()
                .hists
                .entry((ctx.to_string(), name.to_string()))
                .or_default()
                .record(value);
        }
    }

    /// Sets the gauge `(ctx, name)` to `value` (latest wins within one
    /// tracer; merges across traces keep the maximum).
    pub fn gauge(&self, ctx: &str, name: &str, value: i64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut()
                .gauges
                .insert((ctx.to_string(), name.to_string()), value);
        }
    }

    /// Replays a finished trace into this tracer: counters accumulate
    /// into the live counter map (summing with whatever this tracer
    /// already recorded per `(ctx, name)`), histograms merge
    /// bucket-wise, gauges keep the maximum, events and spans append
    /// as-is. Used by the compile cache to reattribute a cached
    /// function's trace to the current compilation — replayed span
    /// timings describe the run that recorded them, exactly like the
    /// per-worker shards [`TraceData::merge`] combines.
    pub fn import(&self, data: &TraceData) {
        let Some(cell) = &self.inner else {
            return;
        };
        let mut inner = cell.borrow_mut();
        for record in &data.records {
            match record {
                Record::Counter { name, ctx, value } => {
                    *inner
                        .counters
                        .entry((ctx.clone(), name.clone()))
                        .or_insert(0) += value;
                }
                Record::Hist { name, ctx, hist } => {
                    inner
                        .hists
                        .entry((ctx.clone(), name.clone()))
                        .or_default()
                        .merge(hist);
                }
                Record::Gauge { name, ctx, value } => {
                    let slot = inner
                        .gauges
                        .entry((ctx.clone(), name.clone()))
                        .or_insert(*value);
                    *slot = (*slot).max(*value);
                }
                other => inner.records.push(other.clone()),
            }
        }
    }

    /// Record a structured event.
    pub fn event(&self, ctx: &str, name: &str, fields: &[(&str, Value)]) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut().records.push(Record::Event {
                name: name.to_string(),
                ctx: ctx.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// End collection: close any still-open spans, fold the counter
    /// map into the record stream and return the data. `None` when
    /// the tracer was off.
    pub fn finish(self) -> Option<TraceData> {
        let cell = self.inner?;
        let mut inner = cell.into_inner();
        // Close leaked spans at the current time so the data is
        // well-formed even if a guard was forgotten.
        let now = inner.origin.elapsed().as_micros() as u64;
        while let Some(index) = inner.open.pop() {
            if let Record::Span {
                start_us, dur_us, ..
            } = &mut inner.records[index]
            {
                *dur_us = now.saturating_sub(*start_us);
            }
        }
        let counters = std::mem::take(&mut inner.counters);
        for ((ctx, name), value) in counters {
            inner.records.push(Record::Counter { name, ctx, value });
        }
        let hists = std::mem::take(&mut inner.hists);
        for ((ctx, name), hist) in hists {
            inner.records.push(Record::Hist {
                name,
                ctx,
                hist: Box::new(hist),
            });
        }
        let gauges = std::mem::take(&mut inner.gauges);
        for ((ctx, name), value) in gauges {
            inner.records.push(Record::Gauge { name, ctx, value });
        }
        if inner.prof_violations > 0 {
            let value = inner.prof_violations as i64;
            inner.records.push(Record::Counter {
                name: "mspan_unbalanced".to_string(),
                ctx: "prof".to_string(),
                value,
            });
        }
        // Emit the profile trie depth-first, children in name order so
        // the record stream is deterministic for a given input.
        let mut stack: Vec<(u32, String)> = Vec::new();
        let mut roots = inner.prof[0].children.clone();
        roots.sort_by(|&a, &b| {
            inner.prof[a as usize]
                .name
                .cmp(&inner.prof[b as usize].name)
        });
        for r in roots.into_iter().rev() {
            stack.push((r, inner.prof[r as usize].name.clone()));
        }
        let mut prof_records = Vec::new();
        while let Some((id, path)) = stack.pop() {
            let node = &inner.prof[id as usize];
            if node.count > 0 {
                prof_records.push(Record::Prof {
                    path: path.clone(),
                    count: node.count,
                    total_us: node.total_us,
                    child_us: node.child_us,
                });
            }
            let mut kids = node.children.clone();
            kids.sort_by(|&a, &b| {
                inner.prof[a as usize]
                    .name
                    .cmp(&inner.prof[b as usize].name)
            });
            for k in kids.into_iter().rev() {
                stack.push((k, format!("{path}/{}", inner.prof[k as usize].name)));
            }
        }
        inner.records.extend(prof_records);
        Some(TraceData {
            records: inner.records,
        })
    }
}

/// Guard returned by [`Tracer::span`]; records the span's duration on
/// drop.
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    /// `(record index, profile-trie node, previous trie position)`.
    frame: Option<(usize, u32, u32)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(cell), Some((index, node, prev))) = (&self.tracer.inner, self.frame) else {
            return;
        };
        let mut inner = cell.borrow_mut();
        let now = inner.origin.elapsed().as_micros() as u64;
        if let Some(pos) = inner.open.iter().rposition(|&i| i == index) {
            inner.open.remove(pos);
        }
        let mut dur = 0;
        if let Record::Span {
            start_us, dur_us, ..
        } = &mut inner.records[index]
        {
            *dur_us = now.saturating_sub(*start_us);
            dur = *dur_us;
        }
        inner.prof_exit(node, prev, dur);
    }
}

struct MicroFrame {
    node: u32,
    prev: u32,
    start_us: u64,
    /// `prof_open` right after this frame pushed; at drop any other
    /// value means guards closed out of LIFO order.
    expect_open: u32,
}

/// Guard returned by [`Tracer::mspan`]; folds the elapsed time into
/// the profile trie on drop and checks the balanced-stack invariant.
pub struct MicroGuard<'t> {
    tracer: &'t Tracer,
    frame: Option<MicroFrame>,
}

impl Drop for MicroGuard<'_> {
    fn drop(&mut self) {
        let (Some(cell), Some(frame)) = (&self.tracer.inner, self.frame.take()) else {
            return;
        };
        let mut inner = cell.borrow_mut();
        let now = inner.origin.elapsed().as_micros() as u64;
        if inner.prof_open != frame.expect_open {
            // Balanced-stack invariant: this guard is not the top of
            // the micro-span stack (a nested guard leaked or was
            // dropped out of order). Recover by truncating to this
            // frame and record the violation.
            inner.prof_violations += 1;
        }
        inner.prof_open = frame.expect_open.saturating_sub(1);
        inner.prof_exit(frame.node, frame.prev, now.saturating_sub(frame.start_us));
    }
}

/// A finished trace: the ordered record stream plus query and
/// serialisation helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    pub records: Vec<Record>,
}

impl TraceData {
    /// Sum of counter `name` across all contexts.
    pub fn counter_total(&self, name: &str) -> i64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Counter { name: n, value, .. } if n == name => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// The counter `(ctx, name)`, if recorded.
    pub fn counter(&self, ctx: &str, name: &str) -> Option<i64> {
        self.records.iter().find_map(|r| match r {
            Record::Counter {
                name: n,
                ctx: c,
                value,
            } if n == name && c == ctx => Some(*value),
            _ => None,
        })
    }

    /// All spans named `name`, in begin order.
    pub fn spans_named(&self, name: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| matches!(r, Record::Span { name: n, .. } if n == name))
            .collect()
    }

    /// All events named `name`, in record order.
    pub fn events_named(&self, name: &str) -> Vec<(&str, &[(String, Value)])> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Event {
                    name: n,
                    ctx,
                    fields,
                } if n == name => Some((ctx.as_str(), fields.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// The histogram `(ctx, name)`, if recorded.
    pub fn hist(&self, ctx: &str, name: &str) -> Option<&Histogram> {
        self.records.iter().find_map(|r| match r {
            Record::Hist {
                name: n,
                ctx: c,
                hist,
            } if n == name && c == ctx => Some(hist.as_ref()),
            _ => None,
        })
    }

    /// All histograms named `name`, with their contexts, in record
    /// order.
    pub fn hists_named(&self, name: &str) -> Vec<(&str, &Histogram)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Hist { name: n, ctx, hist } if n == name => {
                    Some((ctx.as_str(), hist.as_ref()))
                }
                _ => None,
            })
            .collect()
    }

    /// Merge of every histogram named `name` across all contexts
    /// (empty when none was recorded).
    pub fn hist_total(&self, name: &str) -> Histogram {
        let mut total = Histogram::new();
        for (_, h) in self.hists_named(name) {
            total.merge(h);
        }
        total
    }

    /// All profile nodes, in record order: `(path, count, total_us,
    /// child_us)`.
    pub fn profs(&self) -> Vec<(&str, u64, u64, u64)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Prof {
                    path,
                    count,
                    total_us,
                    child_us,
                } => Some((path.as_str(), *count, *total_us, *child_us)),
                _ => None,
            })
            .collect()
    }

    /// Summed `(count, total_us, child_us)` of every profile node with
    /// exactly this path; `None` when the path never appears.
    pub fn prof_total(&self, path: &str) -> Option<(u64, u64, u64)> {
        let mut found = None;
        for r in &self.records {
            if let Record::Prof {
                path: p,
                count,
                total_us,
                child_us,
            } = r
            {
                if p == path {
                    let slot = found.get_or_insert((0, 0, 0));
                    slot.0 += count;
                    slot.1 += total_us;
                    slot.2 += child_us;
                }
            }
        }
        found
    }

    /// The gauge `(ctx, name)`, if recorded.
    pub fn gauge(&self, ctx: &str, name: &str) -> Option<i64> {
        self.records.iter().find_map(|r| match r {
            Record::Gauge {
                name: n,
                ctx: c,
                value,
            } if n == name && c == ctx => Some(*value),
            _ => None,
        })
    }

    /// Merge another trace's records (used by `marion-report` when
    /// aggregating several JSONL files). Spans and events append in
    /// order; a counter whose `(ctx, name)` already exists is *summed*
    /// into the existing record rather than appended, so per-context
    /// lookups ([`TraceData::counter`], which returns the first match)
    /// see the combined total instead of silently reporting whichever
    /// file came first. Histograms with an existing `(ctx, name)`
    /// merge bucket-wise (lossless — see [`hist::Histogram::merge`]);
    /// duplicate gauges keep the maximum, so merging is associative
    /// and commutative for every record kind.
    pub fn merge(&mut self, other: TraceData) {
        for record in other.records {
            match &record {
                Record::Counter { name, ctx, value } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Counter {
                            name: n,
                            ctx: c,
                            value: v,
                        } if n == name && c == ctx => Some(v),
                        _ => None,
                    });
                    if let Some(v) = existing {
                        *v += value;
                        continue;
                    }
                }
                Record::Hist { name, ctx, hist } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Hist {
                            name: n,
                            ctx: c,
                            hist: h,
                        } if n == name && c == ctx => Some(h),
                        _ => None,
                    });
                    if let Some(h) = existing {
                        h.merge(hist);
                        continue;
                    }
                }
                Record::Gauge { name, ctx, value } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Gauge {
                            name: n,
                            ctx: c,
                            value: v,
                        } if n == name && c == ctx => Some(v),
                        _ => None,
                    });
                    if let Some(v) = existing {
                        *v = (*v).max(*value);
                        continue;
                    }
                }
                Record::Prof {
                    path,
                    count,
                    total_us,
                    child_us,
                } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Prof {
                            path: p,
                            count: c,
                            total_us: t,
                            child_us: ch,
                        } if p == path => Some((c, t, ch)),
                        _ => None,
                    });
                    if let Some((c, t, ch)) = existing {
                        *c += count;
                        *t += total_us;
                        *ch += child_us;
                        continue;
                    }
                }
                _ => {}
            }
            self.records.push(record);
        }
    }

    /// Human-readable report: span tree (indented by depth), counter
    /// table, then events.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let spans: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Span { .. }))
            .collect();
        if !spans.is_empty() {
            out.push_str("spans (us):\n");
            for r in spans {
                if let Record::Span {
                    name,
                    ctx,
                    depth,
                    dur_us,
                    ..
                } = r
                {
                    let indent = "  ".repeat(*depth as usize + 1);
                    out.push_str(&format!("{indent}{name:<24} {dur_us:>10}  [{ctx}]\n"));
                }
            }
        }
        let counters: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Counter { .. }))
            .collect();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for r in counters {
                if let Record::Counter { name, ctx, value } = r {
                    out.push_str(&format!("  {name:<28} {value:>12}  [{ctx}]\n"));
                }
            }
        }
        let hists: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Hist { .. }))
            .collect();
        if !hists.is_empty() {
            out.push_str("histograms (log2 buckets):\n");
            for r in hists {
                if let Record::Hist { name, ctx, hist } = r {
                    out.push_str(&format!("  {name:<28} {}  [{ctx}]\n", hist.summarize()));
                }
            }
        }
        let gauges: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Gauge { .. }))
            .collect();
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for r in gauges {
                if let Record::Gauge { name, ctx, value } = r {
                    out.push_str(&format!("  {name:<28} {value:>12}  [{ctx}]\n"));
                }
            }
        }
        let profs = self.profs();
        if !profs.is_empty() {
            out.push_str("profile (self us = total - child):\n");
            for (path, count, total_us, child_us) in profs {
                let depth = path.matches('/').count();
                let indent = "  ".repeat(depth + 1);
                let self_us = total_us.saturating_sub(child_us);
                let name = path.rsplit('/').next().unwrap_or(path);
                out.push_str(&format!(
                    "{indent}{name:<24} total {total_us:>10}  self {self_us:>10}  x{count}\n"
                ));
            }
        }
        let events: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Event { .. }))
            .collect();
        if !events.is_empty() {
            out.push_str("events:\n");
            for r in events {
                if let Record::Event { name, ctx, fields } = r {
                    out.push_str(&format!("  {name} [{ctx}]\n"));
                    for (k, v) in fields {
                        match v {
                            Value::Str(s) if s.contains('\n') => {
                                out.push_str(&format!("    {k}:\n"));
                                for line in s.lines() {
                                    out.push_str(&format!("      {line}\n"));
                                }
                            }
                            Value::Str(s) => out.push_str(&format!("    {k}: {s}\n")),
                            Value::Int(i) => out.push_str(&format!("    {k}: {i}\n")),
                            Value::Float(f) => out.push_str(&format!("    {k}: {f}\n")),
                        }
                    }
                }
            }
        }
        out
    }

    /// Serialise as JSON Lines: one flat object per record, with a
    /// `"t"` discriminator of `"span"`, `"counter"` or `"event"`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            let mut obj = json::ObjWriter::new();
            match record {
                Record::Span {
                    name,
                    ctx,
                    depth,
                    start_us,
                    dur_us,
                } => {
                    obj.str("t", "span");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("depth", *depth as i64);
                    obj.int("start_us", *start_us as i64);
                    obj.int("dur_us", *dur_us as i64);
                }
                Record::Counter { name, ctx, value } => {
                    obj.str("t", "counter");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("value", *value);
                }
                Record::Event { name, ctx, fields } => {
                    obj.str("t", "event");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    for (k, v) in fields {
                        match v {
                            Value::Int(i) => obj.int(k, *i),
                            Value::Float(f) => obj.float(k, *f),
                            Value::Str(s) => obj.str(k, s),
                        }
                    }
                }
                Record::Hist { name, ctx, hist } => {
                    obj.str("t", "hist");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("count", hist.count() as i64);
                    // The sum is carried as a string: it is a u64 and
                    // may exceed i64 when samples saturate.
                    obj.str("sum", &hist.sum().to_string());
                    obj.str("buckets", &hist.encode_counts());
                }
                Record::Gauge { name, ctx, value } => {
                    obj.str("t", "gauge");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("value", *value);
                }
                Record::Prof {
                    path,
                    count,
                    total_us,
                    child_us,
                } => {
                    obj.str("t", "prof");
                    obj.str("path", path);
                    obj.int("count", *count as i64);
                    obj.int("total_us", *total_us as i64);
                    obj.int("child_us", *child_us as i64);
                }
            }
            out.push_str(&obj.finish());
            out.push('\n');
        }
        out
    }

    /// Parse the JSON Lines form produced by [`TraceData::to_jsonl`].
    /// Blank lines are skipped; unknown `"t"` values and missing
    /// required keys are errors.
    pub fn parse_jsonl(text: &str) -> Result<TraceData, String> {
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = json::parse_flat(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let get_str = |key: &str| -> Result<String, String> {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_str().map(str::to_string))
                    .ok_or_else(|| format!("line {}: missing string {key:?}", lineno + 1))
            };
            let get_int = |key: &str| -> Result<i64, String> {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_int())
                    .ok_or_else(|| format!("line {}: missing integer {key:?}", lineno + 1))
            };
            let tag = get_str("t")?;
            match tag.as_str() {
                "span" => records.push(Record::Span {
                    name: get_str("name")?,
                    ctx: get_str("ctx")?,
                    depth: get_int("depth")? as u32,
                    start_us: get_int("start_us")? as u64,
                    dur_us: get_int("dur_us")? as u64,
                }),
                "counter" => records.push(Record::Counter {
                    name: get_str("name")?,
                    ctx: get_str("ctx")?,
                    value: get_int("value")?,
                }),
                "hist" => {
                    let buckets = get_str("buckets")?;
                    let sum: u64 = get_str("sum")?
                        .parse()
                        .map_err(|_| format!("line {}: bad hist sum", lineno + 1))?;
                    let hist = Histogram::from_parts(&buckets, sum)
                        .ok_or_else(|| format!("line {}: bad hist buckets", lineno + 1))?;
                    if hist.count() as i64 != get_int("count")? {
                        return Err(format!(
                            "line {}: hist count does not match its buckets",
                            lineno + 1
                        ));
                    }
                    records.push(Record::Hist {
                        name: get_str("name")?,
                        ctx: get_str("ctx")?,
                        hist: Box::new(hist),
                    });
                }
                "gauge" => records.push(Record::Gauge {
                    name: get_str("name")?,
                    ctx: get_str("ctx")?,
                    value: get_int("value")?,
                }),
                "prof" => records.push(Record::Prof {
                    path: get_str("path")?,
                    count: get_int("count")? as u64,
                    total_us: get_int("total_us")? as u64,
                    child_us: get_int("child_us")? as u64,
                }),
                "event" => {
                    let name = get_str("name")?;
                    let ctx = get_str("ctx")?;
                    let extra = fields
                        .into_iter()
                        .filter(|(k, _)| k != "t" && k != "name" && k != "ctx")
                        .collect();
                    records.push(Record::Event {
                        name,
                        ctx,
                        fields: extra,
                    });
                }
                other => {
                    return Err(format!(
                        "line {}: unknown record type {other:?}",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(TraceData { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_collects_nothing() {
        let tracer = Tracer::off();
        {
            let _g = tracer.span("ctx", "phase");
            tracer.add("ctx", "n", 3);
            tracer.event("ctx", "e", &[("k", Value::Int(1))]);
        }
        assert!(!tracer.is_on());
        assert!(tracer.finish().is_none());
    }

    #[test]
    fn spans_nest_and_keep_begin_order() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _outer = tracer.span("f", "compile");
            {
                let _a = tracer.span("f", "select");
            }
            {
                let _b = tracer.span("f", "schedule");
                let _c = tracer.span("f/b0", "block");
            }
        }
        let data = tracer.finish().unwrap();
        let spans: Vec<(String, u32)> = data
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Span { name, depth, .. } => Some((name.clone(), *depth)),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("compile".to_string(), 0),
                ("select".to_string(), 1),
                ("schedule".to_string(), 1),
                ("block".to_string(), 2),
            ]
        );
        // Parent spans cover their children.
        let dur = |name: &str| match data.spans_named(name)[0] {
            Record::Span {
                start_us, dur_us, ..
            } => (*start_us, *dur_us),
            _ => unreachable!(),
        };
        let (outer_start, outer_dur) = dur("compile");
        let (inner_start, inner_dur) = dur("block");
        assert!(inner_start >= outer_start);
        assert!(inner_start + inner_dur <= outer_start + outer_dur);
    }

    #[test]
    fn leaked_spans_are_closed_at_finish() {
        let tracer = Tracer::new(TraceConfig::default());
        let guard = tracer.span("f", "open");
        std::mem::forget(guard);
        let data = tracer.finish().unwrap();
        match &data.records[0] {
            Record::Span { name, .. } => assert_eq!(name, "open"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_per_context_and_total() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.add("m/f1", "spills", 2);
        tracer.add("m/f1", "spills", 3);
        tracer.add("m/f2", "spills", 7);
        tracer.add("m/f1", "insts", 40);
        let data = tracer.finish().unwrap();
        assert_eq!(data.counter("m/f1", "spills"), Some(5));
        assert_eq!(data.counter("m/f2", "spills"), Some(7));
        assert_eq!(data.counter_total("spills"), 12);
        assert_eq!(data.counter_total("insts"), 40);
        assert_eq!(data.counter("m/f3", "spills"), None);
    }

    #[test]
    fn jsonl_round_trips() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _g = tracer.span("m/f", "compile");
            tracer.event(
                "m/f/b0",
                "sched_block",
                &[
                    ("nodes", Value::Int(12)),
                    ("util", Value::Float(0.75)),
                    ("table", Value::Str("c0 | IF ID\nc1 | -- ID".to_string())),
                ],
            );
        }
        tracer.add("m/f", "insts_generated", 17);
        let data = tracer.finish().unwrap();
        let jsonl = data.to_jsonl();
        let parsed = TraceData::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, data);
    }

    #[test]
    fn render_text_mentions_everything() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _g = tracer.span("m/f", "compile");
        }
        tracer.add("m/f", "spills", 1);
        tracer.event("m/f", "note", &[("detail", Value::Str("hi".into()))]);
        let text = tracer.finish().unwrap().render_text();
        assert!(text.contains("compile"));
        assert!(text.contains("spills"));
        assert!(text.contains("note"));
        assert!(text.contains("detail: hi"));
    }

    #[test]
    fn merge_sums_duplicate_counters() {
        let mk = |spills: i64, insts: i64| {
            let t = Tracer::new(TraceConfig::default());
            t.add("m/f", "spills", spills);
            t.add("m/f", "insts", insts);
            t.event("m/f", "note", &[("run", Value::Int(spills))]);
            t.finish().unwrap()
        };
        let mut merged = mk(2, 10);
        merged.merge(mk(5, 30));
        // Same (ctx, name) folds into one record; the first-match
        // lookup sees the combined total.
        assert_eq!(merged.counter("m/f", "spills"), Some(7));
        assert_eq!(merged.counter("m/f", "insts"), Some(40));
        assert_eq!(merged.counter_total("spills"), 7);
        let counter_records = merged
            .records
            .iter()
            .filter(|r| matches!(r, Record::Counter { .. }))
            .count();
        assert_eq!(counter_records, 2, "duplicates coalesced");
        // Events from both traces survive.
        assert_eq!(merged.events_named("note").len(), 2);
    }

    #[test]
    fn merge_keeps_distinct_contexts_apart() {
        let t1 = Tracer::new(TraceConfig::default());
        t1.add("m/f1", "spills", 3);
        let t2 = Tracer::new(TraceConfig::default());
        t2.add("m/f2", "spills", 4);
        let mut merged = t1.finish().unwrap();
        merged.merge(t2.finish().unwrap());
        assert_eq!(merged.counter("m/f1", "spills"), Some(3));
        assert_eq!(merged.counter("m/f2", "spills"), Some(4));
        assert_eq!(merged.counter_total("spills"), 7);
    }

    #[test]
    fn import_replays_counters_and_events_into_a_live_tracer() {
        let recorded = {
            let t = Tracer::new(TraceConfig::default());
            {
                let _g = t.span("m/f", "compile");
            }
            t.add("m/f", "insts", 9);
            t.event("m/f/b0", "note", &[("k", Value::Int(1))]);
            t.finish().unwrap()
        };
        let live = Tracer::new(TraceConfig::default());
        live.add("m/f", "insts", 1);
        live.import(&recorded);
        let data = live.finish().unwrap();
        assert_eq!(data.counter("m/f", "insts"), Some(10), "counters summed");
        assert_eq!(data.events_named("note").len(), 1);
        assert_eq!(data.spans_named("compile").len(), 1);
        // Importing into an off tracer is a no-op.
        let off = Tracer::off();
        off.import(&recorded);
        assert!(off.finish().is_none());
    }

    #[test]
    fn hist_and_gauge_jsonl_round_trip_identity() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.observe("m/f", "service_us", 0);
        tracer.observe("m/f", "service_us", 3);
        tracer.observe("m/f", "service_us", 1_000_000);
        tracer.observe("m/g", "service_us", u64::MAX);
        tracer.gauge("serve", "queue_depth", 7);
        tracer.gauge("serve", "queue_depth", 4); // latest wins
        tracer.gauge("serve", "busy_workers", 2);
        let data = tracer.finish().unwrap();
        assert_eq!(data.gauge("serve", "queue_depth"), Some(4));
        assert_eq!(data.hist("m/f", "service_us").unwrap().count(), 3);
        assert_eq!(data.hist_total("service_us").count(), 4);
        let parsed = TraceData::parse_jsonl(&data.to_jsonl()).unwrap();
        assert_eq!(parsed, data, "JSONL round-trip is the identity");
    }

    #[test]
    fn merge_combines_hists_and_takes_gauge_maximum() {
        let mk = |v: u64, depth: i64| {
            let t = Tracer::new(TraceConfig::default());
            t.observe("m/f", "wait_us", v);
            t.gauge("serve", "queue_depth", depth);
            t.finish().unwrap()
        };
        let mut merged = mk(4, 9);
        merged.merge(mk(1024, 3));
        let h = merged.hist("m/f", "wait_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1028);
        assert_eq!(merged.gauge("serve", "queue_depth"), Some(9), "high-water");
        let hist_records = merged
            .records
            .iter()
            .filter(|r| matches!(r, Record::Hist { .. }))
            .count();
        assert_eq!(hist_records, 1, "duplicates coalesced");
        // Merge order does not matter.
        let mut other_way = mk(1024, 3);
        other_way.merge(mk(4, 9));
        assert_eq!(
            other_way.hist("m/f", "wait_us"),
            merged.hist("m/f", "wait_us")
        );
        assert_eq!(other_way.gauge("serve", "queue_depth"), Some(9));
    }

    #[test]
    fn import_merges_hists_and_gauges() {
        let recorded = {
            let t = Tracer::new(TraceConfig::default());
            t.observe("m/f", "block_stall_cycles", 8);
            t.gauge("m", "workers", 4);
            t.finish().unwrap()
        };
        let live = Tracer::new(TraceConfig::default());
        live.observe("m/f", "block_stall_cycles", 2);
        live.gauge("m", "workers", 1);
        live.import(&recorded);
        let data = live.finish().unwrap();
        let h = data.hist("m/f", "block_stall_cycles").unwrap();
        assert_eq!((h.count(), h.sum()), (2, 10));
        assert_eq!(data.gauge("m", "workers"), Some(4));
    }

    #[test]
    fn render_text_mentions_hists_and_gauges() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.observe("m/f", "wait_us", 100);
        tracer.gauge("serve", "queue_depth", 5);
        let text = tracer.finish().unwrap().render_text();
        assert!(text.contains("histograms"), "{text}");
        assert!(text.contains("wait_us"), "{text}");
        assert!(text.contains("gauges:"), "{text}");
        assert!(text.contains("queue_depth"), "{text}");
    }

    #[test]
    fn parse_rejects_bad_hist_lines() {
        // count disagreeing with buckets is rejected, not silently fixed.
        let bad = r#"{"t":"hist","name":"h","ctx":"c","count":5,"sum":"4","buckets":"3:1"}"#;
        assert!(TraceData::parse_jsonl(bad).is_err());
        let bad_buckets =
            r#"{"t":"hist","name":"h","ctx":"c","count":1,"sum":"4","buckets":"99:1"}"#;
        assert!(TraceData::parse_jsonl(bad_buckets).is_err());
        let ok = r#"{"t":"hist","name":"h","ctx":"c","count":1,"sum":"4","buckets":"3:1"}"#;
        assert_eq!(
            TraceData::parse_jsonl(ok)
                .unwrap()
                .hist("c", "h")
                .unwrap()
                .sum(),
            4
        );
    }

    #[test]
    fn micro_spans_fold_into_the_profile_trie() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _outer = tracer.span("m/f", "strategy");
            for _ in 0..3 {
                let _m = tracer.mspan("ig_build");
            }
            {
                let _m = tracer.mspan("color");
                let _n = tracer.mspan("simplify");
            }
        }
        let data = tracer.finish().unwrap();
        let (count, _, _) = data.prof_total("strategy/ig_build").unwrap();
        assert_eq!(count, 3);
        assert_eq!(data.prof_total("strategy/color").unwrap().0, 1);
        assert_eq!(data.prof_total("strategy/color/simplify").unwrap().0, 1);
        // Parent totals cover children: strategy's child_us is the sum
        // of its direct children's totals.
        let (_, _, strat_child) = data.prof_total("strategy").unwrap();
        let ig = data.prof_total("strategy/ig_build").unwrap().1;
        let color = data.prof_total("strategy/color").unwrap().1;
        assert_eq!(strat_child, ig + color);
        let (_, color_total, color_child) = data.prof_total("strategy/color").unwrap();
        let simplify = data.prof_total("strategy/color/simplify").unwrap().1;
        assert_eq!(color_child, simplify);
        assert!(color_total >= color_child);
        // Balanced usage records no violation.
        assert_eq!(data.counter("prof", "mspan_unbalanced"), None);
    }

    #[test]
    fn unbalanced_micro_span_stack_is_detected_at_drop() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _outer = tracer.span("m/f", "strategy");
            let parent = tracer.mspan("parent");
            let child = tracer.mspan("child");
            std::mem::forget(child); // leak: parent now drops first
            drop(parent);
        }
        let data = tracer.finish().unwrap();
        assert_eq!(data.counter("prof", "mspan_unbalanced"), Some(1));
        // The parent still folded (recovered), the leaked child never
        // closed so it has no instances.
        assert_eq!(data.prof_total("strategy/parent").unwrap().0, 1);
        assert!(data.prof_total("strategy/parent/child").is_none());
    }

    #[test]
    fn prof_records_round_trip_and_merge_by_path() {
        let mk = || {
            let t = Tracer::new(TraceConfig::default());
            {
                let _s = t.span("m/f", "strategy");
                let _m = t.mspan("ig_build");
            }
            t.finish().unwrap()
        };
        let data = mk();
        let parsed = TraceData::parse_jsonl(&data.to_jsonl()).unwrap();
        assert_eq!(parsed, data, "prof JSONL round-trip is the identity");
        let mut merged = mk();
        merged.merge(mk());
        assert_eq!(merged.prof_total("strategy/ig_build").unwrap().0, 2);
        let prof_records = merged
            .records
            .iter()
            .filter(|r| matches!(r, Record::Prof { .. }))
            .count();
        assert_eq!(prof_records, 2, "duplicates coalesced per path");
    }

    #[test]
    fn off_tracer_micro_spans_are_no_ops() {
        let tracer = Tracer::off();
        {
            let _m = tracer.mspan("hot_loop");
        }
        assert!(tracer.finish().is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceData::parse_jsonl("not json").is_err());
        assert!(TraceData::parse_jsonl("{\"t\":\"mystery\"}").is_err());
        assert!(TraceData::parse_jsonl("{\"t\":\"span\",\"name\":\"x\"}").is_err());
        // Blank lines are fine.
        assert!(TraceData::parse_jsonl("\n\n").unwrap().records.is_empty());
    }
}
