//! Lightweight observability for the Marion pipeline: wall-clock
//! spans, named counters and structured events, with no external
//! dependencies.
//!
//! The design optimises for the *disabled* case: a [`Tracer`] built
//! with [`Tracer::off`] carries no state and every operation on it is
//! a branch on `None`. Code under measurement takes `&Tracer` and
//! never needs to know whether collection is live.
//!
//! A live tracer accumulates [`Record`]s; [`Tracer::finish`] folds the
//! counter map into the record stream and yields a [`TraceData`],
//! which can be rendered as a human-readable report
//! ([`TraceData::render_text`]) or serialised as JSON Lines
//! ([`TraceData::to_jsonl`]) for downstream aggregation by
//! `marion-report`. [`TraceData::parse_jsonl`] round-trips the JSONL
//! form.
//!
//! Spans nest: the guard returned by [`Tracer::span`] records its
//! start eagerly (so records appear in begin order) and fills in the
//! duration when dropped. Counters are keyed by `(ctx, name)` and
//! accumulate; events carry arbitrary flat key/value payloads.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

pub mod hist;
pub mod json;
pub mod sink;

pub use hist::Histogram;
pub use sink::{JsonlSink, Sink, TextSink};

/// What the tracer should collect beyond the always-on spans,
/// counters and events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Emit a per-block reservation table (cycles x resource vector)
    /// event for every scheduled block. Verbose; off by default.
    pub reservation_tables: bool,
    /// Emit a per-block `sched_explain` event carrying the scheduler's
    /// cycle-by-cycle stall narrative for every final-pass block.
    /// Verbose; off by default.
    pub explanations: bool,
}

/// A scalar value carried by an [`Record::Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One collected fact. `ctx` scopes the record (typically
/// `machine/function` or `machine/function/block`); `name` says what
/// it is.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A timed region. `depth` is the span-stack depth at begin time
    /// (0 = top level); `start_us`/`dur_us` are microseconds relative
    /// to the tracer's origin.
    Span {
        name: String,
        ctx: String,
        depth: u32,
        start_us: u64,
        dur_us: u64,
    },
    /// An accumulated named total.
    Counter {
        name: String,
        ctx: String,
        value: i64,
    },
    /// A one-off structured fact with flat key/value fields.
    Event {
        name: String,
        ctx: String,
        fields: Vec<(String, Value)>,
    },
    /// A fixed-bucket log2 distribution of samples (see
    /// [`hist::Histogram`]). Merging sums bucket counts losslessly.
    /// Boxed: the 65-bucket array would otherwise dominate the size of
    /// every `Record`.
    Hist {
        name: String,
        ctx: String,
        hist: Box<Histogram>,
    },
    /// A point-in-time level (queue depth, busy workers, ...). The
    /// tracer keeps the latest value per `(ctx, name)`; merging two
    /// traces keeps the maximum (high-water) of duplicate gauges, the
    /// only duplicate rule that is associative and commutative.
    Gauge {
        name: String,
        ctx: String,
        value: i64,
    },
}

struct Inner {
    origin: Instant,
    records: Vec<Record>,
    /// Indices into `records` of spans that have begun but not ended.
    open: Vec<usize>,
    counters: BTreeMap<(String, String), i64>,
    hists: BTreeMap<(String, String), Histogram>,
    gauges: BTreeMap<(String, String), i64>,
    config: TraceConfig,
}

/// The collector. Cheap to pass by reference everywhere; all methods
/// are no-ops when built with [`Tracer::off`].
pub struct Tracer {
    inner: Option<RefCell<Inner>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// A live tracer collecting according to `config`.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            inner: Some(RefCell::new(Inner {
                origin: Instant::now(),
                records: Vec::new(),
                open: Vec::new(),
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
                gauges: BTreeMap::new(),
                config,
            })),
        }
    }

    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether per-block reservation tables were requested (false when
    /// the tracer is off).
    pub fn wants_reservation_tables(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.borrow().config.reservation_tables)
            .unwrap_or(false)
    }

    /// Whether per-block schedule explanations were requested (false
    /// when the tracer is off).
    pub fn wants_explanations(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.borrow().config.explanations)
            .unwrap_or(false)
    }

    /// Begin a timed span; the region ends when the returned guard is
    /// dropped. Spans may nest freely.
    pub fn span(&self, ctx: &str, name: &str) -> SpanGuard<'_> {
        let index = self.inner.as_ref().map(|cell| {
            let mut inner = cell.borrow_mut();
            let start_us = inner.origin.elapsed().as_micros() as u64;
            let depth = inner.open.len() as u32;
            let index = inner.records.len();
            inner.records.push(Record::Span {
                name: name.to_string(),
                ctx: ctx.to_string(),
                depth,
                start_us,
                dur_us: 0,
            });
            inner.open.push(index);
            index
        });
        SpanGuard {
            tracer: self,
            index,
        }
    }

    /// Add `delta` to the counter `(ctx, name)`.
    pub fn add(&self, ctx: &str, name: &str, delta: i64) {
        if let Some(cell) = &self.inner {
            *cell
                .borrow_mut()
                .counters
                .entry((ctx.to_string(), name.to_string()))
                .or_insert(0) += delta;
        }
    }

    /// Records one sample into the log2 histogram `(ctx, name)`.
    pub fn observe(&self, ctx: &str, name: &str, value: u64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut()
                .hists
                .entry((ctx.to_string(), name.to_string()))
                .or_default()
                .record(value);
        }
    }

    /// Sets the gauge `(ctx, name)` to `value` (latest wins within one
    /// tracer; merges across traces keep the maximum).
    pub fn gauge(&self, ctx: &str, name: &str, value: i64) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut()
                .gauges
                .insert((ctx.to_string(), name.to_string()), value);
        }
    }

    /// Replays a finished trace into this tracer: counters accumulate
    /// into the live counter map (summing with whatever this tracer
    /// already recorded per `(ctx, name)`), histograms merge
    /// bucket-wise, gauges keep the maximum, events and spans append
    /// as-is. Used by the compile cache to reattribute a cached
    /// function's trace to the current compilation — replayed span
    /// timings describe the run that recorded them, exactly like the
    /// per-worker shards [`TraceData::merge`] combines.
    pub fn import(&self, data: &TraceData) {
        let Some(cell) = &self.inner else {
            return;
        };
        let mut inner = cell.borrow_mut();
        for record in &data.records {
            match record {
                Record::Counter { name, ctx, value } => {
                    *inner
                        .counters
                        .entry((ctx.clone(), name.clone()))
                        .or_insert(0) += value;
                }
                Record::Hist { name, ctx, hist } => {
                    inner
                        .hists
                        .entry((ctx.clone(), name.clone()))
                        .or_default()
                        .merge(hist);
                }
                Record::Gauge { name, ctx, value } => {
                    let slot = inner
                        .gauges
                        .entry((ctx.clone(), name.clone()))
                        .or_insert(*value);
                    *slot = (*slot).max(*value);
                }
                other => inner.records.push(other.clone()),
            }
        }
    }

    /// Record a structured event.
    pub fn event(&self, ctx: &str, name: &str, fields: &[(&str, Value)]) {
        if let Some(cell) = &self.inner {
            cell.borrow_mut().records.push(Record::Event {
                name: name.to_string(),
                ctx: ctx.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// End collection: close any still-open spans, fold the counter
    /// map into the record stream and return the data. `None` when
    /// the tracer was off.
    pub fn finish(self) -> Option<TraceData> {
        let cell = self.inner?;
        let mut inner = cell.into_inner();
        // Close leaked spans at the current time so the data is
        // well-formed even if a guard was forgotten.
        let now = inner.origin.elapsed().as_micros() as u64;
        while let Some(index) = inner.open.pop() {
            if let Record::Span {
                start_us, dur_us, ..
            } = &mut inner.records[index]
            {
                *dur_us = now.saturating_sub(*start_us);
            }
        }
        let counters = std::mem::take(&mut inner.counters);
        for ((ctx, name), value) in counters {
            inner.records.push(Record::Counter { name, ctx, value });
        }
        let hists = std::mem::take(&mut inner.hists);
        for ((ctx, name), hist) in hists {
            inner.records.push(Record::Hist {
                name,
                ctx,
                hist: Box::new(hist),
            });
        }
        let gauges = std::mem::take(&mut inner.gauges);
        for ((ctx, name), value) in gauges {
            inner.records.push(Record::Gauge { name, ctx, value });
        }
        Some(TraceData {
            records: inner.records,
        })
    }
}

/// Guard returned by [`Tracer::span`]; records the span's duration on
/// drop.
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    index: Option<usize>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(cell), Some(index)) = (&self.tracer.inner, self.index) else {
            return;
        };
        let mut inner = cell.borrow_mut();
        let now = inner.origin.elapsed().as_micros() as u64;
        if let Some(pos) = inner.open.iter().rposition(|&i| i == index) {
            inner.open.remove(pos);
        }
        if let Record::Span {
            start_us, dur_us, ..
        } = &mut inner.records[index]
        {
            *dur_us = now.saturating_sub(*start_us);
        }
    }
}

/// A finished trace: the ordered record stream plus query and
/// serialisation helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    pub records: Vec<Record>,
}

impl TraceData {
    /// Sum of counter `name` across all contexts.
    pub fn counter_total(&self, name: &str) -> i64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Counter { name: n, value, .. } if n == name => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// The counter `(ctx, name)`, if recorded.
    pub fn counter(&self, ctx: &str, name: &str) -> Option<i64> {
        self.records.iter().find_map(|r| match r {
            Record::Counter {
                name: n,
                ctx: c,
                value,
            } if n == name && c == ctx => Some(*value),
            _ => None,
        })
    }

    /// All spans named `name`, in begin order.
    pub fn spans_named(&self, name: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| matches!(r, Record::Span { name: n, .. } if n == name))
            .collect()
    }

    /// All events named `name`, in record order.
    pub fn events_named(&self, name: &str) -> Vec<(&str, &[(String, Value)])> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Event {
                    name: n,
                    ctx,
                    fields,
                } if n == name => Some((ctx.as_str(), fields.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// The histogram `(ctx, name)`, if recorded.
    pub fn hist(&self, ctx: &str, name: &str) -> Option<&Histogram> {
        self.records.iter().find_map(|r| match r {
            Record::Hist {
                name: n,
                ctx: c,
                hist,
            } if n == name && c == ctx => Some(hist.as_ref()),
            _ => None,
        })
    }

    /// All histograms named `name`, with their contexts, in record
    /// order.
    pub fn hists_named(&self, name: &str) -> Vec<(&str, &Histogram)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                Record::Hist { name: n, ctx, hist } if n == name => {
                    Some((ctx.as_str(), hist.as_ref()))
                }
                _ => None,
            })
            .collect()
    }

    /// Merge of every histogram named `name` across all contexts
    /// (empty when none was recorded).
    pub fn hist_total(&self, name: &str) -> Histogram {
        let mut total = Histogram::new();
        for (_, h) in self.hists_named(name) {
            total.merge(h);
        }
        total
    }

    /// The gauge `(ctx, name)`, if recorded.
    pub fn gauge(&self, ctx: &str, name: &str) -> Option<i64> {
        self.records.iter().find_map(|r| match r {
            Record::Gauge {
                name: n,
                ctx: c,
                value,
            } if n == name && c == ctx => Some(*value),
            _ => None,
        })
    }

    /// Merge another trace's records (used by `marion-report` when
    /// aggregating several JSONL files). Spans and events append in
    /// order; a counter whose `(ctx, name)` already exists is *summed*
    /// into the existing record rather than appended, so per-context
    /// lookups ([`TraceData::counter`], which returns the first match)
    /// see the combined total instead of silently reporting whichever
    /// file came first. Histograms with an existing `(ctx, name)`
    /// merge bucket-wise (lossless — see [`hist::Histogram::merge`]);
    /// duplicate gauges keep the maximum, so merging is associative
    /// and commutative for every record kind.
    pub fn merge(&mut self, other: TraceData) {
        for record in other.records {
            match &record {
                Record::Counter { name, ctx, value } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Counter {
                            name: n,
                            ctx: c,
                            value: v,
                        } if n == name && c == ctx => Some(v),
                        _ => None,
                    });
                    if let Some(v) = existing {
                        *v += value;
                        continue;
                    }
                }
                Record::Hist { name, ctx, hist } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Hist {
                            name: n,
                            ctx: c,
                            hist: h,
                        } if n == name && c == ctx => Some(h),
                        _ => None,
                    });
                    if let Some(h) = existing {
                        h.merge(hist);
                        continue;
                    }
                }
                Record::Gauge { name, ctx, value } => {
                    let existing = self.records.iter_mut().find_map(|r| match r {
                        Record::Gauge {
                            name: n,
                            ctx: c,
                            value: v,
                        } if n == name && c == ctx => Some(v),
                        _ => None,
                    });
                    if let Some(v) = existing {
                        *v = (*v).max(*value);
                        continue;
                    }
                }
                _ => {}
            }
            self.records.push(record);
        }
    }

    /// Human-readable report: span tree (indented by depth), counter
    /// table, then events.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let spans: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Span { .. }))
            .collect();
        if !spans.is_empty() {
            out.push_str("spans (us):\n");
            for r in spans {
                if let Record::Span {
                    name,
                    ctx,
                    depth,
                    dur_us,
                    ..
                } = r
                {
                    let indent = "  ".repeat(*depth as usize + 1);
                    out.push_str(&format!("{indent}{name:<24} {dur_us:>10}  [{ctx}]\n"));
                }
            }
        }
        let counters: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Counter { .. }))
            .collect();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for r in counters {
                if let Record::Counter { name, ctx, value } = r {
                    out.push_str(&format!("  {name:<28} {value:>12}  [{ctx}]\n"));
                }
            }
        }
        let hists: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Hist { .. }))
            .collect();
        if !hists.is_empty() {
            out.push_str("histograms (log2 buckets):\n");
            for r in hists {
                if let Record::Hist { name, ctx, hist } = r {
                    out.push_str(&format!("  {name:<28} {}  [{ctx}]\n", hist.summarize()));
                }
            }
        }
        let gauges: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Gauge { .. }))
            .collect();
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for r in gauges {
                if let Record::Gauge { name, ctx, value } = r {
                    out.push_str(&format!("  {name:<28} {value:>12}  [{ctx}]\n"));
                }
            }
        }
        let events: Vec<_> = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Event { .. }))
            .collect();
        if !events.is_empty() {
            out.push_str("events:\n");
            for r in events {
                if let Record::Event { name, ctx, fields } = r {
                    out.push_str(&format!("  {name} [{ctx}]\n"));
                    for (k, v) in fields {
                        match v {
                            Value::Str(s) if s.contains('\n') => {
                                out.push_str(&format!("    {k}:\n"));
                                for line in s.lines() {
                                    out.push_str(&format!("      {line}\n"));
                                }
                            }
                            Value::Str(s) => out.push_str(&format!("    {k}: {s}\n")),
                            Value::Int(i) => out.push_str(&format!("    {k}: {i}\n")),
                            Value::Float(f) => out.push_str(&format!("    {k}: {f}\n")),
                        }
                    }
                }
            }
        }
        out
    }

    /// Serialise as JSON Lines: one flat object per record, with a
    /// `"t"` discriminator of `"span"`, `"counter"` or `"event"`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            let mut obj = json::ObjWriter::new();
            match record {
                Record::Span {
                    name,
                    ctx,
                    depth,
                    start_us,
                    dur_us,
                } => {
                    obj.str("t", "span");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("depth", *depth as i64);
                    obj.int("start_us", *start_us as i64);
                    obj.int("dur_us", *dur_us as i64);
                }
                Record::Counter { name, ctx, value } => {
                    obj.str("t", "counter");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("value", *value);
                }
                Record::Event { name, ctx, fields } => {
                    obj.str("t", "event");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    for (k, v) in fields {
                        match v {
                            Value::Int(i) => obj.int(k, *i),
                            Value::Float(f) => obj.float(k, *f),
                            Value::Str(s) => obj.str(k, s),
                        }
                    }
                }
                Record::Hist { name, ctx, hist } => {
                    obj.str("t", "hist");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("count", hist.count() as i64);
                    // The sum is carried as a string: it is a u64 and
                    // may exceed i64 when samples saturate.
                    obj.str("sum", &hist.sum().to_string());
                    obj.str("buckets", &hist.encode_counts());
                }
                Record::Gauge { name, ctx, value } => {
                    obj.str("t", "gauge");
                    obj.str("name", name);
                    obj.str("ctx", ctx);
                    obj.int("value", *value);
                }
            }
            out.push_str(&obj.finish());
            out.push('\n');
        }
        out
    }

    /// Parse the JSON Lines form produced by [`TraceData::to_jsonl`].
    /// Blank lines are skipped; unknown `"t"` values and missing
    /// required keys are errors.
    pub fn parse_jsonl(text: &str) -> Result<TraceData, String> {
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = json::parse_flat(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let get_str = |key: &str| -> Result<String, String> {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_str().map(str::to_string))
                    .ok_or_else(|| format!("line {}: missing string {key:?}", lineno + 1))
            };
            let get_int = |key: &str| -> Result<i64, String> {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_int())
                    .ok_or_else(|| format!("line {}: missing integer {key:?}", lineno + 1))
            };
            let tag = get_str("t")?;
            match tag.as_str() {
                "span" => records.push(Record::Span {
                    name: get_str("name")?,
                    ctx: get_str("ctx")?,
                    depth: get_int("depth")? as u32,
                    start_us: get_int("start_us")? as u64,
                    dur_us: get_int("dur_us")? as u64,
                }),
                "counter" => records.push(Record::Counter {
                    name: get_str("name")?,
                    ctx: get_str("ctx")?,
                    value: get_int("value")?,
                }),
                "hist" => {
                    let buckets = get_str("buckets")?;
                    let sum: u64 = get_str("sum")?
                        .parse()
                        .map_err(|_| format!("line {}: bad hist sum", lineno + 1))?;
                    let hist = Histogram::from_parts(&buckets, sum)
                        .ok_or_else(|| format!("line {}: bad hist buckets", lineno + 1))?;
                    if hist.count() as i64 != get_int("count")? {
                        return Err(format!(
                            "line {}: hist count does not match its buckets",
                            lineno + 1
                        ));
                    }
                    records.push(Record::Hist {
                        name: get_str("name")?,
                        ctx: get_str("ctx")?,
                        hist: Box::new(hist),
                    });
                }
                "gauge" => records.push(Record::Gauge {
                    name: get_str("name")?,
                    ctx: get_str("ctx")?,
                    value: get_int("value")?,
                }),
                "event" => {
                    let name = get_str("name")?;
                    let ctx = get_str("ctx")?;
                    let extra = fields
                        .into_iter()
                        .filter(|(k, _)| k != "t" && k != "name" && k != "ctx")
                        .collect();
                    records.push(Record::Event {
                        name,
                        ctx,
                        fields: extra,
                    });
                }
                other => {
                    return Err(format!(
                        "line {}: unknown record type {other:?}",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(TraceData { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_collects_nothing() {
        let tracer = Tracer::off();
        {
            let _g = tracer.span("ctx", "phase");
            tracer.add("ctx", "n", 3);
            tracer.event("ctx", "e", &[("k", Value::Int(1))]);
        }
        assert!(!tracer.is_on());
        assert!(tracer.finish().is_none());
    }

    #[test]
    fn spans_nest_and_keep_begin_order() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _outer = tracer.span("f", "compile");
            {
                let _a = tracer.span("f", "select");
            }
            {
                let _b = tracer.span("f", "schedule");
                let _c = tracer.span("f/b0", "block");
            }
        }
        let data = tracer.finish().unwrap();
        let spans: Vec<(String, u32)> = data
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Span { name, depth, .. } => Some((name.clone(), *depth)),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("compile".to_string(), 0),
                ("select".to_string(), 1),
                ("schedule".to_string(), 1),
                ("block".to_string(), 2),
            ]
        );
        // Parent spans cover their children.
        let dur = |name: &str| match data.spans_named(name)[0] {
            Record::Span {
                start_us, dur_us, ..
            } => (*start_us, *dur_us),
            _ => unreachable!(),
        };
        let (outer_start, outer_dur) = dur("compile");
        let (inner_start, inner_dur) = dur("block");
        assert!(inner_start >= outer_start);
        assert!(inner_start + inner_dur <= outer_start + outer_dur);
    }

    #[test]
    fn leaked_spans_are_closed_at_finish() {
        let tracer = Tracer::new(TraceConfig::default());
        let guard = tracer.span("f", "open");
        std::mem::forget(guard);
        let data = tracer.finish().unwrap();
        match &data.records[0] {
            Record::Span { name, .. } => assert_eq!(name, "open"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_per_context_and_total() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.add("m/f1", "spills", 2);
        tracer.add("m/f1", "spills", 3);
        tracer.add("m/f2", "spills", 7);
        tracer.add("m/f1", "insts", 40);
        let data = tracer.finish().unwrap();
        assert_eq!(data.counter("m/f1", "spills"), Some(5));
        assert_eq!(data.counter("m/f2", "spills"), Some(7));
        assert_eq!(data.counter_total("spills"), 12);
        assert_eq!(data.counter_total("insts"), 40);
        assert_eq!(data.counter("m/f3", "spills"), None);
    }

    #[test]
    fn jsonl_round_trips() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _g = tracer.span("m/f", "compile");
            tracer.event(
                "m/f/b0",
                "sched_block",
                &[
                    ("nodes", Value::Int(12)),
                    ("util", Value::Float(0.75)),
                    ("table", Value::Str("c0 | IF ID\nc1 | -- ID".to_string())),
                ],
            );
        }
        tracer.add("m/f", "insts_generated", 17);
        let data = tracer.finish().unwrap();
        let jsonl = data.to_jsonl();
        let parsed = TraceData::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, data);
    }

    #[test]
    fn render_text_mentions_everything() {
        let tracer = Tracer::new(TraceConfig::default());
        {
            let _g = tracer.span("m/f", "compile");
        }
        tracer.add("m/f", "spills", 1);
        tracer.event("m/f", "note", &[("detail", Value::Str("hi".into()))]);
        let text = tracer.finish().unwrap().render_text();
        assert!(text.contains("compile"));
        assert!(text.contains("spills"));
        assert!(text.contains("note"));
        assert!(text.contains("detail: hi"));
    }

    #[test]
    fn merge_sums_duplicate_counters() {
        let mk = |spills: i64, insts: i64| {
            let t = Tracer::new(TraceConfig::default());
            t.add("m/f", "spills", spills);
            t.add("m/f", "insts", insts);
            t.event("m/f", "note", &[("run", Value::Int(spills))]);
            t.finish().unwrap()
        };
        let mut merged = mk(2, 10);
        merged.merge(mk(5, 30));
        // Same (ctx, name) folds into one record; the first-match
        // lookup sees the combined total.
        assert_eq!(merged.counter("m/f", "spills"), Some(7));
        assert_eq!(merged.counter("m/f", "insts"), Some(40));
        assert_eq!(merged.counter_total("spills"), 7);
        let counter_records = merged
            .records
            .iter()
            .filter(|r| matches!(r, Record::Counter { .. }))
            .count();
        assert_eq!(counter_records, 2, "duplicates coalesced");
        // Events from both traces survive.
        assert_eq!(merged.events_named("note").len(), 2);
    }

    #[test]
    fn merge_keeps_distinct_contexts_apart() {
        let t1 = Tracer::new(TraceConfig::default());
        t1.add("m/f1", "spills", 3);
        let t2 = Tracer::new(TraceConfig::default());
        t2.add("m/f2", "spills", 4);
        let mut merged = t1.finish().unwrap();
        merged.merge(t2.finish().unwrap());
        assert_eq!(merged.counter("m/f1", "spills"), Some(3));
        assert_eq!(merged.counter("m/f2", "spills"), Some(4));
        assert_eq!(merged.counter_total("spills"), 7);
    }

    #[test]
    fn import_replays_counters_and_events_into_a_live_tracer() {
        let recorded = {
            let t = Tracer::new(TraceConfig::default());
            {
                let _g = t.span("m/f", "compile");
            }
            t.add("m/f", "insts", 9);
            t.event("m/f/b0", "note", &[("k", Value::Int(1))]);
            t.finish().unwrap()
        };
        let live = Tracer::new(TraceConfig::default());
        live.add("m/f", "insts", 1);
        live.import(&recorded);
        let data = live.finish().unwrap();
        assert_eq!(data.counter("m/f", "insts"), Some(10), "counters summed");
        assert_eq!(data.events_named("note").len(), 1);
        assert_eq!(data.spans_named("compile").len(), 1);
        // Importing into an off tracer is a no-op.
        let off = Tracer::off();
        off.import(&recorded);
        assert!(off.finish().is_none());
    }

    #[test]
    fn hist_and_gauge_jsonl_round_trip_identity() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.observe("m/f", "service_us", 0);
        tracer.observe("m/f", "service_us", 3);
        tracer.observe("m/f", "service_us", 1_000_000);
        tracer.observe("m/g", "service_us", u64::MAX);
        tracer.gauge("serve", "queue_depth", 7);
        tracer.gauge("serve", "queue_depth", 4); // latest wins
        tracer.gauge("serve", "busy_workers", 2);
        let data = tracer.finish().unwrap();
        assert_eq!(data.gauge("serve", "queue_depth"), Some(4));
        assert_eq!(data.hist("m/f", "service_us").unwrap().count(), 3);
        assert_eq!(data.hist_total("service_us").count(), 4);
        let parsed = TraceData::parse_jsonl(&data.to_jsonl()).unwrap();
        assert_eq!(parsed, data, "JSONL round-trip is the identity");
    }

    #[test]
    fn merge_combines_hists_and_takes_gauge_maximum() {
        let mk = |v: u64, depth: i64| {
            let t = Tracer::new(TraceConfig::default());
            t.observe("m/f", "wait_us", v);
            t.gauge("serve", "queue_depth", depth);
            t.finish().unwrap()
        };
        let mut merged = mk(4, 9);
        merged.merge(mk(1024, 3));
        let h = merged.hist("m/f", "wait_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1028);
        assert_eq!(merged.gauge("serve", "queue_depth"), Some(9), "high-water");
        let hist_records = merged
            .records
            .iter()
            .filter(|r| matches!(r, Record::Hist { .. }))
            .count();
        assert_eq!(hist_records, 1, "duplicates coalesced");
        // Merge order does not matter.
        let mut other_way = mk(1024, 3);
        other_way.merge(mk(4, 9));
        assert_eq!(
            other_way.hist("m/f", "wait_us"),
            merged.hist("m/f", "wait_us")
        );
        assert_eq!(other_way.gauge("serve", "queue_depth"), Some(9));
    }

    #[test]
    fn import_merges_hists_and_gauges() {
        let recorded = {
            let t = Tracer::new(TraceConfig::default());
            t.observe("m/f", "block_stall_cycles", 8);
            t.gauge("m", "workers", 4);
            t.finish().unwrap()
        };
        let live = Tracer::new(TraceConfig::default());
        live.observe("m/f", "block_stall_cycles", 2);
        live.gauge("m", "workers", 1);
        live.import(&recorded);
        let data = live.finish().unwrap();
        let h = data.hist("m/f", "block_stall_cycles").unwrap();
        assert_eq!((h.count(), h.sum()), (2, 10));
        assert_eq!(data.gauge("m", "workers"), Some(4));
    }

    #[test]
    fn render_text_mentions_hists_and_gauges() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.observe("m/f", "wait_us", 100);
        tracer.gauge("serve", "queue_depth", 5);
        let text = tracer.finish().unwrap().render_text();
        assert!(text.contains("histograms"), "{text}");
        assert!(text.contains("wait_us"), "{text}");
        assert!(text.contains("gauges:"), "{text}");
        assert!(text.contains("queue_depth"), "{text}");
    }

    #[test]
    fn parse_rejects_bad_hist_lines() {
        // count disagreeing with buckets is rejected, not silently fixed.
        let bad = r#"{"t":"hist","name":"h","ctx":"c","count":5,"sum":"4","buckets":"3:1"}"#;
        assert!(TraceData::parse_jsonl(bad).is_err());
        let bad_buckets =
            r#"{"t":"hist","name":"h","ctx":"c","count":1,"sum":"4","buckets":"99:1"}"#;
        assert!(TraceData::parse_jsonl(bad_buckets).is_err());
        let ok = r#"{"t":"hist","name":"h","ctx":"c","count":1,"sum":"4","buckets":"3:1"}"#;
        assert_eq!(
            TraceData::parse_jsonl(ok)
                .unwrap()
                .hist("c", "h")
                .unwrap()
                .sum(),
            4
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceData::parse_jsonl("not json").is_err());
        assert!(TraceData::parse_jsonl("{\"t\":\"mystery\"}").is_err());
        assert!(TraceData::parse_jsonl("{\"t\":\"span\",\"name\":\"x\"}").is_err());
        // Blank lines are fine.
        assert!(TraceData::parse_jsonl("\n\n").unwrap().records.is_empty());
    }
}
