//! Fixed-bucket log2 histograms for latency and size distributions.
//!
//! A [`Histogram`] counts `u64` samples into [`BUCKETS`] power-of-two
//! buckets: bucket 0 holds the value 0, bucket `i` (1 ≤ i ≤ 64) holds
//! values in `[2^(i-1), 2^i)`. The layout is fixed, so merging two
//! histograms is a lossless element-wise sum — associative and
//! commutative by construction — which is exactly what
//! `TraceData::merge` and the serve-side metrics aggregation need.
//!
//! Percentiles are estimated from the bucket counts:
//! [`Histogram::percentile`] returns the *upper bound* of the bucket
//! containing the requested rank. The estimate `e` therefore bounds
//! the true sample `v` by `e/2 < v ≤ e` (bucket 0 is exact), a
//! relative error of strictly less than 2×. That is the price of
//! fixed 65-slot storage; it is independent of sample count.

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value bucket `i` can hold.
pub fn bucket_min(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value bucket `i` can hold (saturating at `u64::MAX`).
pub fn bucket_max(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("buckets", &self.encode_counts())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Element-wise sum of another histogram into this one. Lossless:
    /// the result is identical to having recorded both sample streams
    /// into one histogram, so merging is associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Estimated `p`-th percentile (`p` in `[0, 1]`): the upper bound
    /// of the bucket holding the sample of rank `ceil(p·count)`.
    /// `None` when the histogram is empty. The estimate is within a
    /// factor of two above the true sample (see module docs).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_max(i));
            }
        }
        Some(bucket_max(BUCKETS - 1))
    }

    /// Sparse text form of the bucket counts: `"i:c"` pairs joined by
    /// `,` for every non-empty bucket (empty string when empty). Flat
    /// and scalar, so it fits the workspace's one-line JSON dialect.
    pub fn encode_counts(&self) -> String {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, c)| format!("{i}:{c}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Rebuilds a histogram from [`Histogram::encode_counts`] plus the
    /// recorded sum. `None` on malformed text or out-of-range bucket
    /// indices; the count is recomputed from the buckets, so the
    /// invariant `count == Σ bucket counts` holds by construction.
    pub fn from_parts(buckets: &str, sum: u64) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.sum = sum;
        if buckets.is_empty() {
            return Some(h);
        }
        for pair in buckets.split(',') {
            let (i, c) = pair.split_once(':')?;
            let i: usize = i.parse().ok()?;
            let c: u64 = c.parse().ok()?;
            if i >= BUCKETS {
                return None;
            }
            h.counts[i] += c;
            h.count += c;
        }
        Some(h)
    }

    /// One summary line: count, sum, mean and the p50/p90/p99
    /// estimates. Used by the text report.
    pub fn summarize(&self) -> String {
        match (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
        ) {
            (Some(p50), Some(p90), Some(p99)) => format!(
                "n={} sum={} mean={:.1} p50<={p50} p90<={p90} p99<={p99}",
                self.count,
                self.sum,
                self.mean()
            ),
            _ => "n=0".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 1..64 {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "lower edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "upper edge of bucket {k}");
            assert_eq!(bucket_min(k), lo);
            assert_eq!(bucket_max(k), hi);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_max(64), u64::MAX);
        assert_eq!(bucket_min(64), 1u64 << 63);
    }

    #[test]
    fn every_sample_lands_in_the_bucket_that_bounds_it() {
        for v in [
            0u64,
            1,
            2,
            3,
            7,
            8,
            1023,
            1024,
            1025,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_min(i) <= v && v <= bucket_max(i), "v={v} bucket={i}");
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[0, 1, 5, 1000]);
        let b = mk(&[2, 2, 3]);
        let c = mk(&[u64::MAX, 7]);
        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Lossless: merge equals recording both streams directly.
        assert_eq!(ab, mk(&[0, 1, 5, 1000, 2, 2, 3]));
        assert_eq!(ab.count(), 7);
        assert_eq!(ab.sum(), 1013);
    }

    #[test]
    fn percentiles_empty_single_and_saturated() {
        // Empty: no percentile at all.
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.percentile(0.99), None);
        assert!(empty.is_empty());

        // Single sample: every percentile is its bucket's upper bound.
        let mut one = Histogram::new();
        one.record(100); // bucket [64, 127]
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(p), Some(127), "p={p}");
        }

        // Zero is bucket-exact.
        let mut zero = Histogram::new();
        zero.record(0);
        assert_eq!(zero.percentile(0.5), Some(0));

        // Saturated top bucket.
        let mut sat = Histogram::new();
        sat.record(u64::MAX);
        sat.record(u64::MAX - 7);
        assert_eq!(sat.percentile(0.5), Some(u64::MAX));
        assert_eq!(sat.count(), 2);

        // The estimate bounds the true value: e/2 < v <= e.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((500..1000).contains(&p50), "p50 estimate {p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!((990..1980).contains(&p99), "p99 estimate {p99}");
    }

    #[test]
    fn counts_encode_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 0, 1, 5, 5, 5, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_parts(&h.encode_counts(), h.sum()).unwrap();
        assert_eq!(back, h);
        // Empty round-trips to empty.
        assert_eq!(Histogram::from_parts("", 0).unwrap(), Histogram::new());
        // Malformed forms are rejected.
        assert!(Histogram::from_parts("nope", 0).is_none());
        assert!(Histogram::from_parts("1", 0).is_none());
        assert!(Histogram::from_parts("65:1", 0).is_none());
        assert!(Histogram::from_parts("1:x", 0).is_none());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(9, 4);
        let mut b = Histogram::new();
        for _ in 0..4 {
            b.record(9);
        }
        assert_eq!(a, b);
    }

    /// True rank statistic matching `percentile`'s rank definition:
    /// the sample of rank `ceil(p·n)` (1-based) in sorted order.
    fn true_rank(samples: &[u64], p: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    /// The documented bound: the estimate `e` is the upper bound of
    /// the true sample's bucket, so `v ≤ e` and (for `v > 0`)
    /// `e < 2·v`; a true value of 0 must be reported exactly.
    fn assert_bound(samples: &[u64], p: f64) {
        let mut h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        let e = h.percentile(p).unwrap();
        let v = true_rank(samples, p);
        assert!(v <= e, "p{p}: estimate {e} below true sample {v}");
        if v == 0 {
            assert_eq!(e, 0, "p{p}: zero must be exact");
        } else {
            // e < 2v, written overflow-safe as e − v < v (e ≥ v held
            // above; v may be u64::MAX).
            assert!(e - v < v, "p{p}: estimate {e} not within 2x of {v}");
        }
    }

    #[test]
    fn percentile_bound_all_mass_in_one_bucket() {
        // 10_000 identical samples mid-bucket: every percentile must
        // return that bucket's upper bound, within 2x of 1000.
        let samples = vec![1000u64; 10_000];
        for p in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_bound(&samples, p);
        }
        let mut h = Histogram::new();
        h.record_n(1000, 10_000);
        assert_eq!(h.percentile(0.5), Some(1023));
        assert_eq!(h.percentile(0.99), Some(1023));
    }

    #[test]
    fn percentile_bound_bimodal_extremes() {
        // 99 fast samples and one catastrophic outlier: p99's rank-99
        // sample is still fast — the outlier must not leak into it —
        // while p100 must land in the outlier's bucket.
        let mut samples = vec![3u64; 99];
        samples.push(u64::MAX);
        for p in [0.5, 0.9, 0.99, 1.0] {
            assert_bound(&samples, p);
        }
        let mut h = Histogram::new();
        h.record_n(3, 99);
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.99), Some(3));
        assert_eq!(h.percentile(1.0), Some(u64::MAX));

        // Half zeros, half huge: p50 is the rank-50 sample of 100,
        // which is still a zero and must be reported exactly as 0.
        let mut bimodal = vec![0u64; 50];
        bimodal.extend(std::iter::repeat_n(1u64 << 40, 50));
        for p in [0.25, 0.5, 0.75, 0.99] {
            assert_bound(&bimodal, p);
        }
        let mut h = Histogram::new();
        h.record_n(0, 50);
        h.record_n(1 << 40, 50);
        assert_eq!(h.percentile(0.5), Some(0));
    }

    #[test]
    fn percentile_bound_single_sample() {
        for v in [0u64, 1, 2, 7, 1023, 1024, u64::MAX] {
            for p in [0.0, 0.5, 0.99, 1.0] {
                assert_bound(&[v], p);
            }
        }
        // Every percentile of a one-sample histogram is that sample's
        // bucket upper bound.
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.percentile(0.0), h.percentile(1.0));
        assert_eq!(h.percentile(0.5), Some(7));
    }
}
