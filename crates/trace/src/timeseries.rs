//! Fixed-window time series over a bounded ring of recent windows.
//!
//! A [`TimeSeries`] buckets `u64` samples into consecutive **windows**
//! of `window_len` ticks (the caller chooses the tick unit — the serve
//! layer uses milliseconds since daemon start) and retains the most
//! recent `num_windows` of them in a ring. Each retained window keeps
//! `count`, `sum`, `max` and a full log2 [`Histogram`] of its samples
//! ([`WindowStats`]), so windowed rates *and* windowed percentiles
//! fall out of the same structure.
//!
//! Windows are identified **absolutely** (`window id = tick /
//! window_len`), which is what makes [`TimeSeries::merge`] lossless
//! and order-independent within the retained horizon: two series with
//! the same configuration merge by summing stats for equal window ids
//! and keeping the newer window when two ids collide on a ring slot —
//! a per-slot join (max by id, element-wise sum on ties) that is
//! associative and commutative by construction, exactly like
//! [`Histogram::merge`]. Samples older than the retained horizon are
//! dropped deterministically, never silently folded into a newer
//! window.

use crate::hist::Histogram;

/// Aggregate statistics for one window (or a merge of windows).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Log2 distribution of the samples.
    pub hist: Histogram,
}

impl WindowStats {
    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
        self.hist.record_n(v, n);
    }

    /// Element-wise sum of another window into this one (lossless).
    pub fn merge(&mut self, other: &WindowStats) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Mean sample value; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A bounded ring of recent fixed-width windows. See the module docs
/// for the merge law.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window_len: u64,
    slots: Vec<Option<(u64, WindowStats)>>,
}

impl TimeSeries {
    /// A series of `num_windows` windows, each `window_len` ticks
    /// wide. Both must be at least 1 (clamped).
    pub fn new(window_len: u64, num_windows: usize) -> TimeSeries {
        TimeSeries {
            window_len: window_len.max(1),
            slots: vec![None; num_windows.max(1)],
        }
    }

    /// Ticks per window.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Windows retained.
    pub fn num_windows(&self) -> usize {
        self.slots.len()
    }

    /// The absolute window id a tick falls into.
    pub fn window_id(&self, tick: u64) -> u64 {
        tick / self.window_len
    }

    /// Records one sample at `tick`.
    pub fn record(&mut self, tick: u64, v: u64) {
        self.record_n(tick, v, 1);
    }

    /// Records `n` samples of the same value at `tick`. A sample whose
    /// window has already been evicted from the ring (older than the
    /// retained horizon) is dropped, deterministically.
    pub fn record_n(&mut self, tick: u64, v: u64, n: u64) {
        let id = tick / self.window_len;
        let slot = (id % self.slots.len() as u64) as usize;
        match &mut self.slots[slot] {
            Some((cur, stats)) if *cur == id => stats.record_n(v, n),
            Some((cur, _)) if *cur > id => {} // beyond the horizon: drop
            other => {
                let mut stats = WindowStats::default();
                stats.record_n(v, n);
                *other = Some((id, stats));
            }
        }
    }

    /// Merges another series into this one. Stats for equal window ids
    /// sum element-wise; when two different ids collide on one ring
    /// slot the newer window wins — so the merge is associative and
    /// commutative (see module docs).
    ///
    /// # Panics
    ///
    /// Both series must share `window_len` and `num_windows`; merging
    /// differently-shaped series would silently misalign windows.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            (self.window_len, self.slots.len()),
            (other.window_len, other.slots.len()),
            "TimeSeries::merge requires identical window configuration"
        );
        for entry in other.slots.iter().flatten() {
            let (id, stats) = entry;
            let slot = (*id % self.slots.len() as u64) as usize;
            match &mut self.slots[slot] {
                Some((cur, mine)) if *cur == *id => mine.merge(stats),
                Some((cur, _)) if *cur > *id => {}
                slot_ref => *slot_ref = Some((*id, stats.clone())),
            }
        }
    }

    /// The retained windows as `(window id, stats)`, oldest first.
    pub fn sorted(&self) -> Vec<(u64, &WindowStats)> {
        let mut windows: Vec<(u64, &WindowStats)> = self
            .slots
            .iter()
            .flatten()
            .map(|(id, stats)| (*id, stats))
            .collect();
        windows.sort_by_key(|(id, _)| *id);
        windows
    }

    /// Merged stats over the `n` most recent windows ending at (and
    /// including) the window containing `now_tick`.
    pub fn recent(&self, now_tick: u64, n: usize) -> WindowStats {
        let cur = self.window_id(now_tick);
        let oldest = cur.saturating_sub(n.saturating_sub(1) as u64);
        let mut total = WindowStats::default();
        for (id, stats) in self.sorted() {
            if id >= oldest && id <= cur {
                total.merge(stats);
            }
        }
        total
    }

    /// Merged stats over every retained window.
    pub fn horizon(&self) -> WindowStats {
        let mut total = WindowStats::default();
        for (_, stats) in self.sorted() {
            total.merge(stats);
        }
        total
    }

    /// The last `n` windows ending at `now_tick`, oldest first, with
    /// `None` for windows that saw no samples. The fixed shape (always
    /// exactly `n` entries) is what sparkline rendering wants.
    pub fn series(&self, now_tick: u64, n: usize) -> Vec<(u64, Option<&WindowStats>)> {
        let cur = self.window_id(now_tick);
        let oldest = cur.saturating_sub(n.saturating_sub(1) as u64);
        (oldest..=cur)
            .map(|id| {
                let slot = (id % self.slots.len() as u64) as usize;
                match &self.slots[slot] {
                    Some((cur_id, stats)) if *cur_id == id => (id, Some(stats)),
                    _ => (id, None),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(samples: &[(u64, u64)]) -> TimeSeries {
        let mut t = TimeSeries::new(10, 4);
        for &(tick, v) in samples {
            t.record(tick, v);
        }
        t
    }

    #[test]
    fn samples_land_in_their_window() {
        let t = ts(&[(0, 5), (9, 7), (10, 100), (35, 1)]);
        let windows = t.sorted();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].0, 0);
        assert_eq!(windows[0].1.count, 2);
        assert_eq!(windows[0].1.sum, 12);
        assert_eq!(windows[0].1.max, 7);
        assert_eq!(windows[1], (1, windows[1].1));
        assert_eq!(windows[1].1.sum, 100);
        assert_eq!(windows[2].0, 3);
    }

    #[test]
    fn ring_evicts_oldest_and_drops_stale_samples() {
        let mut t = TimeSeries::new(10, 4);
        t.record(0, 1); // window 0
        t.record(45, 2); // window 4 — same slot as window 0, evicts it
        assert_eq!(
            t.sorted().iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            [4]
        );
        // A late sample for the evicted window is dropped, not folded
        // into window 4.
        t.record(5, 99);
        let horizon = t.horizon();
        assert_eq!((horizon.count, horizon.sum), (1, 2));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // Overlapping windows, disjoint windows, and a ring collision
        // (windows 0 and 4 share a slot at num_windows = 4).
        let a = ts(&[(0, 1), (12, 8), (25, 3)]);
        let b = ts(&[(13, 2), (31, 4)]);
        let c = ts(&[(44, 16), (25, 5)]);
        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Lossless on the shared window: 12 and 13 are both window 1.
        let w1 = ab
            .sorted()
            .iter()
            .find(|(id, _)| *id == 1)
            .unwrap()
            .1
            .clone();
        assert_eq!((w1.count, w1.sum, w1.max), (2, 10, 8));
        assert_eq!(w1.hist.count(), 2);
        // The collision case: merging c's window 4 evicts window 0
        // regardless of merge order.
        assert!(left.sorted().iter().all(|(id, _)| *id != 0));
        assert!(left.sorted().iter().any(|(id, _)| *id == 4));
    }

    #[test]
    fn merge_equals_recording_one_stream_within_the_horizon() {
        let mut one = TimeSeries::new(10, 8);
        let mut x = TimeSeries::new(10, 8);
        let mut y = TimeSeries::new(10, 8);
        for (i, &(tick, v)) in [(1u64, 4u64), (11, 9), (12, 1), (21, 7), (33, 2)]
            .iter()
            .enumerate()
        {
            one.record(tick, v);
            if i % 2 == 0 {
                x.record(tick, v);
            } else {
                y.record(tick, v);
            }
        }
        x.merge(&y);
        assert_eq!(x, one);
    }

    #[test]
    #[should_panic(expected = "identical window configuration")]
    fn merge_rejects_mismatched_configuration() {
        let mut a = TimeSeries::new(10, 4);
        let b = TimeSeries::new(20, 4);
        a.merge(&b);
    }

    #[test]
    fn recent_and_horizon_queries() {
        let t = ts(&[(0, 1), (11, 2), (22, 4), (35, 8)]);
        // Last 2 windows at tick 35: windows 2 and 3.
        let recent = t.recent(35, 2);
        assert_eq!((recent.count, recent.sum), (2, 12));
        // Last 1 window: just window 3.
        assert_eq!(t.recent(35, 1).sum, 8);
        let horizon = t.horizon();
        assert_eq!((horizon.count, horizon.sum, horizon.max), (4, 15, 8));
        assert_eq!(horizon.hist.count(), 4);
    }

    #[test]
    fn series_has_fixed_shape_with_gaps_as_none() {
        let t = ts(&[(0, 1), (25, 4)]);
        let series = t.series(35, 4);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].0, 0);
        assert!(series[0].1.is_some());
        assert!(series[1].1.is_none(), "window 1 empty");
        assert_eq!(series[2].1.unwrap().sum, 4);
        assert!(series[3].1.is_none(), "current window empty");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = TimeSeries::new(10, 4);
        a.record_n(5, 9, 3);
        let mut b = TimeSeries::new(10, 4);
        for _ in 0..3 {
            b.record(5, 9);
        }
        assert_eq!(a, b);
    }
}
