//! Just enough JSON for the trace format: a writer for flat objects
//! and a parser for single-line flat objects (string / number /
//! boolean values only — the trace schema never nests).

use crate::Value;

/// Escape `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one flat JSON object.
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    #[allow(clippy::new_without_default)]
    pub fn new() -> ObjWriter {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    pub fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
    }

    pub fn int(&mut self, key: &str, value: i64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    pub fn float(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            // `{:?}` prints enough digits to round-trip f64.
            self.buf.push_str(&format!("{value:?}"));
        } else {
            // JSON has no NaN/Inf; encode as null and parse back as 0.
            self.buf.push_str("null");
        }
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Parse one flat JSON object into key/value pairs. Values must be
/// scalars (string, number, `true`, `false`, `null`); nested objects
/// or arrays are errors. Integers without fractional part parse as
/// [`Value::Int`], everything else numeric as [`Value::Float`];
/// booleans become 1/0, `null` becomes `Int(0)`.
pub fn parse_flat(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.scalar()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {:?}", d as char))?;
                        }
                        // Surrogate pairs are not produced by our
                        // writer; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid utf-8 in string".to_string()),
                    };
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated utf-8 sequence")?;
                    let s = std::str::from_utf8(slice).map_err(|_| "invalid utf-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Int(1))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Int(0))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Int(0))
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                let mut is_float = false;
                while let Some(b) = self.peek() {
                    match b {
                        b'0'..=b'9' => self.pos += 1,
                        b'.' | b'e' | b'E' | b'+' | b'-' => {
                            is_float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| format!("bad number {text:?}"))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| format!("bad integer {text:?}"))
                }
            }
            Some(b'{' | b'[') => Err("nested values are not supported".to_string()),
            other => Err(format!("expected scalar, got {other:?}")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let mut w = ObjWriter::new();
        w.str("t", "event");
        w.str("msg", "a \"quoted\"\nline\twith\\slashes");
        w.int("n", -42);
        w.float("x", 0.125);
        let line = w.finish();
        let fields = parse_flat(&line).unwrap();
        assert_eq!(fields[0], ("t".to_string(), Value::Str("event".into())));
        assert_eq!(
            fields[1].1,
            Value::Str("a \"quoted\"\nline\twith\\slashes".into())
        );
        assert_eq!(fields[2].1, Value::Int(-42));
        assert_eq!(fields[3].1, Value::Float(0.125));
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let fields = parse_flat(r#"{"k":"café — ✓"}"#).unwrap();
        assert_eq!(fields[0].1, Value::Str("café — ✓".into()));
    }

    #[test]
    fn accepts_booleans_null_and_empty_object() {
        let fields = parse_flat(r#"{"a":true,"b":false,"c":null}"#).unwrap();
        assert_eq!(fields[0].1, Value::Int(1));
        assert_eq!(fields[1].1, Value::Int(0));
        assert_eq!(fields[2].1, Value::Int(0));
        assert!(parse_flat("{}").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":[1]}",
            "{} junk",
        ] {
            assert!(parse_flat(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = ObjWriter::new();
        w.float("x", f64::NAN);
        let line = w.finish();
        assert_eq!(line, "{\"x\":null}");
        assert_eq!(parse_flat(&line).unwrap()[0].1, Value::Int(0));
    }
}
