//! Pretty-print → reparse → re-pretty-print round trips over every
//! bundled machine description.
//!
//! This is the load-bearing invariant behind generative retargeting
//! (`marion-mdgen`): a machine emitted as Maril text via
//! `maril::pretty::print_description` must go through the real front
//! door (`lexer → parser → sema → Machine::from_parts`) and mean the
//! same machine. The five hand-written descriptions exercise every
//! directive the language has — temporal registers, packing classes,
//! `%aux` conditions, escapes, labelled moves, glue rules — so a
//! printer/parser divergence on any construct surfaces here first.

use marion_maril::lexer::lex;
use marion_maril::parser::parse;
use marion_maril::pretty::print_description;
use marion_maril::Machine;

fn all_machines() -> Vec<(&'static str, &'static str)> {
    vec![
        ("toyp", marion_machines::toyp::text()),
        ("r2000", marion_machines::r2000::text()),
        ("m88k", marion_machines::m88k::text()),
        ("i860", marion_machines::i860::text()),
        ("rs6000", marion_machines::rs6000::text()),
    ]
}

/// `print(parse(print(parse(s))))` must equal `print(parse(s))`: the
/// printed form is a fixpoint of the printer∘parser composition.
#[test]
fn printed_form_is_a_parse_fixpoint_on_every_machine() {
    for (name, src) in all_machines() {
        let first = parse(&lex(src).unwrap_or_else(|e| panic!("{name}: lex: {e}")))
            .unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let printed = print_description(&first);
        let second = parse(&lex(&printed).unwrap_or_else(|e| panic!("{name}: relex: {e}")))
            .unwrap_or_else(|e| {
                panic!("{name}: reparse of printed form failed: {e}\n--- printed ---\n{printed}")
            });
        let reprinted = print_description(&second);
        assert_eq!(
            printed, reprinted,
            "{name}: printed form is not a fixpoint (printer/parser divergence)"
        );
    }
}

/// The printed text must also survive the whole front door and
/// compile to the same machine tables the original text produced.
#[test]
fn printed_form_compiles_to_the_same_machine() {
    for (name, src) in all_machines() {
        let original = Machine::parse(name, src)
            .unwrap_or_else(|e| panic!("{}", e.render(&format!("{name}.maril"), src)));
        let desc = parse(&lex(src).unwrap()).unwrap();
        let printed = print_description(&desc);
        let reparsed = Machine::parse(name, &printed).unwrap_or_else(|e| {
            panic!(
                "{name}: printed description rejected by the front door:\n{}\n--- printed ---\n{printed}",
                e.render(&format!("{name}.printed.maril"), &printed)
            )
        });
        // Structural equality of the compiled tables. Line statistics
        // legitimately differ (the printer normalises whitespace), so
        // compare everything else via the public accessors.
        assert_eq!(
            original.templates().len(),
            reparsed.templates().len(),
            "{name}: template count changed through the round trip"
        );
        for (a, b) in original.templates().iter().zip(reparsed.templates()) {
            assert_eq!(a.mnemonic, b.mnemonic, "{name}: mnemonic order changed");
            assert_eq!(a.label, b.label, "{name}: {}: label", a.mnemonic);
            assert_eq!(a.escape, b.escape, "{name}: {}: escape", a.mnemonic);
            assert_eq!(a.operands, b.operands, "{name}: {}: operands", a.mnemonic);
            assert_eq!(a.ty, b.ty, "{name}: {}: type", a.mnemonic);
            assert_eq!(
                a.affects_clock, b.affects_clock,
                "{name}: {}: clock",
                a.mnemonic
            );
            assert_eq!(a.class, b.class, "{name}: {}: packing class", a.mnemonic);
            assert_eq!(a.sem, b.sem, "{name}: {}: semantics", a.mnemonic);
            assert_eq!(a.rsrc, b.rsrc, "{name}: {}: resource vector", a.mnemonic);
            assert_eq!(
                (a.cost, a.latency, a.slots),
                (b.cost, b.latency, b.slots),
                "{name}: {}: (cost, latency, slots)",
                a.mnemonic
            );
            assert_eq!(a.is_move, b.is_move, "{name}: {}: %move", a.mnemonic);
        }
        assert_eq!(
            original.resources(),
            reparsed.resources(),
            "{name}: resources"
        );
        assert_eq!(original.imm_defs(), reparsed.imm_defs(), "{name}: %defs");
        assert_eq!(
            original.label_defs(),
            reparsed.label_defs(),
            "{name}: %labels"
        );
        assert_eq!(
            original.aux_latencies(),
            reparsed.aux_latencies(),
            "{name}: %aux table"
        );
        assert_eq!(original.cwvm(), reparsed.cwvm(), "{name}: cwvm model");
        for c in 0..original.reg_classes().len() {
            let id = marion_maril::RegClassId(c as u32);
            assert_eq!(
                original.reg_class(id),
                reparsed.reg_class(id),
                "{name}: register class {c}"
            );
        }
    }
}
