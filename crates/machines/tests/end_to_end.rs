//! End-to-end compilation: C subset → IR → selected, scheduled,
//! allocated machine code, on every bundled machine × every strategy.

use marion_core::{Compiler, StrategyKind};
use marion_machines::load_all;

const PROGRAMS: &[(&str, &str)] = &[
    (
        "sum_loop",
        "int main() {
            int i, s;
            s = 0;
            for (i = 1; i <= 100; i++) s += i;
            return s;
        }",
    ),
    (
        "double_kernel",
        "double x[64]; double y[64];
         double dot(int n) {
            int i; double s = 0.0;
            for (i = 0; i < n; i++) s += x[i] * y[i];
            return s;
         }
         int main() {
            int i;
            for (i = 0; i < 64; i++) { x[i] = i * 0.5; y[i] = i * 0.25; }
            return (int)dot(64);
         }",
    ),
    (
        "calls_and_branches",
        "int abs(int v) { if (v < 0) return -v; return v; }
         int main() {
            int i, s = 0;
            for (i = -5; i < 5; i++) {
                if (i % 2 == 0) s += abs(i); else s -= abs(i);
            }
            return s;
         }",
    ),
    (
        "mixed_arith",
        "int main() {
            int a = 7, b = 3;
            double d = 2.5;
            int c = a * b + a / b - a % b + (a << 2) + (a >> 1) + (a & b) + (a | b) + (a ^ b);
            return c + (int)(d * 4.0);
         }",
    ),
];

#[test]
fn compiles_on_every_machine_and_strategy() {
    for spec in load_all() {
        for strategy in StrategyKind::ALL {
            let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
            for (name, src) in PROGRAMS {
                let module = marion_frontend::compile(src)
                    .unwrap_or_else(|e| panic!("{name}: front end: {e}"));
                let program = compiler.compile_module(&module).unwrap_or_else(|e| {
                    panic!("{name} on {} with {strategy}: {e}", spec.machine.name())
                });
                assert!(
                    program.stats.insts_generated > 0,
                    "{name} on {} generated nothing",
                    spec.machine.name()
                );
                // Rendering must not panic and must mention main.
                let text = program.render(&spec.machine);
                assert!(text.contains("main:"), "{text}");
            }
        }
    }
}

#[test]
fn i860_emits_dual_operation_words() {
    // A multiply feeding an add on the i860 should produce EAP
    // sub-operations, and the schedule should pack at least one word
    // with more than one sub-operation.
    let spec = marion_machines::load("i860");
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes, StrategyKind::Postpass);
    let src = "double a, b, x, y, z;
               double f() { return (x + b) + (a * z) + (y * y) + (a + y); }";
    let module = marion_frontend::compile(src).unwrap();
    let program = compiler.compile_module(&module).unwrap();
    let func = program.asm.func("f").expect("f");
    let mnems: Vec<&str> = func
        .blocks
        .iter()
        .flat_map(|b| b.words.iter())
        .flat_map(|w| w.insts.iter())
        .map(|i| spec.machine.template(i.template).mnemonic.as_str())
        .collect();
    assert!(
        mnems.contains(&"M1"),
        "multiplier launch missing: {mnems:?}"
    );
    assert!(
        mnems.contains(&"A1") || mnems.contains(&"A1m"),
        "adder launch missing: {mnems:?}"
    );
    assert!(
        mnems.contains(&"AWB"),
        "adder write-back missing: {mnems:?}"
    );
    let packed = func
        .blocks
        .iter()
        .flat_map(|b| b.words.iter())
        .any(|w| w.insts.len() > 1);
    assert!(packed, "no packed long instruction words: {mnems:?}");
}

#[test]
fn toyp_uses_movd_escape_for_double_copies() {
    let spec = marion_machines::load("toyp");
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes, StrategyKind::Postpass);
    // A double parameter copied through another variable forces moves.
    let src = "double g(double x) { double y; y = x; return y + y; }";
    let module = marion_frontend::compile(src).unwrap();
    let program = compiler.compile_module(&module).unwrap();
    let func = program.asm.func("g").expect("g");
    assert!(func.inst_count() > 0);
}
