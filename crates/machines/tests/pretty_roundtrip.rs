//! The pretty-printer round-trips every bundled description: parsing
//! the printed form yields a machine equal to the original (up to
//! source spans, which the compiled Machine does not retain — except
//! the line-count statistics, which necessarily change with
//! formatting).

use marion_maril::{lexer::lex, parser::parse, pretty::print_description, Machine};

fn round_trip(name: &str, text: &str) {
    let desc = parse(&lex(text).unwrap()).unwrap();
    let printed = print_description(&desc);
    let reparsed =
        parse(&lex(&printed).unwrap()).unwrap_or_else(|e| panic!("{name}: reparse: {e}"));
    let m1 = marion_maril::sema::analyze(name, &desc).unwrap();
    let m2 = marion_maril::sema::analyze(name, &reparsed)
        .unwrap_or_else(|e| panic!("{name}: re-analysis: {e}"));
    // Compare the full compiled machines (stats carry line counts that
    // depend on formatting; both came through `analyze`, which leaves
    // line counts zero, so direct equality holds).
    assert_eq!(m1, m2, "{name}: round trip changed the compiled machine");
    // And the printed text must itself be a valid machine end to end.
    Machine::parse(name, &printed).unwrap();
}

#[test]
fn all_bundled_descriptions_round_trip() {
    round_trip("toyp", marion_machines::toyp::text());
    round_trip("r2000", marion_machines::r2000::text());
    round_trip("m88k", marion_machines::m88k::text());
    round_trip("i860", marion_machines::i860::text());
    round_trip("rs6000", marion_machines::rs6000::text());
}
