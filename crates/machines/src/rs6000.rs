//! An IBM RS/6000 (POWER) lookalike — the paper's §5 extension
//! exercise, carried out.
//!
//! > "Marion should be able to model multiple instruction issue on
//! > the IBM RS/6000 \[War90\] by giving each functional unit a
//! > separate set of resources. Since instructions using different
//! > functional units will cause no structural hazards, they could be
//! > scheduled on the same cycle."
//!
//! So: three functional units — branch (BRU), fixed point (FXU) and
//! floating point (FPU) — each with its own resources, letting up to
//! three instructions issue per cycle with no Maril feature beyond
//! what the paper already has. Other POWER-isms modelled: 64-bit
//! floating registers (doubles are single registers, no pairs), the
//! fused multiply-add (`fma` selected by pattern order before the
//! plain add), and **no branch delay slots** (the BRU resolves
//! branches ahead of the pipeline).

use crate::MachineSpec;
use marion_core::{CodegenError, EscapeCtx, EscapeRegistry, ImmVal, Operand};
use marion_maril::Machine;

/// The Maril source text.
pub fn text() -> &'static str {
    RS6000
}

/// Parses and compiles the description.
///
/// # Panics
///
/// Never in practice — the bundled text is tested.
pub fn load() -> Machine {
    match Machine::parse("rs6000", RS6000) {
        Ok(m) => m,
        Err(e) => panic!("{}", e.render("rs6000.maril", RS6000)),
    }
}

/// The machine plus its escapes.
pub fn spec() -> MachineSpec {
    MachineSpec {
        machine: load(),
        escapes: escapes(),
    }
}

/// RS/6000 escapes.
pub fn escapes() -> EscapeRegistry {
    let mut reg = EscapeRegistry::new();
    reg.register("li32", li32);
    reg.register("cvt8", cvt8);
    reg.register("cvt16", cvt16);
    reg
}

/// `*li32` — `addis` (shifted immediate) then `ori`.
fn li32(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let dest = ops[0];
    let Operand::Imm(imm) = ops[1] else {
        return Err(CodegenError::new(
            marion_core::Phase::Select,
            "li32 needs an immediate operand",
        ));
    };
    let hi = ctx.imm_high(imm);
    let lo = ctx.imm_low(imm);
    ctx.emit("addis", vec![dest, Operand::Imm(hi)])?;
    ctx.emit("ori", vec![dest, dest, Operand::Imm(lo)])?;
    Ok(())
}

fn cvt8(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 24)
}

fn cvt16(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 16)
}

fn narrow(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand], bits: i64) -> Result<(), CodegenError> {
    let sh = Operand::Imm(ImmVal::Const(bits));
    ctx.emit("slwi", vec![ops[0], ops[1], sh])?;
    ctx.emit("srawi", vec![ops[0], ops[0], sh])?;
    Ok(())
}

const RS6000: &str = r#"
/* IBM RS/6000 (POWER) lookalike: three functional units with disjoint
 * resources = superscalar issue; 64-bit fp registers; fused
 * multiply-add; no branch delay slots. */

declare {
    %reg r[0:31] (int);
    %reg f[0:31] (double, float);
    %resource BRU;                  /* branch unit */
    %resource FXU; FXM; FXD;        /* fixed point: pipe, multiplier, divider */
    %resource FPU1; FPU2; FPD;      /* floating point: two pipe stages, divider */
    %resource DCU;                  /* data cache unit */
    %def simm16 [-32768:32767];
    %def uimm16 [0:65535];
    %def uimm5 [0:31];
    %def imm32 [-2147483648:2147483647] +abs;
    %label rel [-33554432:33554431] +relative;
    %memory m[0:2147483647];
}

cwvm {
    %general (int) r;
    %general (double) f;
    %general (float) f;
    %allocable r[3:12];
    %allocable f[1:13];
    %calleesave r[8:12];
    %calleesave f[9:13];
    %sp r[1] +down;
    %fp r[31] +down;
    %retaddr r[2];                  /* the link register, as a GPR */
    %hard r[0] 0;
    %arg (int) r[3] 1;
    %arg (int) r[4] 2;
    %arg (int) r[5] 3;
    %arg (int) r[6] 4;
    %arg (double) f[1] 1;
    %arg (double) f[2] 2;
    %arg (float) f[3] 1;
    %result r[3] (int);
    %result f[1] (double);
    %result f[3] (float);
}

instr {
    /* ---------------- fixed point unit ---------------- */
    %instr add r, r, r (int) {$1 = $2 + $3;} [FXU;] (1,1,0)
    %instr addi r, r, #simm16 (int) {$1 = $2 + $3;} [FXU;] (1,1,0)
    %instr li r, r[0], #simm16 (int) {$1 = $3;} [FXU;] (1,1,0)
    %instr *li32 r, #imm32 (int) {$1 = $2;} [FXU;] (1,1,0)
    %instr addis r, #uimm16 (int) {$1 = $2 << 16;} [FXU;] (1,1,0)
    %instr subf r, r, r (int) {$1 = $2 - $3;} [FXU;] (1,1,0)
    %instr subfi r, r, #simm16 (int) {$1 = $2 - $3;} [FXU;] (1,1,0)
    %instr neg r, r (int) {$1 = -$2;} [FXU;] (1,1,0)
    %instr nand1 r, r (int) {$1 = ~$2;} [FXU;] (1,1,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [FXU;] (1,1,0)
    %instr or r, r, r (int) {$1 = $2 | $3;} [FXU;] (1,1,0)
    %instr ori r, r, #uimm16 (int) {$1 = $2 | $3;} [FXU;] (1,1,0)
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [FXU;] (1,1,0)
    %instr slw r, r, r (int) {$1 = $2 << $3;} [FXU;] (1,1,0)
    %instr slwi r, r, #uimm5 (int) {$1 = $2 << $3;} [FXU;] (1,1,0)
    %instr sraw r, r, r (int) {$1 = $2 >> $3;} [FXU;] (1,1,0)
    %instr srawi r, r, #uimm5 (int) {$1 = $2 >> $3;} [FXU;] (1,1,0)
    %instr mullw r, r, r (int) {$1 = $2 * $3;} [FXU; FXM; FXM; FXM;] (1,5,0)
    %instr divw r, r, r (int) {$1 = $2 / $3;} [FXU; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD;] (1,19,0)
    %instr remw r, r, r (int) {$1 = $2 % $3;} [FXU; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD; FXD;] (1,19,0)
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [FXU;] (1,1,0)

    /* ---------------- data cache unit ---------------- */
    %instr lwz r, r, #simm16 (int) {$1 = m[$2+$3];} [FXU; DCU;] (1,2,0)
    %instr stw r, r, #simm16 (int) {m[$2+$3] = $1;} [FXU; DCU;] (1,1,0)
    %instr lbz r, r, #simm16 (char) {$1 = m[$2+$3];} [FXU; DCU;] (1,2,0)
    %instr stb r, r, #simm16 (char) {m[$2+$3] = $1;} [FXU; DCU;] (1,1,0)
    %instr lhz r, r, #simm16 (short) {$1 = m[$2+$3];} [FXU; DCU;] (1,2,0)
    %instr sth r, r, #simm16 (short) {m[$2+$3] = $1;} [FXU; DCU;] (1,1,0)
    %instr lfd f, r, #simm16 (double) {$1 = m[$2+$3];} [FXU; DCU;] (1,2,0)
    %instr stfd f, r, #simm16 (double) {m[$2+$3] = $1;} [FXU; DCU;] (1,1,0)
    %instr lfs f, r, #simm16 (float) {$1 = m[$2+$3];} [FXU; DCU;] (1,2,0)
    %instr stfs f, r, #simm16 (float) {m[$2+$3] = $1;} [FXU; DCU;] (1,1,0)

    /* ---------------- floating point unit ---------------- */
    /* The fused multiply-adds come first: pattern order makes the
     * selector prefer them over separate multiply + add (POWER's
     * signature instruction). */
    %instr fma f, f, f, f (double) {$1 = $2 + $3 * $4;} [FPU1; FPU2;] (1,2,0)
    %instr fms f, f, f, f (double) {$1 = $2 - $3 * $4;} [FPU1; FPU2;] (1,2,0)
    %instr fadd f, f, f (double) {$1 = $2 + $3;} [FPU1; FPU2;] (1,2,0)
    %instr fsub f, f, f (double) {$1 = $2 - $3;} [FPU1; FPU2;] (1,2,0)
    %instr fneg f, f (double) {$1 = -$2;} [FPU1;] (1,1,0)
    %instr fmul f, f, f (double) {$1 = $2 * $3;} [FPU1; FPU2;] (1,2,0)
    %instr fdiv f, f, f (double) {$1 = $2 / $3;} [FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD;] (1,17,0)
    %instr fmas f, f, f, f (float) {$1 = $2 + $3 * $4;} [FPU1; FPU2;] (1,2,0)
    %instr fadds f, f, f (float) {$1 = $2 + $3;} [FPU1; FPU2;] (1,2,0)
    %instr fsubs f, f, f (float) {$1 = $2 - $3;} [FPU1; FPU2;] (1,2,0)
    %instr fnegs f, f (float) {$1 = -$2;} [FPU1;] (1,1,0)
    %instr fmuls f, f, f (float) {$1 = $2 * $3;} [FPU1; FPU2;] (1,2,0)
    %instr fdivs f, f, f (float) {$1 = $2 / $3;} [FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD;] (1,10,0)
    %instr fcmpu r, f, f (int) {$1 = $2 :: $3;} [FPU1; FPU2;] (1,2,0)
    %instr fcmps r, f, f (int) {$1 = $2 :: $3;} [FPU1; FPU2;] (1,2,0)

    /* ---------------- conversions ---------------- */
    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr fcfid f, r (double) {$1 = (double)$2;} [FPU1; FPU2;] (1,3,0)
    %instr fctiw r, f (int) {$1 = (int)$2;} [FPU1; FPU2;] (1,3,0)
    %instr fcfis f, r (float) {$1 = (float)$2;} [FPU1; FPU2;] (1,3,0)
    %instr fctis r, f (int) {$1 = (int)$2;} [FPU1; FPU2;] (1,3,0)
    %instr frsp f, f (float) {$1 = (float)$2;} [FPU1;] (1,1,0)
    %instr fexd f, f (double) {$1 = (double)$2;} [] (0,0,0)
    %instr *cvt8 r, r (char) {$1 = (char)$2;} [] (0,0,0)
    %instr *cvt16 r, r (short) {$1 = (short)$2;} [] (0,0,0)

    /* ------------- branch unit: no delay slots ------------- */
    %instr beq0 r, #rel {if ($1 == 0) goto $2;} [BRU;] (1,1,0)
    %instr bne0 r, #rel {if ($1 != 0) goto $2;} [BRU;] (1,1,0)
    %instr blt0 r, #rel {if ($1 < 0) goto $2;} [BRU;] (1,1,0)
    %instr ble0 r, #rel {if ($1 <= 0) goto $2;} [BRU;] (1,1,0)
    %instr bgt0 r, #rel {if ($1 > 0) goto $2;} [BRU;] (1,1,0)
    %instr bge0 r, #rel {if ($1 >= 0) goto $2;} [BRU;] (1,1,0)
    %instr b #rel {goto $1;} [BRU;] (1,1,0)
    %instr bl #rel {call $1;} [BRU;] (1,1,0)
    %instr blr {return;} [BRU;] (1,1,0)
    %instr nop {} [FXU;] (1,1,0)

    /* ---------------- moves ---------------- */
    %move mr r, r, r[0] {$1 = $2;} [FXU;] (1,1,0)
    %move fmr f, f (double) {$1 = $2;} [FPU1;] (1,1,0)

    /* ---------------- aux latencies ---------------- */
    %aux lfd : stfd (1.$1 == 2.$1) (3)
    %aux fadd : stfd (1.$1 == 2.$1) (3)
    %aux fma : stfd (1.$1 == 2.$1) (3)

    /* ---------------- glue ---------------- */
    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue f, f {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue f, f {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue f, f {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue f, f {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use marion_core::{Compiler, StrategyKind};

    #[test]
    fn parses_with_expected_shape() {
        let m = load();
        assert_eq!(m.stats().clocks, 0, "no EAPs on the RS/6000");
        assert_eq!(m.stats().classes, 0);
        let f = m.reg_class_by_name("f").unwrap();
        assert_eq!(m.reg_class(f).unit_width, 2, "64-bit fp registers");
        // fp and integer unit spaces are disjoint — no pairs.
        let r = m.reg_class_by_name("r").unwrap();
        assert!(!m.regs_overlap(
            marion_maril::PhysReg::new(f, 0),
            marion_maril::PhysReg::new(r, 0)
        ));
        let b = m.template_by_mnemonic("beq0").unwrap();
        assert_eq!(m.template(b).slots, 0, "no branch delay slots");
    }

    #[test]
    fn fma_selected_over_mul_plus_add() {
        let spec = spec();
        let src = "double a, b, c, d;
                   void f() { d = a + b * c; }";
        let module = marion_frontend::compile(src).unwrap();
        let compiler = Compiler::new(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Postpass,
        );
        let program = compiler.compile_module(&module).unwrap();
        let mnems: Vec<&str> = program
            .asm
            .func("f")
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| b.words.iter())
            .flat_map(|w| w.insts.iter())
            .map(|i| spec.machine.template(i.template).mnemonic.as_str())
            .collect();
        assert!(mnems.contains(&"fma"), "{mnems:?}");
        assert!(!mnems.contains(&"fmul"), "{mnems:?}");
        assert!(!mnems.contains(&"fadd"), "{mnems:?}");
    }

    #[test]
    fn functional_units_issue_in_parallel() {
        // An FXU op, an FPU op and a load have disjoint resources; the
        // scheduler should pack independent ones into the same cycle.
        let spec = spec();
        let src = "double x[16]; double s;
                   int f(int a, int b) {
                       s = s * 1.5;
                       return a + b;
                   }";
        let module = marion_frontend::compile(src).unwrap();
        let compiler = Compiler::new(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Postpass,
        );
        let program = compiler.compile_module(&module).unwrap();
        let packed = program
            .asm
            .func("f")
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| b.words.iter())
            .any(|w| w.insts.len() > 1);
        assert!(
            packed,
            "expected multi-unit issue:\n{}",
            program.render(&spec.machine)
        );
    }
}
