//! A MIPS R2000 lookalike.
//!
//! Models the traits the paper relies on: single issue, one
//! architectural branch delay slot, a delayed load (latency 2), an
//! autonomous multiply/divide unit that blocks for many cycles, and a
//! floating-point register file of 32-bit registers paired into
//! doubles.
//!
//! Deliberate modelling simplifications (documented in DESIGN.md):
//! `mul`/`div` stand in for `mult`+`mflo` sequences, `l.d`/`s.d` are
//! the standard assembler pseudos for paired word accesses, and
//! `cmp.d` writing an integer register condenses `c.cond.d` + the FP
//! condition bit read. Double moves go through the `*mov.d` escape
//! (two `mov.s` on the register halves), and 32-bit immediates and
//! addresses go through the `*li32`/`*la` escapes (`lui` + `ori`),
//! exactly the situations the paper gives for `*func`s.

use crate::MachineSpec;
use marion_core::{CodegenError, EscapeCtx, EscapeRegistry, ImmVal, Operand};
use marion_maril::Machine;

/// The Maril source text.
pub fn text() -> &'static str {
    R2000
}

/// Parses and compiles the description.
///
/// # Panics
///
/// Never in practice — the bundled text is tested.
pub fn load() -> Machine {
    match Machine::parse("r2000", R2000) {
        Ok(m) => m,
        Err(e) => panic!("{}", e.render("r2000.maril", R2000)),
    }
}

/// The machine plus its escapes.
pub fn spec() -> MachineSpec {
    MachineSpec {
        machine: load(),
        escapes: escapes(),
    }
}

/// R2000 escapes.
pub fn escapes() -> EscapeRegistry {
    let mut reg = EscapeRegistry::new();
    reg.register("li32", li32);
    reg.register("la", li32); // same lui/ori expansion
    reg.register("mov.d", movd);
    reg.register("cvt8", cvt8);
    reg.register("cvt16", cvt16);
    reg
}

/// `*li32` / `*la` — a 32-bit immediate or address splits into
/// `lui` (high half shifted) and `ori` (low half).
fn li32(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let dest = ops[0];
    let Operand::Imm(imm) = ops[1] else {
        return Err(CodegenError::new(
            marion_core::Phase::Select,
            "li32 needs an immediate operand",
        ));
    };
    let hi = ctx.imm_high(imm);
    let lo = ctx.imm_low(imm);
    ctx.emit("lui", vec![dest, Operand::Imm(hi)])?;
    ctx.emit("ori", vec![dest, dest, Operand::Imm(lo)])?;
    Ok(())
}

/// `*mov.d d, d` — two single moves between register halves.
fn movd(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    for half in 0..2u8 {
        let d = ctx.half(ops[0], half)?;
        let s = ctx.half(ops[1], half)?;
        ctx.emit("mov.s", vec![d, s])?;
    }
    Ok(())
}

fn cvt8(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 24)
}

fn cvt16(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 16)
}

fn narrow(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand], bits: i64) -> Result<(), CodegenError> {
    let sh = Operand::Imm(ImmVal::Const(bits));
    ctx.emit("sll", vec![ops[0], ops[1], sh])?;
    ctx.emit("sra", vec![ops[0], ops[0], sh])?;
    Ok(())
}

const R2000: &str = r#"
/* MIPS R2000 lookalike. Single issue; 1 branch delay slot; delayed
 * loads (latency 2); autonomous multiply/divide unit; paired FP regs. */

declare {
    %reg r[0:31] (int);
    %reg f[0:15] (float);
    %reg d[0:7] (double);
    %equiv f[0] d[0];
    %resource EX; MEM; MD;          /* execute, data access, mult/div unit */
    %resource FPA1; FPA2;           /* fp adder stages */
    %resource FPM1; FPM2; FPM3;     /* fp multiplier stages */
    %resource FPD;                  /* fp divider */
    %def const16 [-32768:32767];
    %def uconst16 [0:65535];
    %def uconst5 [0:31];
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-131072:131071] +relative;
    %label jlab [0:268435455];
    %memory m[0:2147483647];
}

cwvm {
    %general (int) r;
    %general (float) f;
    %general (double) d;
    %allocable r[2:23];
    %allocable f[0:15];
    %allocable d[0:7];
    %calleesave r[16:23];
    %calleesave d[4:5];
    %sp r[29] +down;
    %fp r[30] +down;
    %retaddr r[31];
    %hard r[0] 0;
    %arg (int) r[4] 1;
    %arg (int) r[5] 2;
    %arg (int) r[6] 3;
    %arg (int) r[7] 4;
    %arg (double) d[6] 1;
    %arg (double) d[7] 2;
    %arg (float) f[12] 1;
    %arg (float) f[14] 2;
    %result r[2] (int);
    %result d[0] (double);
    %result f[0] (float);
}

instr {
    /* ---- integer ALU (1-cycle, fully bypassed) ---- */
    %instr addu r, r, r (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    %instr addiu r, r, #const16 (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    %instr li r, r[0], #const16 (int) {$1 = $3;} [EX;] (1,1,0)
    %instr *li32 r, #const32 (int) {$1 = $2;} [EX;] (1,1,0)
    %instr subu r, r, r (int) {$1 = $2 - $3;} [EX;] (1,1,0)
    %instr subiu r, r, #const16 (int) {$1 = $2 - $3;} [EX;] (1,1,0)
    %instr negu r, r (int) {$1 = -$2;} [EX;] (1,1,0)
    %instr nor1 r, r (int) {$1 = ~$2;} [EX;] (1,1,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [EX;] (1,1,0)
    %instr andi r, r, #uconst16 (int) {$1 = $2 & $3;} [EX;] (1,1,0)
    %instr or r, r, r (int) {$1 = $2 | $3;} [EX;] (1,1,0)
    %instr ori r, r, #uconst16 (int) {$1 = $2 | $3;} [EX;] (1,1,0)
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [EX;] (1,1,0)
    %instr xori r, r, #uconst16 (int) {$1 = $2 ^ $3;} [EX;] (1,1,0)
    %instr sll r, r, #uconst5 (int) {$1 = $2 << $3;} [EX;] (1,1,0)
    %instr sllv r, r, r (int) {$1 = $2 << $3;} [EX;] (1,1,0)
    %instr sra r, r, #uconst5 (int) {$1 = $2 >> $3;} [EX;] (1,1,0)
    %instr srav r, r, r (int) {$1 = $2 >> $3;} [EX;] (1,1,0)
    %instr lui r, #uconst16 (int) {$1 = $2 << 16;} [EX;] (1,1,0)
    %instr slt r, r, r (int) {$1 = $2 < $3;} [EX;] (1,1,0)
    %instr slti r, r, #const16 (int) {$1 = $2 < $3;} [EX;] (1,1,0)

    /* ---- multiply/divide unit (mult+mflo / div+mflo pairs) ---- */
    %instr mul r, r, r (int) {$1 = $2 * $3;} [EX; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;] (1,12,0)
    %instr div r, r, r (int) {$1 = $2 / $3;} [EX; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;] (1,33,0)
    %instr rem r, r, r (int) {$1 = $2 % $3;} [EX; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;] (1,33,0)

    /* ---- memory (delayed loads: latency 2) ---- */
    %instr lw r, r, #const16 (int) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr sw r, r, #const16 (int) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr lb r, r, #const16 (char) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr sb r, r, #const16 (char) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr lh r, r, #const16 (short) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr sh r, r, #const16 (short) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr l.s f, r, #const16 (float) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr s.s f, r, #const16 (float) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr l.d d, r, #const16 (double) {$1 = m[$2+$3];} [EX; MEM; MEM;] (1,3,0)
    %instr s.d d, r, #const16 (double) {m[$2+$3] = $1;} [EX; MEM; MEM;] (1,2,0)

    /* ---- floating point ---- */
    %instr add.d d, d, d (double) {$1 = $2 + $3;} [FPA1; FPA2;] (1,2,0)
    %instr sub.d d, d, d (double) {$1 = $2 - $3;} [FPA1; FPA2;] (1,2,0)
    %instr neg.d d, d (double) {$1 = -$2;} [FPA1;] (1,1,0)
    %instr mul.d d, d, d (double) {$1 = $2 * $3;} [FPM1; FPM1; FPM2; FPM2; FPM3;] (1,5,0)
    %instr div.d d, d, d (double) {$1 = $2 / $3;} [FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD;] (1,19,0)
    %instr add.s f, f, f (float) {$1 = $2 + $3;} [FPA1; FPA2;] (1,2,0)
    %instr sub.s f, f, f (float) {$1 = $2 - $3;} [FPA1; FPA2;] (1,2,0)
    %instr neg.s f, f (float) {$1 = -$2;} [FPA1;] (1,1,0)
    %instr mul.s f, f, f (float) {$1 = $2 * $3;} [FPM1; FPM2; FPM3;] (1,4,0)
    %instr div.s f, f, f (float) {$1 = $2 / $3;} [FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD;] (1,12,0)
    %instr cmp.d r, d, d (int) {$1 = $2 :: $3;} [FPA1; FPA2;] (1,2,0)
    %instr cmp.s r, f, f (int) {$1 = $2 :: $3;} [FPA1; FPA2;] (1,2,0)

    /* ---- conversions ---- */
    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr cvt.d.w d, r (double) {$1 = (double)$2;} [FPA1; FPA2;] (1,3,0)
    %instr cvt.w.d r, d (int) {$1 = (int)$2;} [FPA1; FPA2;] (1,3,0)
    %instr cvt.s.w f, r (float) {$1 = (float)$2;} [FPA1; FPA2;] (1,3,0)
    %instr cvt.w.s r, f (int) {$1 = (int)$2;} [FPA1; FPA2;] (1,3,0)
    %instr cvt.d.s d, f (double) {$1 = (double)$2;} [FPA1;] (1,2,0)
    %instr cvt.s.d f, d (float) {$1 = (float)$2;} [FPA1;] (1,2,0)
    %instr *cvt8 r, r (char) {$1 = (char)$2;} [] (0,0,0)
    %instr *cvt16 r, r (short) {$1 = (short)$2;} [] (0,0,0)

    /* ---- control (1 delay slot) ---- */
    %instr beq r, r, #rlab {if ($1 == $2) goto $3;} [EX;] (1,2,1)
    %instr bne r, r, #rlab {if ($1 != $2) goto $3;} [EX;] (1,2,1)
    %instr bltz r, #rlab {if ($1 < 0) goto $2;} [EX;] (1,2,1)
    %instr blez r, #rlab {if ($1 <= 0) goto $2;} [EX;] (1,2,1)
    %instr bgtz r, #rlab {if ($1 > 0) goto $2;} [EX;] (1,2,1)
    %instr bgez r, #rlab {if ($1 >= 0) goto $2;} [EX;] (1,2,1)
    %instr j #jlab {goto $1;} [EX;] (1,2,1)
    %instr jal #jlab {call $1;} [EX;] (1,2,1)
    %instr jr.ra {return;} [EX;] (1,2,1)
    %instr nop {} [EX;] (1,1,0)

    /* ---- moves ---- */
    %move move r, r, r[0] {$1 = $2;} [EX;] (1,1,0)
    %move mov.s f, f (float) {$1 = $2;} [FPA1;] (1,1,0)
    %move *mov.d d, d {$1 = $2;} [] (0,0,0)

    /* ---- glue: < and <= through slt; doubles/floats through :: ---- */
    %glue r, r {($1 < $2) ==> (($1 < $2) != 0);}
    %glue r, r {($1 <= $2) ==> (($2 < $1) == 0);}
    %glue d, d {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue d, d {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue d, d {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue d, d {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue f, f {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue f, f {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue f, f {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue f, f {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use marion_maril::Ty;

    #[test]
    fn parses_with_expected_shape() {
        let m = load();
        assert_eq!(
            m.reg_class_by_name("r").map(|c| m.reg_class(c).count),
            Some(32)
        );
        assert_eq!(
            m.reg_class_by_name("d").map(|c| m.reg_class(c).count),
            Some(8)
        );
        assert_eq!(
            m.stats().aux_lats,
            0,
            "R2000 has no aux latencies (Table 1)"
        );
        assert_eq!(m.stats().clocks, 0);
        assert_eq!(m.stats().classes, 0);
        assert!(m.stats().funcs >= 4);
        assert_eq!(m.cwvm().arg_regs(Ty::Int).len(), 4);
    }

    #[test]
    fn doubles_pair_over_floats() {
        let m = load();
        let f = m.reg_class_by_name("f").unwrap();
        let d = m.reg_class_by_name("d").unwrap();
        assert!(m.regs_overlap(
            marion_maril::PhysReg::new(d, 3),
            marion_maril::PhysReg::new(f, 6)
        ));
        assert!(m.regs_overlap(
            marion_maril::PhysReg::new(d, 3),
            marion_maril::PhysReg::new(f, 7)
        ));
        assert!(!m.regs_overlap(
            marion_maril::PhysReg::new(d, 3),
            marion_maril::PhysReg::new(f, 8)
        ));
        // Integer registers are a separate unit space entirely.
        let r = m.reg_class_by_name("r").unwrap();
        assert!(!m.regs_overlap(
            marion_maril::PhysReg::new(d, 0),
            marion_maril::PhysReg::new(r, 0)
        ));
    }

    #[test]
    fn branch_has_delay_slot_and_load_is_delayed() {
        let m = load();
        let beq = m.template_by_mnemonic("beq").unwrap();
        assert_eq!(m.template(beq).slots, 1);
        let lw = m.template_by_mnemonic("lw").unwrap();
        assert_eq!(m.template(lw).latency, 2);
    }
}
