//! # marion-machines — ready-made Maril machine descriptions
//!
//! The paper's targets, as complete Maril descriptions plus their
//! `*func` escape functions:
//!
//! * [`toyp`] — the paper's running-example toy processor (Figures
//!   1–3), extended with the instructions a real compiler needs;
//! * [`r2000`] — a MIPS R2000 lookalike: delayed branches, delayed
//!   loads, a multiply/divide unit and a paired floating register
//!   file;
//! * [`m88k`] — a Motorola 88000 lookalike: scoreboarded latencies,
//!   doubles in general-register pairs and a shared write-back bus
//!   (the structural hazard the paper discusses);
//! * [`i860`] — an Intel i860 lookalike: dual issue modelled with
//!   disjoint resources, explicitly advanced floating-point add and
//!   multiply pipelines with clocks and temporal registers,
//!   sub-operation selection and packing classes for dual-operation
//!   long instruction words;
//! * [`rs6000`] — the paper's §5 future-work target, carried out: an
//!   IBM RS/6000 lookalike whose branch, fixed-point and floating
//!   units have disjoint resources (superscalar issue), with fused
//!   multiply-add and no delay slots.
//!
//! Each module exposes `text()` (the Maril source), `load()` (the
//! compiled [`Machine`]) and `escapes()` (its escape registry);
//! [`MachineSpec`] bundles them for driving a
//! [`marion_core::Compiler`].

pub mod i860;
pub mod m88k;
pub mod r2000;
pub mod rs6000;
pub mod toyp;

use marion_core::EscapeRegistry;
use marion_maril::Machine;

/// A machine bundled with its escapes, ready for compilation.
pub struct MachineSpec {
    /// The compiled description.
    pub machine: Machine,
    /// Its `*func` escape functions.
    pub escapes: EscapeRegistry,
}

impl std::fmt::Debug for MachineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineSpec")
            .field("machine", &self.machine.name())
            .finish()
    }
}

/// The paper's four machines.
pub const ALL: [&str; 4] = ["toyp", "r2000", "m88k", "i860"];

/// All bundled machines, including the RS/6000 extension (paper §5's
/// future-work target).
pub const EXTENDED: [&str; 5] = ["toyp", "r2000", "m88k", "i860", "rs6000"];

/// Loads a bundled machine by name.
///
/// # Panics
///
/// Panics if `name` is not one of [`ALL`] — the bundled descriptions
/// themselves are covered by tests and always parse.
pub fn load(name: &str) -> MachineSpec {
    match name {
        "toyp" => toyp::spec(),
        "r2000" => r2000::spec(),
        "m88k" => m88k::spec(),
        "i860" => i860::spec(),
        "rs6000" => rs6000::spec(),
        other => panic!("unknown machine `{other}` (expected one of {EXTENDED:?})"),
    }
}

/// Loads the paper's four machines.
pub fn load_all() -> Vec<MachineSpec> {
    ALL.iter().map(|n| load(n)).collect()
}

/// Loads every bundled machine including extensions.
pub fn load_extended() -> Vec<MachineSpec> {
    EXTENDED.iter().map(|n| load(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_descriptions_compile() {
        for spec in load_extended() {
            assert!(!spec.machine.templates().is_empty());
            assert!(
                spec.machine.nop_template().is_some(),
                "{} needs a nop",
                spec.machine.name()
            );
        }
    }

    #[test]
    fn every_machine_has_required_cwvm_entries() {
        for spec in load_extended() {
            let cwvm = spec.machine.cwvm();
            let name = spec.machine.name();
            assert!(cwvm.sp.is_some(), "{name}: no %sp");
            assert!(cwvm.fp.is_some(), "{name}: no %fp");
            assert!(cwvm.retaddr.is_some(), "{name}: no %retaddr");
            assert!(!cwvm.allocable.is_empty(), "{name}: no %allocable");
            assert!(
                cwvm.general_class(marion_maril::Ty::Int).is_some(),
                "{name}: no int class"
            );
            assert!(
                cwvm.general_class(marion_maril::Ty::Double).is_some(),
                "{name}: no double class"
            );
        }
    }

    #[test]
    fn every_machine_has_spill_templates() {
        for spec in load_extended() {
            let m = &spec.machine;
            for (_, class) in &m.cwvm().general {
                assert!(
                    m.spill_load(*class).is_some(),
                    "{}: no spill load for {}",
                    m.name(),
                    m.reg_class(*class).name
                );
                assert!(
                    m.spill_store(*class).is_some(),
                    "{}: no spill store for {}",
                    m.name(),
                    m.reg_class(*class).name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn unknown_machine_panics() {
        load("vax");
    }
}
