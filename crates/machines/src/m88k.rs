//! A Motorola 88000 (MC88100) lookalike.
//!
//! Models the 88100 traits the paper leans on: a scoreboarded single-
//! issue core, doubles living in *general register pairs* (`%equiv`
//! overlays at their heaviest), delayed branches with the `.n` annul
//! form (negative delay slots: executed only if taken), a data unit
//! with multi-cycle loads, floating point in a separate pipeline —
//! and a single shared *write-back bus*: every instruction needs `WB`
//! on its final cycle, so differently-latencied operations collide
//! structurally, which is exactly the §5 discussion point ("the 88000
//! uses a priority scheme for its write-back bus ... instead, we give
//! priority to the instruction scheduled first").
//!
//! Single-precision floats are computed in double registers and
//! rounded on store/convert (documented substitution).

use crate::MachineSpec;
use marion_core::{CodegenError, EscapeCtx, EscapeRegistry, ImmVal, Operand};
use marion_maril::Machine;

/// The Maril source text.
pub fn text() -> &'static str {
    M88K
}

/// Parses and compiles the description.
///
/// # Panics
///
/// Never in practice — the bundled text is tested.
pub fn load() -> Machine {
    match Machine::parse("m88k", M88K) {
        Ok(m) => m,
        Err(e) => panic!("{}", e.render("m88k.maril", M88K)),
    }
}

/// The machine plus its escapes.
pub fn spec() -> MachineSpec {
    MachineSpec {
        machine: load(),
        escapes: escapes(),
    }
}

/// M88K escapes.
pub fn escapes() -> EscapeRegistry {
    let mut reg = EscapeRegistry::new();
    reg.register("movd", movd);
    reg.register("li32", li32);
    reg.register("cvt8", cvt8);
    reg.register("cvt16", cvt16);
    reg
}

/// `*movd d, d` — doubles live in general register pairs; a double
/// move is two integer moves on the halves.
fn movd(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let r0 = zero_reg(ctx);
    for half in 0..2u8 {
        let d = ctx.half(ops[0], half)?;
        let s = ctx.half(ops[1], half)?;
        ctx.emit_labelled("s.mov", vec![d, s, r0])?;
    }
    Ok(())
}

/// `*li32` — `or.u` (high) then `or` (low).
fn li32(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let dest = ops[0];
    let Operand::Imm(imm) = ops[1] else {
        return Err(CodegenError::new(
            marion_core::Phase::Select,
            "li32 needs an immediate operand",
        ));
    };
    let hi = ctx.imm_high(imm);
    let lo = ctx.imm_low(imm);
    ctx.emit("or.u", vec![dest, Operand::Imm(hi)])?;
    ctx.emit("or.l", vec![dest, dest, Operand::Imm(lo)])?;
    Ok(())
}

fn cvt8(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 24)
}

fn cvt16(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 16)
}

fn narrow(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand], bits: i64) -> Result<(), CodegenError> {
    let sh = Operand::Imm(ImmVal::Const(bits));
    ctx.emit("mak", vec![ops[0], ops[1], sh])?;
    ctx.emit("ext", vec![ops[0], ops[0], sh])?;
    Ok(())
}

fn zero_reg(ctx: &EscapeCtx<'_, '_>) -> Operand {
    let class = ctx.machine().reg_class_by_name("r").expect("class r");
    Operand::Phys(marion_maril::PhysReg::new(class, 0))
}

const M88K: &str = r#"
/* Motorola 88000 (MC88100) lookalike. Scoreboarded single issue;
 * doubles in general register pairs; shared write-back bus WB. */

declare {
    %reg r[0:31] (int);
    %reg d[0:15] (double);
    %equiv r[0] d[0];
    %resource EX; DM1; DM2;         /* integer execute; data unit */
    %resource FP1; FP2; FP3; FP4; FP5;  /* fp pipeline */
    %resource WB;                   /* the shared write-back bus */
    %def const16 [-32768:32767];
    %def uconst16 [0:65535];
    %def uconst5 [0:31];
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-65536:65535] +relative;
    %memory m[0:2147483647];
}

cwvm {
    %general (int) r;
    %general (double) d;
    %general (float) d;
    %allocable r[2:25];
    %allocable d[1:12];
    %calleesave r[14:25];
    %calleesave d[7:12];
    %sp r[31] +down;
    %fp r[30] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %arg (int) r[4] 3;
    %arg (int) r[5] 4;
    %arg (double) d[3] 1;       /* r6:r7 */
    %arg (double) d[4] 2;       /* r8:r9 */
    %result r[2] (int);
    %result d[1] (double);
}

instr {
    /* ---- integer unit (WB on the final cycle of everything) ---- */
    %instr add r, r, r (int) {$1 = $2 + $3;} [EX; WB;] (1,1,0)
    %instr addi r, r, #const16 (int) {$1 = $2 + $3;} [EX; WB;] (1,1,0)
    %instr li r, r[0], #const16 (int) {$1 = $3;} [EX; WB;] (1,1,0)
    %instr *li32 r, #const32 (int) {$1 = $2;} [EX; WB;] (1,1,0)
    %instr or.u r, #uconst16 (int) {$1 = $2 << 16;} [EX; WB;] (1,1,0)
    %instr or.l r, r, #uconst16 (int) {$1 = $2 | $3;} [EX; WB;] (1,1,0)
    %instr sub r, r, r (int) {$1 = $2 - $3;} [EX; WB;] (1,1,0)
    %instr subi r, r, #const16 (int) {$1 = $2 - $3;} [EX; WB;] (1,1,0)
    %instr neg r, r (int) {$1 = -$2;} [EX; WB;] (1,1,0)
    %instr not r, r (int) {$1 = ~$2;} [EX; WB;] (1,1,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [EX; WB;] (1,1,0)
    %instr or r, r, r (int) {$1 = $2 | $3;} [EX; WB;] (1,1,0)
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [EX; WB;] (1,1,0)
    %instr shl r, r, r (int) {$1 = $2 << $3;} [EX; WB;] (1,1,0)
    %instr mak r, r, #uconst5 (int) {$1 = $2 << $3;} [EX; WB;] (1,1,0)
    %instr shr r, r, r (int) {$1 = $2 >> $3;} [EX; WB;] (1,1,0)
    %instr ext r, r, #uconst5 (int) {$1 = $2 >> $3;} [EX; WB;] (1,1,0)
    %instr mul r, r, r (int) {$1 = $2 * $3;} [EX; EX; EX; WB;] (1,4,0)
    %instr div r, r, r (int) {$1 = $2 / $3;} [EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; WB;] (1,38,0)
    %instr rem r, r, r (int) {$1 = $2 % $3;} [EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; EX; WB;] (1,38,0)
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [EX; WB;] (1,1,0)

    /* ---- data unit (loads: latency 3) ---- */
    %instr ld r, r, #const16 (int) {$1 = m[$2+$3];} [DM1; DM2; WB;] (1,3,0)
    %instr st r, r, #const16 (int) {m[$2+$3] = $1;} [DM1; DM2;] (1,1,0)
    %instr ld.b r, r, #const16 (char) {$1 = m[$2+$3];} [DM1; DM2; WB;] (1,3,0)
    %instr st.b r, r, #const16 (char) {m[$2+$3] = $1;} [DM1; DM2;] (1,1,0)
    %instr ld.h r, r, #const16 (short) {$1 = m[$2+$3];} [DM1; DM2; WB;] (1,3,0)
    %instr st.h r, r, #const16 (short) {m[$2+$3] = $1;} [DM1; DM2;] (1,1,0)
    %instr ld.d d, r, #const16 (double) {$1 = m[$2+$3];} [DM1; DM2; DM2; WB;] (1,3,0)
    %instr st.d d, r, #const16 (double) {m[$2+$3] = $1;} [DM1; DM2; DM2;] (1,2,0)
    %instr ld.s d, r, #const16 (float) {$1 = m[$2+$3];} [DM1; DM2; WB;] (1,3,0)
    %instr st.s d, r, #const16 (float) {m[$2+$3] = $1;} [DM1; DM2;] (1,1,0)

    /* ---- floating point (doubles and floats in r-pairs) ---- */
    %instr fadd.d d, d, d (double) {$1 = $2 + $3;} [FP1; FP2; FP3; FP4; FP5,WB;] (1,5,0)
    %instr fsub.d d, d, d (double) {$1 = $2 - $3;} [FP1; FP2; FP3; FP4; FP5,WB;] (1,5,0)
    %instr fneg.d d, d (double) {$1 = -$2;} [FP1; FP2,WB;] (1,2,0)
    %instr fmul.d d, d, d (double) {$1 = $2 * $3;} [FP1; FP1; FP2; FP3; FP4; FP5,WB;] (1,6,0)
    %instr fdiv.d d, d, d (double) {$1 = $2 / $3;} [FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP2; FP3; FP4; FP5,WB;] (1,30,0)
    %instr fadd.s d, d, d (float) {$1 = $2 + $3;} [FP1; FP2; FP3; FP4,WB;] (1,4,0)
    %instr fsub.s d, d, d (float) {$1 = $2 - $3;} [FP1; FP2; FP3; FP4,WB;] (1,4,0)
    %instr fneg.s d, d (float) {$1 = -$2;} [FP1; FP2,WB;] (1,2,0)
    %instr fmul.s d, d, d (float) {$1 = $2 * $3;} [FP1; FP2; FP3; FP4,WB;] (1,4,0)
    %instr fdiv.s d, d, d (float) {$1 = $2 / $3;} [FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP2; FP3,WB;] (1,20,0)
    %instr fcmp r, d, d (int) {$1 = $2 :: $3;} [FP1; FP2; FP3,WB;] (1,3,0)
    %instr fcmp.s r, d, d (int) {$1 = $2 :: $3;} [FP1; FP2; FP3,WB;] (1,3,0)

    /* ---- conversions ---- */
    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr flt.d d, r (double) {$1 = (double)$2;} [FP1; FP2; FP3,WB;] (1,3,0)
    %instr int.d r, d (int) {$1 = (int)$2;} [FP1; FP2; FP3,WB;] (1,3,0)
    %instr flt.s d, r (float) {$1 = (float)$2;} [FP1; FP2; FP3,WB;] (1,3,0)
    %instr int.s r, d (int) {$1 = (int)$2;} [FP1; FP2; FP3,WB;] (1,3,0)
    %instr fcvt.ds d, d (double) {$1 = (double)$2;} [FP1; FP2,WB;] (1,2,0)
    %instr fcvt.sd d, d (float) {$1 = (float)$2;} [FP1; FP2,WB;] (1,2,0)
    %instr *cvt8 r, r (char) {$1 = (char)$2;} [] (0,0,0)
    %instr *cvt16 r, r (short) {$1 = (short)$2;} [] (0,0,0)

    /* ---- control: bcnd.n forms annul the slot when not taken ---- */
    %instr beq0.n r, #rlab {if ($1 == 0) goto $2;} [EX;] (1,2,-1)
    %instr bne0.n r, #rlab {if ($1 != 0) goto $2;} [EX;] (1,2,-1)
    %instr blt0.n r, #rlab {if ($1 < 0) goto $2;} [EX;] (1,2,-1)
    %instr ble0.n r, #rlab {if ($1 <= 0) goto $2;} [EX;] (1,2,-1)
    %instr bgt0.n r, #rlab {if ($1 > 0) goto $2;} [EX;] (1,2,-1)
    %instr bge0.n r, #rlab {if ($1 >= 0) goto $2;} [EX;] (1,2,-1)
    %instr br.n #rlab {goto $1;} [EX;] (1,1,1)
    %instr bsr.n #rlab {call $1;} [EX;] (1,1,1)
    %instr jmp.r1 {return;} [EX;] (1,1,1)
    %instr nop {} [EX;] (1,1,0)

    /* ---- moves ---- */
    %move [s.mov] or2 r, r, r[0] {$1 = $2;} [EX; WB;] (1,1,0)
    %move *movd d, d {$1 = $2;} [] (0,0,0)

    /* ---- aux latencies (6, as Table 1 reports) ---- */
    %aux fadd.d : st.d (1.$1 == 2.$1) (6)
    %aux fmul.d : st.d (1.$1 == 2.$1) (7)
    %aux fadd.s : st.s (1.$1 == 2.$1) (5)
    %aux fmul.s : st.s (1.$1 == 2.$1) (5)
    %aux ld : st (1.$1 == 2.$1) (4)
    %aux ld.d : st.d (1.$1 == 2.$1) (4)

    /* ---- glue: all comparisons go through the generic compare ---- */
    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue d, d {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue d, d {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue d, d {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue d, d {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_expected_shape() {
        let m = load();
        assert_eq!(m.stats().aux_lats, 6, "Table 1: 88000 has 6 aux lats");
        assert_eq!(m.stats().clocks, 0);
        assert_eq!(m.stats().elements, 0);
        assert_eq!(m.stats().glue_xforms, 8);
    }

    #[test]
    fn doubles_pair_over_integer_registers() {
        let m = load();
        let r = m.reg_class_by_name("r").unwrap();
        let d = m.reg_class_by_name("d").unwrap();
        assert!(m.regs_overlap(
            marion_maril::PhysReg::new(d, 3),
            marion_maril::PhysReg::new(r, 6)
        ));
        assert!(m.regs_overlap(
            marion_maril::PhysReg::new(d, 3),
            marion_maril::PhysReg::new(r, 7)
        ));
    }

    #[test]
    fn annulled_branch_slots_are_negative() {
        let m = load();
        let b = m.template_by_mnemonic("beq0.n").unwrap();
        assert_eq!(m.template(b).slots, -1);
    }

    #[test]
    fn write_back_bus_is_shared() {
        let m = load();
        let wb = m
            .resources()
            .iter()
            .position(|r| r == "WB")
            .expect("WB resource") as u32;
        let add = m.template_by_mnemonic("add").unwrap();
        let fadd = m.template_by_mnemonic("fadd.d").unwrap();
        assert!(m.template(add).rsrc.last().unwrap().contains(wb));
        assert!(m.template(fadd).rsrc.last().unwrap().contains(wb));
    }
}
