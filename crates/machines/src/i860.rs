//! An Intel i860 lookalike — the paper's most challenging target.
//!
//! Models the features that forced Maril's *classes* and *temporal
//! scheduling* (paper §4.5–4.6):
//!
//! * **dual issue** — one core (integer) instruction and one
//!   floating-point long instruction word per cycle, expressed purely
//!   through disjoint resource sets (Figure 4);
//! * **explicitly advanced pipelines** — the double-precision add and
//!   multiply units are EAPs: each advances only when one of its
//!   sub-operations issues. The pipelines appear as *sub-operation*
//!   instructions (`M1 M2 M3 MWB`, `A1 A2 A3 AWB`, Figure 5) over
//!   temporal registers `m1..m3` / `a1..a3` based on clocks `clk_m` /
//!   `clk_a`;
//! * **chaining** — `A1m` launches the adder with the multiplier's
//!   output `m3` as an input (the special `T` register path), and
//!   `M1a` feeds the adder output back into the multiplier, so
//!   dual-operation instructions like the paper's Figure 7 schedule;
//! * **irregular packing** — each sub-operation carries a packing
//!   class over long-instruction-word *elements* (`pfadd`, `pfmul`,
//!   `m12apm`, ...); two sub-operations pack only if their classes
//!   intersect. The bundled set is a representative scale-down of the
//!   paper's 140 elements / 67 classes.
//!
//! Single-precision arithmetic is modelled as ordinary pipelined
//! instructions (the real machine runs the same units in three-stage
//! mode) and an integer `div`/`rem` instruction stands in for the
//! machine's software division (documented substitutions).

use crate::MachineSpec;
use marion_core::{CodegenError, EscapeCtx, EscapeRegistry, ImmVal, Operand};
use marion_maril::Machine;

/// The Maril source text.
pub fn text() -> &'static str {
    I860
}

/// Parses and compiles the description.
///
/// # Panics
///
/// Never in practice — the bundled text is tested.
pub fn load() -> Machine {
    match Machine::parse("i860", I860) {
        Ok(m) => m,
        Err(e) => panic!("{}", e.render("i860.maril", I860)),
    }
}

/// The machine plus its escapes.
pub fn spec() -> MachineSpec {
    MachineSpec {
        machine: load(),
        escapes: escapes(),
    }
}

/// i860 escapes.
pub fn escapes() -> EscapeRegistry {
    let mut reg = EscapeRegistry::new();
    reg.register("li32", li32);
    reg.register("fmov.d", fmovd);
    reg.register("cvt8", cvt8);
    reg.register("cvt16", cvt16);
    reg
}

/// `*li32` — `orh` (high) then `or` (low).
fn li32(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let dest = ops[0];
    let Operand::Imm(imm) = ops[1] else {
        return Err(CodegenError::new(
            marion_core::Phase::Select,
            "li32 needs an immediate operand",
        ));
    };
    let hi = ctx.imm_high(imm);
    let lo = ctx.imm_low(imm);
    ctx.emit("orh", vec![dest, Operand::Imm(hi)])?;
    ctx.emit("or.l", vec![dest, dest, Operand::Imm(lo)])?;
    Ok(())
}

/// `*fmov.d d, d` — two `fmov.s` on the register halves (Figure 4's
/// single-precision move).
fn fmovd(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    for half in 0..2u8 {
        let d = ctx.half(ops[0], half)?;
        let s = ctx.half(ops[1], half)?;
        ctx.emit("fmov.s", vec![d, s])?;
    }
    Ok(())
}

fn cvt8(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 24)
}

fn cvt16(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 16)
}

fn narrow(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand], bits: i64) -> Result<(), CodegenError> {
    let sh = Operand::Imm(ImmVal::Const(bits));
    ctx.emit("shl.i", vec![ops[0], ops[1], sh])?;
    ctx.emit("shra.i", vec![ops[0], ops[0], sh])?;
    Ok(())
}

const I860: &str = r#"
/* Intel i860 lookalike: dual issue via disjoint core/fp resources;
 * explicitly advanced double-precision add and multiply pipelines
 * (clocks clk_a, clk_m); packing classes over long-word elements. */

declare {
    %reg r[0:31] (int);
    %reg f[0:31] (float);
    %reg d[0:15] (double);
    %equiv f[0] d[0];

    /* core (integer) unit */
    %resource CE; CM;
    /* fp long-instruction-word fields (Fig. 5's view) */
    %resource RA1; RA2; RA3;       /* adder stages */
    %resource RM1; RM2; RM3;       /* multiplier stages */
    %resource RFWB;                /* fp write-back bus */
    %resource RGR;                 /* fp graphics/single unit */
    %resource RDIV;

    /* explicitly advanced pipelines */
    %clock clk_a;
    %clock clk_m;
    %reg a1 (double; clk_a) +temporal;
    %reg a2 (double; clk_a) +temporal;
    %reg a3 (double; clk_a) +temporal;
    %reg m1 (double; clk_m) +temporal;
    %reg m2 (double; clk_m) +temporal;
    %reg m3 (double; clk_m) +temporal;

    /* long-instruction-word elements (scaled-down set) */
    %element pfadd;     %element pfsub;    %element pfmul;
    %element pfamov;    %element m12apm;   %element m12asm;
    %element a12pm;     %element r2p1;     %element r2s1;
    %element i2ap1;     %element mm12mpm;  %element pfiadd;

    /* packing classes: the words each sub-operation may appear in */
    %class cls_a1   { pfadd, m12apm, a12pm, r2p1, i2ap1 };
    %class cls_s1   { pfsub, m12asm, r2s1 };
    %class cls_a1m  { m12apm, a12pm, mm12mpm };
    %class cls_adder { pfadd, pfsub, pfamov, m12apm, m12asm, a12pm, r2p1, r2s1, i2ap1, mm12mpm };
    %class cls_m1   { pfmul, m12apm, m12asm, mm12mpm };
    %class cls_m1a  { m12apm, mm12mpm };
    %class cls_muler { pfmul, m12apm, m12asm, a12pm, mm12mpm };
    %class cls_wb   { pfadd, pfsub, pfmul, pfamov, m12apm, m12asm, a12pm, r2p1, r2s1, i2ap1, mm12mpm };

    %def const16 [-32768:32767];
    %def uconst16 [0:65535];
    %def uconst5 [0:31];
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-65536:65535] +relative;
    %memory m[0:2147483647];
}

cwvm {
    %general (int) r;
    %general (float) f;
    %general (double) d;
    %allocable r[3:27];
    %allocable f[2:31];
    %allocable d[1:15];
    %calleesave r[4:15];    /* real i860 convention: r4-r15 preserved */
    %calleesave d[6:7];     /* f12-f15; clear of args (d4,d5) and
                             * results (d2, f2) */
    %sp r[2] +down;
    %fp r[28] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[16] 1;
    %arg (int) r[17] 2;
    %arg (int) r[18] 3;
    %arg (int) r[19] 4;
    %arg (double) d[4] 1;
    %arg (double) d[5] 2;
    %arg (float) f[2] 1;
    %result r[16] (int);
    %result d[2] (double);
    %result f[2] (float);
}

instr {
    /* ================= core (integer) unit ================= */
    %instr adds r, r, r (int) {$1 = $2 + $3;} [CE;] (1,1,0)
    %instr adds.i r, r, #const16 (int) {$1 = $2 + $3;} [CE;] (1,1,0)
    %instr li r, r[0], #const16 (int) {$1 = $3;} [CE;] (1,1,0)
    %instr *li32 r, #const32 (int) {$1 = $2;} [CE;] (1,1,0)
    %instr orh r, #uconst16 (int) {$1 = $2 << 16;} [CE;] (1,1,0)
    %instr or.l r, r, #uconst16 (int) {$1 = $2 | $3;} [CE;] (1,1,0)
    %instr subs r, r, r (int) {$1 = $2 - $3;} [CE;] (1,1,0)
    %instr subs.i r, r, #const16 (int) {$1 = $2 - $3;} [CE;] (1,1,0)
    %instr negs r, r (int) {$1 = -$2;} [CE;] (1,1,0)
    %instr nots r, r (int) {$1 = ~$2;} [CE;] (1,1,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [CE;] (1,1,0)
    %instr or r, r, r (int) {$1 = $2 | $3;} [CE;] (1,1,0)
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [CE;] (1,1,0)
    %instr shl r, r, r (int) {$1 = $2 << $3;} [CE;] (1,1,0)
    %instr shl.i r, r, #uconst5 (int) {$1 = $2 << $3;} [CE;] (1,1,0)
    %instr shra r, r, r (int) {$1 = $2 >> $3;} [CE;] (1,1,0)
    %instr shra.i r, r, #uconst5 (int) {$1 = $2 >> $3;} [CE;] (1,1,0)
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [CE;] (1,1,0)
    %instr mul r, r, r (int) {$1 = $2 * $3;} [CE; CE; CE; CE; CE; CE; CE; CE; CE;] (1,10,0)
    %instr div r, r, r (int) {$1 = $2 / $3;} [CE; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV;] (1,40,0)
    %instr rem r, r, r (int) {$1 = $2 % $3;} [CE; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV;] (1,40,0)

    /* ---- memory (loads through the core unit) ---- */
    %instr ld.l r, r, #const16 (int) {$1 = m[$2+$3];} [CE; CM;] (1,2,0)
    %instr st.l r, r, #const16 (int) {m[$2+$3] = $1;} [CE; CM;] (1,1,0)
    %instr ld.b r, r, #const16 (char) {$1 = m[$2+$3];} [CE; CM;] (1,2,0)
    %instr st.b r, r, #const16 (char) {m[$2+$3] = $1;} [CE; CM;] (1,1,0)
    %instr ld.sh r, r, #const16 (short) {$1 = m[$2+$3];} [CE; CM;] (1,2,0)
    %instr st.sh r, r, #const16 (short) {m[$2+$3] = $1;} [CE; CM;] (1,1,0)
    %instr fld.d d, r, #const16 (double) {$1 = m[$2+$3];} [CE; CM; CM;] (1,3,0)
    %instr fst.d d, r, #const16 (double) {m[$2+$3] = $1;} [CE; CM; CM;] (1,2,0)
    %instr fld.s f, r, #const16 (float) {$1 = m[$2+$3];} [CE; CM;] (1,2,0)
    %instr fst.s f, r, #const16 (float) {m[$2+$3] = $1;} [CE; CM;] (1,1,0)

    /* ============ double precision: EAP sub-operations ============ */
    /* The adder pipe. A1m/A1ma chain the multiplier output in. */
    %instr A1m d (double; clk_a) <cls_a1m> {a1 = m3 + $1;} [RA1;] (1,1,0)
    %instr A1ma (double; clk_a) <cls_a1m> {a1 = m3 + a3;} [RA1;] (1,1,0)
    %instr A1 d, d (double; clk_a) <cls_a1> {a1 = $1 + $2;} [RA1;] (1,1,0)
    %instr S1m d (double; clk_a) <cls_a1m> {a1 = m3 - $1;} [RA1;] (1,1,0)
    %instr S1 d, d (double; clk_a) <cls_s1> {a1 = $1 - $2;} [RA1;] (1,1,0)
    %instr A2 (double; clk_a) <cls_adder> {a2 = a1;} [RA2;] (1,1,0)
    %instr A3 (double; clk_a) <cls_adder> {a3 = a2;} [RA3;] (1,1,0)
    %instr AWB d (double; clk_a) <cls_wb> {$1 = a3;} [RFWB;] (1,1,0)
    /* The multiplier pipe. M1a chains the adder output in. */
    %instr M1a d (double; clk_m) <cls_m1a> {m1 = a3 * $1;} [RM1;] (1,1,0)
    %instr M1 d, d (double; clk_m) <cls_m1> {m1 = $1 * $2;} [RM1;] (1,1,0)
    %instr M2 (double; clk_m) <cls_muler> {m2 = m1;} [RM2;] (1,1,0)
    %instr M3 (double; clk_m) <cls_muler> {m3 = m2;} [RM3;] (1,1,0)
    %instr MWB d (double; clk_m) <cls_wb> {$1 = m3;} [RFWB;] (1,1,0)
    /* Divide is software on the real machine; modelled directly. */
    %instr ddiv d, d, d (double) {$1 = $2 / $3;} [RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV;] (1,38,0)
    %instr dneg d, d (double) {$1 = -$2;} [RGR;] (1,2,0)

    /* ---- single precision (three-stage mode, modelled plainly) ---- */
    %instr fadd.ss f, f, f (float) {$1 = $2 + $3;} [RGR; RGR; RGR;] (1,3,0)
    %instr fsub.ss f, f, f (float) {$1 = $2 - $3;} [RGR; RGR; RGR;] (1,3,0)
    %instr fneg.ss f, f (float) {$1 = -$2;} [RGR;] (1,1,0)
    %instr fmul.ss f, f, f (float) {$1 = $2 * $3;} [RGR; RGR; RGR;] (1,3,0)
    %instr fdiv.ss f, f, f (float) {$1 = $2 / $3;} [RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV; RDIV;] (1,22,0)
    %instr fcmp.dd r, d, d (int) {$1 = $2 :: $3;} [RGR; RGR;] (1,3,0)
    %instr fcmp.ss r, f, f (int) {$1 = $2 :: $3;} [RGR; RGR;] (1,3,0)

    /* ---- conversions ---- */
    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr fix.dd r, d (int) {$1 = (int)$2;} [RGR; RGR;] (1,3,0)
    %instr flt.dd d, r (double) {$1 = (double)$2;} [RGR; RGR;] (1,3,0)
    %instr fix.ss r, f (int) {$1 = (int)$2;} [RGR; RGR;] (1,3,0)
    %instr flt.ss f, r (float) {$1 = (float)$2;} [RGR; RGR;] (1,3,0)
    %instr fmov.ds d, f (double) {$1 = (double)$2;} [RGR;] (1,2,0)
    %instr fmov.sd f, d (float) {$1 = (float)$2;} [RGR;] (1,2,0)
    %instr *cvt8 r, r (char) {$1 = (char)$2;} [] (0,0,0)
    %instr *cvt16 r, r (short) {$1 = (short)$2;} [] (0,0,0)

    /* ---- control (core unit, 1 delay slot) ---- */
    %instr bte0 r, #rlab {if ($1 == 0) goto $2;} [CE;] (1,2,1)
    %instr btne0 r, #rlab {if ($1 != 0) goto $2;} [CE;] (1,2,1)
    %instr blt0 r, #rlab {if ($1 < 0) goto $2;} [CE;] (1,2,1)
    %instr ble0 r, #rlab {if ($1 <= 0) goto $2;} [CE;] (1,2,1)
    %instr bgt0 r, #rlab {if ($1 > 0) goto $2;} [CE;] (1,2,1)
    %instr bge0 r, #rlab {if ($1 >= 0) goto $2;} [CE;] (1,2,1)
    %instr br #rlab {goto $1;} [CE;] (1,1,1)
    %instr call #rlab {call $1;} [CE;] (1,1,1)
    %instr bri.r1 {return;} [CE;] (1,1,1)
    %instr nop {} [CE;] (1,1,0)

    /* ---- moves ---- */
    %move mov r, r, r[0] {$1 = $2;} [CE;] (1,1,0)
    %move fmov.s f, f (float) {$1 = $2;} [RGR;] (1,1,0)
    %move *fmov.d d, d {$1 = $2;} [] (0,0,0)

    /* ---- aux latencies (12, matching Table 1's count) ---- */
    %aux fld.d : fst.d (1.$1 == 2.$1) (4)
    %aux fld.s : fst.s (1.$1 == 2.$1) (3)
    %aux ld.l : st.l (1.$1 == 2.$1) (3)
    %aux AWB : fst.d (1.$1 == 2.$1) (2)
    %aux MWB : fst.d (1.$1 == 2.$1) (2)
    %aux AWB : A1 (1.$1 == 2.$1) (2)
    %aux AWB : S1 (1.$1 == 2.$1) (2)
    %aux MWB : M1 (1.$1 == 2.$1) (2)
    %aux AWB : M1 (1.$1 == 2.$1) (2)
    %aux MWB : A1 (1.$1 == 2.$1) (2)
    %aux fadd.ss : fst.s (1.$1 == 2.$1) (4)
    %aux fmul.ss : fst.s (1.$1 == 2.$1) (4)

    /* ---- glue: comparisons through the generic compare ---- */
    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue d, d {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue d, d {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue d, d {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue d, d {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue f, f {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue f, f {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue f, f {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue f, f {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_expected_shape() {
        let m = load();
        assert_eq!(m.stats().clocks, 2);
        assert_eq!(m.stats().elements, 12);
        assert_eq!(m.stats().classes, 8);
        assert_eq!(m.stats().aux_lats, 12, "Table 1: i860 has 12 aux lats");
        assert_eq!(m.temporals().len(), 6);
    }

    #[test]
    fn sub_operations_affect_their_clocks() {
        let m = load();
        let m1 = m.template_by_mnemonic("M1").unwrap();
        let a1 = m.template_by_mnemonic("A1").unwrap();
        let clk_a = 0u32; // declared first
        let clk_m = 1u32;
        assert_eq!(m.template(a1).affects_clock.map(|c| c.0), Some(clk_a));
        assert_eq!(m.template(m1).affects_clock.map(|c| c.0), Some(clk_m));
    }

    #[test]
    fn dual_op_packing_classes_intersect() {
        let m = load();
        let a1 = m.template_by_mnemonic("A1").unwrap();
        let m1 = m.template_by_mnemonic("M1").unwrap();
        let ca = m.class(m.template(a1).class.unwrap()).elements;
        let cm = m.class(m.template(m1).class.unwrap()).elements;
        assert!(
            ca.intersects(&cm),
            "A1 and M1 must pack into a dual-operation word (m12apm)"
        );
        // But two plain adds never pack with a subtract word.
        let s1 = m.template_by_mnemonic("S1").unwrap();
        let cs = m.class(m.template(s1).class.unwrap()).elements;
        assert!(!ca.intersects(&cs), "pfadd and pfsub words are disjoint");
    }

    #[test]
    fn chaining_sub_operations_read_other_pipe() {
        let m = load();
        let a1m = m.template_by_mnemonic("A1m").unwrap();
        let t = m.template(a1m);
        // Reads m3 (multiplier latch), writes a1 (adder latch).
        let m3 = m.temporal_by_name("m3").unwrap();
        let a1 = m.temporal_by_name("a1").unwrap();
        assert!(t.effects.temporal_uses.contains(&m3));
        assert!(t.effects.temporal_defs.contains(&a1));
    }
}
