//! TOYP — the paper's toy processor (Figures 1–3), completed.
//!
//! The figures give TOYP five operations (load, store, add, compare,
//! branch), eight 32-bit integer registers usable as four 64-bit
//! pairs, a 5-stage instruction pipeline and a 5-stage floating add
//! pipe. This description keeps every directive the figures show —
//! including the `[s.movs]` labelled single move, the `*movd` escape
//! that moves a double as two halves, the `%aux fadd.d : st.d`
//! latency override and the compare glue rule — and extends the
//! instruction set (subtract, multiply, divide, logicals, shifts,
//! conversions, byte/half accesses, call/return) so whole C programs
//! compile.

use crate::MachineSpec;
use marion_core::{CodegenError, EscapeCtx, EscapeRegistry, Operand};
use marion_maril::Machine;

/// The Maril source text.
pub fn text() -> &'static str {
    TOYP
}

/// Parses and compiles the description.
///
/// # Panics
///
/// Never in practice — the bundled text is tested.
pub fn load() -> Machine {
    match Machine::parse("toyp", TOYP) {
        Ok(m) => m,
        Err(e) => panic!("{}", e.render("toyp.maril", TOYP)),
    }
}

/// The machine plus its escapes.
pub fn spec() -> MachineSpec {
    MachineSpec {
        machine: load(),
        escapes: escapes(),
    }
}

/// TOYP's `*func` escapes.
pub fn escapes() -> EscapeRegistry {
    let mut reg = EscapeRegistry::new();
    reg.register("movd", movd);
    reg.register("li32", li32);
    reg.register("cvt8", cvt8);
    reg.register("cvt16", cvt16);
    reg
}

/// `*movd d, d` — a double move maps into two single moves between
/// register halves (paper §3.4's example): the user function creates
/// operands for the two halves of each `d` register and generates two
/// `[s.movs]` instructions.
fn movd(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let dest = ops[0];
    let src = ops[1];
    let r0 = zero_reg(ctx);
    for half in 0..2u8 {
        let d = ctx.half(dest, half)?;
        let s = ctx.half(src, half)?;
        ctx.emit_labelled("s.movs", vec![d, s, r0])?;
    }
    Ok(())
}

/// `*li32 r, #const32` — TOYP has 16-bit immediates only; a 32-bit
/// constant builds as load-high, shift, or-low.
fn li32(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    let dest = ops[0];
    let Operand::Imm(imm) = ops[1] else {
        return Err(CodegenError::new(
            marion_core::Phase::Select,
            "li32 needs an immediate operand",
        ));
    };
    let hi = ctx.imm_high(imm);
    let lo = ctx.imm_low(imm);
    let r0 = zero_reg(ctx);
    ctx.emit("li", vec![dest, r0, Operand::Imm(hi)])?;
    ctx.emit(
        "shli",
        vec![dest, dest, Operand::Imm(marion_core::ImmVal::Const(16))],
    )?;
    ctx.emit("ori", vec![dest, dest, Operand::Imm(lo)])?;
    Ok(())
}

/// `*cvt8 r, r` — int-to-char truncation via shift left then
/// arithmetic shift right by 24.
fn cvt8(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 24)
}

/// `*cvt16 r, r` — int-to-short truncation (shifts by 16).
fn cvt16(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand]) -> Result<(), CodegenError> {
    narrow(ctx, ops, 16)
}

fn narrow(ctx: &mut EscapeCtx<'_, '_>, ops: &[Operand], bits: i64) -> Result<(), CodegenError> {
    let dest = ops[0];
    let src = ops[1];
    let sh = Operand::Imm(marion_core::ImmVal::Const(bits));
    ctx.emit("shli", vec![dest, src, sh])?;
    ctx.emit("srai", vec![dest, dest, sh])?;
    Ok(())
}

fn zero_reg(ctx: &EscapeCtx<'_, '_>) -> Operand {
    let class = ctx.machine().reg_class_by_name("r").expect("class r");
    Operand::Phys(marion_maril::PhysReg::new(class, 0))
}

const TOYP: &str = r#"
/* TOYP — the toy processor of Bradlee/Henry/Eggers, PLDI 1991,
 * Figures 1-3, completed into a full compilation target. */

declare {
    %reg r[0:7] (int);          /* Integer regs */
    %reg d[0:3] (double);       /* Double float regs */
    %equiv r[0] d[0];           /* d regs overlap r regs */
    %resource IF; ID; IE; IA; IW;   /* fetch; decode; execute; access mem; writeback */
    %resource F1; F2; F3; F4; F5;   /* Floating add pipe */
    %def const16 [-32768:32767];    /* signed immediate */
    %def uconst5 [0:31];            /* shift amounts */
    %def addr16 [0:32767] +abs;     /* small absolute addresses */
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-32768:32767] +relative;   /* Branch offset */
    %memory m[0:2147483647];
}

cwvm {
    %general (int) r;
    %general (double) d;
    %general (float) d;
    %allocable r[1:6];    /* Fig. 2 gives r[1:5]; r6 (the unused frame
                           * pointer) is added so real programs fit */
    %allocable d[1:2];
    %calleesave r[4:7];
    %sp r[7] +down;
    %fp r[6] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[2] 1;          /* 1st int arg in r[2] */
    %arg (int) r[3] 2;          /* 2nd int arg in r[3] */
    %arg (double) d[1] 1;       /* "either two integer parameters or
                                 * one double float parameter may be
                                 * passed in registers" (paper, Fig 2) */
    %result r[2] (int);
    %result d[1] (double);
}

instr {
    /* ---- integer ALU ---- */
    %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr addi r, r, #const16 (int) {$1 = $2 + $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr li r, r[0], #const16 (int) {$1 = $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr la r, r[0], #addr16 (int) {$1 = $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr *li32 r, #const32 (int) {$1 = $2;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr sub r, r, r (int) {$1 = $2 - $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr subi r, r, #const16 (int) {$1 = $2 - $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr neg r, r (int) {$1 = -$2;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr not r, r (int) {$1 = ~$2;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr andi r, r, #const16 (int) {$1 = $2 & $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr or r, r, r (int) {$1 = $2 | $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr ori r, r, #const16 (int) {$1 = $2 | $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr shl r, r, r (int) {$1 = $2 << $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr shli r, r, #uconst5 (int) {$1 = $2 << $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr sra r, r, r (int) {$1 = $2 >> $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr srai r, r, #uconst5 (int) {$1 = $2 >> $3;} [IF; ID; IE; IA; IW;] (1,1,0)

    /* Iterative multiply/divide occupy the execute stage */
    %instr mul r, r, r (int) {$1 = $2 * $3;} [IF; ID; IE; IE; IE; IE; IA; IW;] (1,5,0)
    %instr div r, r, r (int) {$1 = $2 / $3;} [IF; ID; IE; IE; IE; IE; IE; IE; IE; IE; IE; IE; IA; IW;] (1,12,0)
    %instr rem r, r, r (int) {$1 = $2 % $3;} [IF; ID; IE; IE; IE; IE; IE; IE; IE; IE; IE; IE; IA; IW;] (1,12,0)

    /* ---- generic compares (fed by the %glue rules) ---- */
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr fcmp r, d, d (int) {$1 = $2 :: $3;} [IF; ID; F1; F2; F3; F4; F5; IW;] (1,6,0)

    /* ---- memory ---- */
    %instr ld r, r, #const16 (int) {$1 = m[$2+$3];} [IF; ID; IE; IA; IW;] (1,3,0)
    %instr st r, r, #const16 (int) {m[$2+$3] = $1;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr ld.b r, r, #const16 (char) {$1 = m[$2+$3];} [IF; ID; IE; IA; IW;] (1,3,0)
    %instr st.b r, r, #const16 (char) {m[$2+$3] = $1;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr ld.h r, r, #const16 (short) {$1 = m[$2+$3];} [IF; ID; IE; IA; IW;] (1,3,0)
    %instr st.h r, r, #const16 (short) {m[$2+$3] = $1;} [IF; ID; IE; IA; IW;] (1,1,0)
    %instr ld.d d, r, #const16 (double) {$1 = m[$2+$3];} [IF; ID; IE; IA; IA; IW;] (1,4,0)
    %instr st.d d, r, #const16 (double) {m[$2+$3] = $1;} [IF; ID; IE; IA; IA; IW;] (1,1,0)

    /* ---- floating point (5-stage add pipe) ---- */
    %instr fadd.d d, d, d (double) {$1 = $2 + $3;} [IF; ID; F1,ID; F1; F2; F3; F4; F5; IW;] (1,6,0)
    %instr fsub.d d, d, d (double) {$1 = $2 - $3;} [IF; ID; F1,ID; F1; F2; F3; F4; F5; IW;] (1,6,0)
    %instr fneg.d d, d (double) {$1 = -$2;} [IF; ID; F1; F2; F3; F4; F5; IW;] (1,6,0)
    %instr fmul.d d, d, d (double) {$1 = $2 * $3;} [IF; ID; F1; F1; F2; F2; F3; F4; F5; IW;] (1,8,0)
    %instr fdiv.d d, d, d (double) {$1 = $2 / $3;} [IF; ID; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F1; F2; F3; F4; F5; IW;] (1,20,0)

    /* ---- single precision (computed in d registers) ---- */
    %instr fadd.s d, d, d (float) {$1 = $2 + $3;} [IF; ID; F1; F2; F3; F4; IW;] (1,5,0)
    %instr fsub.s d, d, d (float) {$1 = $2 - $3;} [IF; ID; F1; F2; F3; F4; IW;] (1,5,0)
    %instr fneg.s d, d (float) {$1 = -$2;} [IF; ID; F1; F2; IW;] (1,3,0)
    %instr fmul.s d, d, d (float) {$1 = $2 * $3;} [IF; ID; F1; F1; F2; F3; F4; IW;] (1,6,0)
    %instr fdiv.s d, d, d (float) {$1 = $2 / $3;} [IF; ID; F1; F1; F1; F1; F1; F1; F1; F1; F2; F3; IW;] (1,12,0)
    %instr fcmp.s r, d, d (int) {$1 = $2 :: $3;} [IF; ID; F1; F2; F3; IW;] (1,4,0)
    %instr ld.s d, r, #const16 (float) {$1 = m[$2+$3];} [IF; ID; IE; IA; IW;] (1,3,0)
    %instr st.s d, r, #const16 (float) {m[$2+$3] = $1;} [IF; ID; IE; IA; IW;] (1,1,0)

    /* ---- conversions ---- */
    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr cvtid d, r (double) {$1 = (double)$2;} [IF; ID; F1; F2; F3; F4; F5; IW;] (1,6,0)
    %instr cvtdi r, d (int) {$1 = (int)$2;} [IF; ID; F1; F2; F3; F4; F5; IW;] (1,6,0)
    %instr cvtis d, r (float) {$1 = (float)$2;} [IF; ID; F1; F2; F3; F4; IW;] (1,5,0)
    %instr cvtsi r, d (int) {$1 = (int)$2;} [IF; ID; F1; F2; F3; F4; IW;] (1,5,0)
    %instr fcvt.ds d, d (double) {$1 = (double)$2;} [IF; ID; F1; F2; IW;] (1,3,0)
    %instr fcvt.sd d, d (float) {$1 = (float)$2;} [IF; ID; F1; F2; IW;] (1,3,0)
    %instr *cvt8 r, r (char) {$1 = (char)$2;} [] (0,0,0)
    %instr *cvt16 r, r (short) {$1 = (short)$2;} [] (0,0,0)

    /* ---- control ---- */
    %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IF; ID; IE;] (1,2,1)
    %instr bne0 r, #rlab {if ($1 != 0) goto $2;} [IF; ID; IE;] (1,2,1)
    %instr blt0 r, #rlab {if ($1 < 0) goto $2;} [IF; ID; IE;] (1,2,1)
    %instr ble0 r, #rlab {if ($1 <= 0) goto $2;} [IF; ID; IE;] (1,2,1)
    %instr bgt0 r, #rlab {if ($1 > 0) goto $2;} [IF; ID; IE;] (1,2,1)
    %instr bge0 r, #rlab {if ($1 >= 0) goto $2;} [IF; ID; IE;] (1,2,1)
    %instr br #rlab {goto $1;} [IF; ID; IE;] (1,2,1)
    %instr bsr #rlab {call $1;} [IF; ID; IE;] (1,2,1)
    %instr rts {return;} [IF; ID; IE;] (1,2,1)
    %instr nop {} [IF; ID; IE; IA; IW;] (1,1,0)

    /* single reg move, referenced by movd */
    %move [s.movs] add r, r, r[0] {$1 = $2;} [IF; ID; IE; IA; IW;] (1,1,0)
    /* func escape: double reg move (2 instrs) */
    %move *movd d, d {$1 = $2;} [] (0,0,0)
    /* auxiliary latency for instruction pair (Fig. 3) */
    %aux fadd.d : st.d (1.$1 == 2.$1) (7)
    %aux fmul.d : st.d (1.$1 == 2.$1) (9)

    /* glue value transformation: strength-reduce a doubling (the
     * iterative multiplier costs 5 cycles; an add costs 1) */
    %glue r {($1 * 2) ==> ($1 + $1);}

    /* glue transformations: compares expand into the generic compare
     * :: against zero */
    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue d, d {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue d, d {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue d, d {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue d, d {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use marion_maril::Ty;

    #[test]
    fn parses_and_matches_figures() {
        let m = load();
        // Figure 1: registers, resources, immediates.
        assert_eq!(
            m.reg_class_by_name("r").map(|c| m.reg_class(c).count),
            Some(8)
        );
        assert_eq!(
            m.reg_class_by_name("d").map(|c| m.reg_class(c).count),
            Some(4)
        );
        assert_eq!(m.resources().len(), 10);
        assert!(m.imm_defs().iter().any(|d| d.name == "const16"));
        assert!(m
            .label_defs()
            .iter()
            .any(|l| l.name == "rlab" && l.relative));
        // Figure 2: runtime model.
        let cwvm = m.cwvm();
        assert_eq!(cwvm.allocable.len(), 6 + 2);
        assert_eq!(cwvm.arg_regs(Ty::Int).len(), 2);
        assert!(cwvm.stack_down);
        // Figure 3: instructions.
        assert!(m.template_by_mnemonic("fadd.d").is_some());
        assert!(m.template_by_label("s.movs").is_some());
        assert_eq!(m.aux_latencies().len(), 2);
        assert_eq!(m.stats().glue_xforms, 9);
        assert_eq!(m.stats().funcs, 4);
    }

    #[test]
    fn d_regs_overlap_r_regs() {
        let m = load();
        let r = m.reg_class_by_name("r").unwrap();
        let d = m.reg_class_by_name("d").unwrap();
        assert!(m.regs_overlap(
            marion_maril::PhysReg::new(d, 1),
            marion_maril::PhysReg::new(r, 2)
        ));
        assert!(m.regs_overlap(
            marion_maril::PhysReg::new(d, 1),
            marion_maril::PhysReg::new(r, 3)
        ));
        assert!(!m.regs_overlap(
            marion_maril::PhysReg::new(d, 1),
            marion_maril::PhysReg::new(r, 4)
        ));
    }

    #[test]
    fn fadd_aux_latency_applies_to_store_of_result() {
        let m = load();
        let fadd = m.template_by_mnemonic("fadd.d").unwrap();
        let st = m.template_by_mnemonic("st.d").unwrap();
        assert_eq!(m.edge_latency(fadd, st, &|i, j| i == 1 && j == 1), 7);
        assert_eq!(m.edge_latency(fadd, st, &|_, _| false), 6);
    }
}
