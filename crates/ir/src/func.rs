//! Functions, basic blocks, statements and the value-node arena.

use crate::module::SymbolId;
use marion_maril::{BinOp, Ty, UnOp};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// A value node in the function's arena.
    NodeId,
    "n"
);
id_type!(
    /// A basic block.
    BlockId,
    "b"
);
id_type!(
    /// A pseudo-register: a scalar value that may live in a machine
    /// register and can span basic blocks.
    VregId,
    "v"
);
id_type!(
    /// A frame-allocated local (array or address-taken scalar).
    LocalId,
    "l"
);

/// A pure value node. Effectful operations (stores, calls, vreg
/// updates) are [`Stmt`]s, keeping nodes shareable: a node referenced
/// by more than one parent is a local common subexpression.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Integer constant.
    ConstI(i64),
    /// Floating constant.
    ConstF(f64),
    /// Read a pseudo-register.
    ReadVreg(VregId),
    /// Address of a global symbol.
    GlobalAddr(SymbolId),
    /// Address of a frame local.
    LocalAddr(LocalId),
    /// Load from memory; the node's type gives the access width.
    Load(NodeId),
    /// Binary arithmetic (`BinOp::Cmp` and relationals only appear in
    /// terminators and glue output, never in front-end trees).
    Bin(BinOp, NodeId, NodeId),
    /// Unary arithmetic.
    Un(UnOp, NodeId),
    /// Type conversion to this node's type.
    Cvt(NodeId),
    /// A call producing this node's type. Argument order is source
    /// order. Calls used only for effect appear under
    /// [`Stmt::CallStmt`].
    Call(SymbolId, Vec<NodeId>),
}

/// A typed value node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub kind: NodeKind,
    /// The type of the produced value.
    pub ty: Ty,
}

/// An effectful statement, executed in order within a block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `v = node` — write a pseudo-register.
    SetVreg(VregId, NodeId),
    /// `*(addr) = value`, with the access width of `ty`.
    Store {
        /// Address expression.
        addr: NodeId,
        /// Value stored.
        value: NodeId,
        /// Access type.
        ty: Ty,
    },
    /// Evaluate a call node for its effects (result discarded or
    /// `void`).
    CallStmt(NodeId),
}

/// Block-ending control flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `lhs REL rhs`.
    CondJump {
        /// The relation (one of the six relational [`BinOp`]s).
        rel: BinOp,
        /// Left operand.
        lhs: NodeId,
        /// Right operand.
        rhs: NodeId,
        /// Target when the relation holds.
        then_to: BlockId,
        /// Target when it does not.
        else_to: BlockId,
    },
    /// Return, with an optional value.
    Ret(Option<NodeId>),
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::CondJump {
                then_to, else_to, ..
            } => vec![*then_to, *else_to],
            Terminator::Ret(_) => vec![],
        }
    }
}

/// A basic block: ordered statements plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Effectful statements in execution order.
    pub stmts: Vec<Stmt>,
    /// The block terminator.
    pub term: Terminator,
}

/// A frame-allocated object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Local {
    /// Source-level name (for diagnostics).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
}

/// A function: parameters, pseudo-register types, frame locals, blocks
/// and the shared node arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters as (pseudo-register, type), in order. On entry each
    /// parameter's value is in its pseudo-register.
    pub params: Vec<(VregId, Ty)>,
    /// Return type; `None` for `void`.
    pub ret_ty: Option<Ty>,
    /// Type of every pseudo-register (indexed by [`VregId`]).
    pub vreg_tys: Vec<Ty>,
    /// Frame locals (indexed by [`LocalId`]).
    pub locals: Vec<Local>,
    /// Basic blocks (indexed by [`BlockId`]); block 0 is the entry.
    pub blocks: Vec<Block>,
    /// The value-node arena (indexed by [`NodeId`]).
    pub nodes: Vec<Node>,
}

impl Function {
    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// The type of a pseudo-register.
    pub fn vreg_ty(&self, v: VregId) -> Ty {
        self.vreg_tys[v.0 as usize]
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Total frame size of the declared locals, 8-byte aligned each.
    pub fn frame_locals_size(&self) -> u32 {
        self.locals.iter().map(|l| (l.size + 7) & !7).sum()
    }

    /// Byte offset of a local within the locals area.
    pub fn local_offset(&self, id: LocalId) -> u32 {
        self.locals[..id.0 as usize]
            .iter()
            .map(|l| (l.size + 7) & !7)
            .sum()
    }

    /// Counts, for every node, how many parents reference it within
    /// statements, terminators and other nodes. Used by the selector:
    /// a node with more than one parent is a local common
    /// subexpression and is forced into a register (paper §2.1).
    pub fn parent_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        let mut bump = |id: NodeId| counts[id.0 as usize] += 1;
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Load(a) | NodeKind::Un(_, a) | NodeKind::Cvt(a) => bump(*a),
                NodeKind::Bin(_, a, b) => {
                    bump(*a);
                    bump(*b);
                }
                NodeKind::Call(_, args) => args.iter().copied().for_each(&mut bump),
                _ => {}
            }
        }
        for block in &self.blocks {
            for stmt in &block.stmts {
                match stmt {
                    Stmt::SetVreg(_, n) | Stmt::CallStmt(n) => bump(*n),
                    Stmt::Store { addr, value, .. } => {
                        bump(*addr);
                        bump(*value);
                    }
                }
            }
            match &block.term {
                Terminator::CondJump { lhs, rhs, .. } => {
                    bump(*lhs);
                    bump(*rhs);
                }
                Terminator::Ret(Some(n)) => bump(*n),
                _ => {}
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Function {
        // v0 = 1 + 2; return v0
        let nodes = vec![
            Node {
                kind: NodeKind::ConstI(1),
                ty: Ty::Int,
            },
            Node {
                kind: NodeKind::ConstI(2),
                ty: Ty::Int,
            },
            Node {
                kind: NodeKind::Bin(BinOp::Add, NodeId(0), NodeId(1)),
                ty: Ty::Int,
            },
            Node {
                kind: NodeKind::ReadVreg(VregId(0)),
                ty: Ty::Int,
            },
        ];
        Function {
            name: "tiny".into(),
            params: vec![],
            ret_ty: Some(Ty::Int),
            vreg_tys: vec![Ty::Int],
            locals: vec![],
            blocks: vec![Block {
                stmts: vec![Stmt::SetVreg(VregId(0), NodeId(2))],
                term: Terminator::Ret(Some(NodeId(3))),
            }],
            nodes,
        }
    }

    #[test]
    fn parent_counts_cover_stmts_and_terms() {
        let f = tiny();
        let counts = f.parent_counts();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert!(Terminator::Ret(None).successors().is_empty());
        let cj = Terminator::CondJump {
            rel: BinOp::Lt,
            lhs: NodeId(0),
            rhs: NodeId(1),
            then_to: BlockId(1),
            else_to: BlockId(2),
        };
        assert_eq!(cj.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn frame_layout_is_aligned() {
        let mut f = tiny();
        f.locals.push(Local {
            name: "a".into(),
            size: 12,
        });
        f.locals.push(Local {
            name: "b".into(),
            size: 8,
        });
        assert_eq!(f.local_offset(LocalId(0)), 0);
        assert_eq!(f.local_offset(LocalId(1)), 16);
        assert_eq!(f.frame_locals_size(), 24);
    }
}
