//! A reference interpreter for IR modules.
//!
//! The interpreter defines the *ground-truth semantics* that generated
//! machine code must preserve; the differential tests run the same
//! program here and on the `marion-sim` pipeline simulator and compare
//! results. Integer arithmetic is 32-bit two's-complement; `float`
//! arithmetic rounds through `f32`; memory is a flat little-endian
//! byte array with globals at the bottom and the stack at the top.

use crate::func::*;
use crate::module::{Module, Symbol, SymbolId};
use marion_maril::{BinOp, Ty, UnOp};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A runtime value: 32-bit integers are kept sign-extended in `I`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (char/short/int/long/ptr).
    I(i64),
    /// Floating (float/double).
    F(f64),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is floating.
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => panic!("expected integer, found float {v}"),
        }
    }

    /// The floating payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => panic!("expected float, found integer {v}"),
        }
    }
}

/// A runtime fault: division by zero, out-of-bounds access, missing
/// function, or step-budget exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError(String);

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter fault: {}", self.0)
    }
}

impl Error for InterpError {}

fn fault<T>(msg: impl Into<String>) -> Result<T, InterpError> {
    Err(InterpError(msg.into()))
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpStats {
    /// Statements executed.
    pub stmts: u64,
    /// Function calls made.
    pub calls: u64,
}

/// The interpreter. Owns the memory image; create one per program run.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
    /// Flat memory image.
    pub mem: Vec<u8>,
    global_addrs: HashMap<SymbolId, u32>,
    sp: u32,
    budget: u64,
    /// Statistics accumulated so far.
    pub stats: InterpStats,
}

/// Base address of the first global (address 0 is kept unmapped).
pub const GLOBAL_BASE: u32 = 64;

impl<'m> Interp<'m> {
    /// Creates an interpreter with `mem_size` bytes of memory and lays
    /// out the module's globals.
    pub fn new(module: &'m Module, mem_size: u32) -> Interp<'m> {
        let mut mem = vec![0u8; mem_size as usize];
        let mut global_addrs = HashMap::new();
        let mut next = GLOBAL_BASE;
        for i in 0..module.symbol_count() {
            let sym = SymbolId(i as u32);
            if let Symbol::Global(gi) = module.symbol(sym) {
                let g = &module.globals[*gi];
                next = (next + 7) & !7;
                let bytes = g.init.bytes();
                mem[next as usize..next as usize + bytes.len()].copy_from_slice(&bytes);
                global_addrs.insert(sym, next);
                next += g.init.size().max(1);
            }
        }
        Interp {
            module,
            mem,
            global_addrs,
            sp: mem_size & !7,
            budget: u64::MAX,
            stats: InterpStats::default(),
        }
    }

    /// Limits the number of executed statements (guards against
    /// non-terminating test programs).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// The address a global was laid out at.
    pub fn global_addr(&self, sym: SymbolId) -> Option<u32> {
        self.global_addrs.get(&sym).copied()
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns a fault if the function is missing, arguments are
    /// mistyped, or execution faults.
    pub fn call_by_name(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> Result<Option<Value>, InterpError> {
        let Some(func) = self.module.func_by_name(name) else {
            return fault(format!("no function `{name}`"));
        };
        self.call_func(func, args)
    }

    fn call_func(
        &mut self,
        func: &'m Function,
        args: &[Value],
    ) -> Result<Option<Value>, InterpError> {
        self.stats.calls += 1;
        if args.len() != func.params.len() {
            return fault(format!(
                "`{}` expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            ));
        }
        // Frame: allocate locals below the current stack pointer.
        let frame_size = (func.frame_locals_size() + 7) & !7;
        if frame_size as u64 + GLOBAL_BASE as u64 > self.sp as u64 {
            return fault("stack overflow");
        }
        let saved_sp = self.sp;
        self.sp -= frame_size;
        let frame_base = self.sp;

        let mut vregs = vec![Value::I(0); func.vreg_tys.len()];
        for ((v, ty), arg) in func.params.iter().zip(args) {
            match (ty.is_float(), arg) {
                (true, Value::F(_)) | (false, Value::I(_)) => vregs[v.0 as usize] = *arg,
                _ => return fault(format!("argument type mismatch for {v}")),
            }
        }

        let mut block = func.entry();
        let result = loop {
            let blk = func.block(block);
            let mut cache: HashMap<NodeId, Value> = HashMap::new();
            for stmt in &blk.stmts {
                self.stats.stmts += 1;
                if self.stats.stmts > self.budget {
                    return fault("step budget exhausted");
                }
                match stmt {
                    Stmt::SetVreg(v, n) => {
                        let val = self.eval(func, *n, &vregs, frame_base, &mut cache)?;
                        vregs[v.0 as usize] = val;
                    }
                    Stmt::Store { addr, value, ty } => {
                        let a = self
                            .eval(func, *addr, &vregs, frame_base, &mut cache)?
                            .as_i() as u32;
                        let v = self.eval(func, *value, &vregs, frame_base, &mut cache)?;
                        self.write_mem(a, v, *ty)?;
                    }
                    Stmt::CallStmt(n) => {
                        self.eval(func, *n, &vregs, frame_base, &mut cache)?;
                    }
                }
            }
            self.stats.stmts += 1;
            if self.stats.stmts > self.budget {
                return fault("step budget exhausted");
            }
            match &blk.term {
                Terminator::Jump(b) => block = *b,
                Terminator::CondJump {
                    rel,
                    lhs,
                    rhs,
                    then_to,
                    else_to,
                } => {
                    let l = self.eval(func, *lhs, &vregs, frame_base, &mut cache)?;
                    let r = self.eval(func, *rhs, &vregs, frame_base, &mut cache)?;
                    let taken = compare(*rel, l, r)?;
                    block = if taken { *then_to } else { *else_to };
                }
                Terminator::Ret(Some(n)) => {
                    let v = self.eval(func, *n, &vregs, frame_base, &mut cache)?;
                    break Some(v);
                }
                Terminator::Ret(None) => break None,
            }
        };
        self.sp = saved_sp;
        Ok(result)
    }

    fn eval(
        &mut self,
        func: &'m Function,
        id: NodeId,
        vregs: &[Value],
        frame_base: u32,
        cache: &mut HashMap<NodeId, Value>,
    ) -> Result<Value, InterpError> {
        if let Some(v) = cache.get(&id) {
            return Ok(*v);
        }
        let node = func.node(id);
        let val = match &node.kind {
            NodeKind::ConstI(v) => Value::I(*v),
            NodeKind::ConstF(v) => Value::F(round_ty(*v, node.ty)),
            NodeKind::ReadVreg(v) => vregs[v.0 as usize],
            NodeKind::GlobalAddr(s) => match self.global_addrs.get(s) {
                Some(a) => Value::I(*a as i64),
                None => return fault(format!("address of non-global symbol {s}")),
            },
            NodeKind::LocalAddr(l) => Value::I((frame_base + func.local_offset(*l)) as i64),
            NodeKind::Load(a) => {
                let addr = self.eval(func, *a, vregs, frame_base, cache)?.as_i() as u32;
                self.read_mem(addr, node.ty)?
            }
            NodeKind::Bin(op, a, b) => {
                let l = self.eval(func, *a, vregs, frame_base, cache)?;
                let r = self.eval(func, *b, vregs, frame_base, cache)?;
                binop(*op, l, r, node.ty)?
            }
            NodeKind::Un(op, a) => {
                let v = self.eval(func, *a, vregs, frame_base, cache)?;
                match (op, v) {
                    (UnOp::Neg, Value::I(x)) => Value::I(wrap32(-x)),
                    (UnOp::Neg, Value::F(x)) => Value::F(round_ty(-x, node.ty)),
                    (UnOp::Not, Value::I(x)) => Value::I(wrap32(!x)),
                    (UnOp::Not, Value::F(_)) => return fault("bitwise not on float"),
                }
            }
            NodeKind::Cvt(a) => {
                let v = self.eval(func, *a, vregs, frame_base, cache)?;
                convert(v, func.node(*a).ty, node.ty)
            }
            NodeKind::Call(sym, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(func, *a, vregs, frame_base, cache)?);
                }
                let callee = match self.module.symbol(*sym) {
                    Symbol::Func(i) => &self.module.funcs[*i],
                    _ => {
                        return fault(format!(
                            "call to undefined function `{}`",
                            self.module.symbol_name(*sym)
                        ));
                    }
                };
                match self.call_func(callee, &vals)? {
                    Some(v) => v,
                    None => Value::I(0),
                }
            }
        };
        cache.insert(id, val);
        Ok(val)
    }

    /// Reads a typed value from memory.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range addresses.
    pub fn read_mem(&self, addr: u32, ty: Ty) -> Result<Value, InterpError> {
        let size = ty.size() as usize;
        let a = addr as usize;
        if a + size > self.mem.len() || addr < GLOBAL_BASE {
            return fault(format!("load from invalid address {addr:#x}"));
        }
        Ok(match ty {
            Ty::Char => Value::I(self.mem[a] as i8 as i64),
            Ty::Short => Value::I(i16::from_le_bytes([self.mem[a], self.mem[a + 1]]) as i64),
            Ty::Int | Ty::Long | Ty::Ptr => {
                Value::I(i32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()) as i64)
            }
            Ty::Float => {
                Value::F(f32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()) as f64)
            }
            Ty::Double => Value::F(f64::from_le_bytes(self.mem[a..a + 8].try_into().unwrap())),
        })
    }

    /// Writes a typed value to memory.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range addresses.
    pub fn write_mem(&mut self, addr: u32, value: Value, ty: Ty) -> Result<(), InterpError> {
        let size = ty.size() as usize;
        let a = addr as usize;
        if a + size > self.mem.len() || addr < GLOBAL_BASE {
            return fault(format!("store to invalid address {addr:#x}"));
        }
        match ty {
            Ty::Char => self.mem[a] = value.as_i() as u8,
            Ty::Short => self.mem[a..a + 2].copy_from_slice(&(value.as_i() as i16).to_le_bytes()),
            Ty::Int | Ty::Long | Ty::Ptr => {
                self.mem[a..a + 4].copy_from_slice(&(value.as_i() as i32).to_le_bytes());
            }
            Ty::Float => {
                self.mem[a..a + 4].copy_from_slice(&(value.as_f() as f32).to_le_bytes());
            }
            Ty::Double => self.mem[a..a + 8].copy_from_slice(&value.as_f().to_le_bytes()),
        }
        Ok(())
    }
}

fn wrap32(v: i64) -> i64 {
    v as i32 as i64
}

fn round_ty(v: f64, ty: Ty) -> f64 {
    if ty == Ty::Float {
        v as f32 as f64
    } else {
        v
    }
}

/// Applies a binary operator with C semantics at type `ty`.
///
/// # Errors
///
/// Faults on integer division by zero and on float-only/int-only
/// operator misuse.
pub fn binop(op: BinOp, l: Value, r: Value, ty: Ty) -> Result<Value, InterpError> {
    if op == BinOp::Cmp {
        // The generic compare `::` yields a signum: -1, 0 or +1, so a
        // following relation against zero recovers any comparison.
        let lt = compare(BinOp::Lt, l, r)?;
        let gt = compare(BinOp::Gt, l, r)?;
        return Ok(Value::I(gt as i64 - lt as i64));
    }
    if op.is_relational() {
        // Value-producing comparison (an `slt`-style set): 0/1.
        let b = compare(op, l, r)?;
        return Ok(Value::I(b as i64));
    }
    match (l, r) {
        (Value::I(a), Value::I(b)) => {
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => wrap32(a) * wrap32(b),
                BinOp::Div => {
                    if wrap32(b) == 0 {
                        return fault("integer division by zero");
                    }
                    wrap32(a) / wrap32(b)
                }
                BinOp::Rem => {
                    if wrap32(b) == 0 {
                        return fault("integer remainder by zero");
                    }
                    wrap32(a) % wrap32(b)
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => wrap32(a) << (b & 31),
                BinOp::Shr => wrap32(a) >> (b & 31),
                _ => unreachable!(),
            };
            Ok(Value::I(wrap32(v)))
        }
        (Value::F(a), Value::F(b)) => {
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => return fault(format!("float operand to integer operator `{op}`")),
            };
            Ok(Value::F(round_ty(v, ty)))
        }
        _ => fault(format!("mixed int/float operands to `{op}`")),
    }
}

/// Evaluates a relational comparison.
///
/// # Errors
///
/// Faults on mixed int/float operands.
pub fn compare(rel: BinOp, l: Value, r: Value) -> Result<bool, InterpError> {
    let ord = match (l, r) {
        (Value::I(a), Value::I(b)) => a.partial_cmp(&b),
        (Value::F(a), Value::F(b)) => a.partial_cmp(&b),
        _ => return fault("mixed int/float comparison"),
    };
    Ok(match rel {
        BinOp::Eq => ord == Some(std::cmp::Ordering::Equal),
        BinOp::Ne => ord != Some(std::cmp::Ordering::Equal),
        BinOp::Lt => ord == Some(std::cmp::Ordering::Less),
        BinOp::Le => matches!(
            ord,
            Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
        ),
        BinOp::Gt => ord == Some(std::cmp::Ordering::Greater),
        BinOp::Ge => matches!(
            ord,
            Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
        ),
        other => return fault(format!("`{other}` is not a relation")),
    })
}

/// Converts `v` from type `from` to type `to` with C semantics.
pub fn convert(v: Value, from: Ty, to: Ty) -> Value {
    match (from.is_float(), to.is_float()) {
        (false, false) => {
            let x = v.as_i();
            Value::I(match to {
                Ty::Char => x as i8 as i64,
                Ty::Short => x as i16 as i64,
                _ => wrap32(x),
            })
        }
        (false, true) => Value::F(round_ty(v.as_i() as f64, to)),
        (true, false) => {
            let t = v.as_f().trunc();
            let clamped = t.clamp(i32::MIN as f64, i32::MAX as f64);
            Value::I(clamped as i64)
        }
        (true, true) => Value::F(round_ty(v.as_f(), to)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{Global, GlobalInit, Module};

    fn int_fn_module(build: impl FnOnce(&mut FuncBuilder)) -> Module {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", Some(Ty::Int));
        build(&mut b);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let m = int_fn_module(|b| {
            let a = b.const_i(6, Ty::Int);
            let c = b.const_i(7, Ty::Int);
            let p = b.bin(BinOp::Mul, a, c, Ty::Int);
            b.ret(Some(p));
        });
        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(i.call_by_name("main", &[]).unwrap(), Some(Value::I(42)));
    }

    #[test]
    fn wrapping_is_32_bit() {
        let m = int_fn_module(|b| {
            let a = b.const_i(i32::MAX as i64, Ty::Int);
            let c = b.const_i(1, Ty::Int);
            let p = b.bin(BinOp::Add, a, c, Ty::Int);
            b.ret(Some(p));
        });
        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(
            i.call_by_name("main", &[]).unwrap(),
            Some(Value::I(i32::MIN as i64))
        );
    }

    #[test]
    fn division_by_zero_faults() {
        let m = int_fn_module(|b| {
            let a = b.const_i(1, Ty::Int);
            let z = b.const_i(0, Ty::Int);
            let d = b.bin(BinOp::Div, a, z, Ty::Int);
            b.ret(Some(d));
        });
        let mut i = Interp::new(&m, 1 << 16);
        let e = i.call_by_name("main", &[]).unwrap_err();
        assert!(e.to_string().contains("division by zero"));
    }

    #[test]
    fn loops_and_branches() {
        // sum 1..=10 == 55
        let m = int_fn_module(|b| {
            let sum = b.new_vreg(Ty::Int);
            let i = b.new_vreg(Ty::Int);
            let zero = b.const_i(0, Ty::Int);
            let one = b.const_i(1, Ty::Int);
            b.set_vreg(sum, zero);
            b.set_vreg(i, one);
            let loop_b = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.jump(loop_b);
            b.switch_to(loop_b);
            let iv = b.read_vreg(i);
            let ten = b.const_i(10, Ty::Int);
            b.cond_jump(BinOp::Le, iv, ten, body, done);
            b.switch_to(body);
            let iv2 = b.read_vreg(i);
            let sv = b.read_vreg(sum);
            let ns = b.bin(BinOp::Add, sv, iv2, Ty::Int);
            b.set_vreg(sum, ns);
            let one2 = b.const_i(1, Ty::Int);
            let ni = b.bin(BinOp::Add, iv2, one2, Ty::Int);
            b.set_vreg(i, ni);
            b.jump(loop_b);
            b.switch_to(done);
            let res = b.read_vreg(sum);
            b.ret(Some(res));
        });
        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(i.call_by_name("main", &[]).unwrap(), Some(Value::I(55)));
    }

    #[test]
    fn globals_and_memory() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "x".into(),
            init: GlobalInit::Words(vec![5]),
        });
        let mut b = FuncBuilder::new("main", Some(Ty::Int));
        let addr = b.global_addr(g);
        let v = b.load(addr, Ty::Int);
        let two = b.const_i(2, Ty::Int);
        let dbl = b.bin(BinOp::Mul, v, two, Ty::Int);
        b.store(addr, dbl, Ty::Int);
        let v2 = b.load(addr, Ty::Int);
        b.ret(Some(v2));
        m.add_func(b.finish());
        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(i.call_by_name("main", &[]).unwrap(), Some(Value::I(10)));
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut m = Module::new();
        let mut cb = FuncBuilder::new("twice", Some(Ty::Int));
        let p = cb.param(Ty::Int);
        let x = cb.read_vreg(p);
        let two = cb.const_i(2, Ty::Int);
        let r = cb.bin(BinOp::Mul, x, two, Ty::Int);
        cb.ret(Some(r));
        let twice = m.add_func(cb.finish());

        let mut b = FuncBuilder::new("main", Some(Ty::Int));
        let arg = b.const_i(21, Ty::Int);
        let c = b.call(twice, vec![arg], Ty::Int);
        b.ret(Some(c));
        m.add_func(b.finish());

        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(i.call_by_name("main", &[]).unwrap(), Some(Value::I(42)));
        assert_eq!(i.stats.calls, 2);
    }

    #[test]
    fn float_rounds_through_f32() {
        let m = {
            let mut m = Module::new();
            let mut b = FuncBuilder::new("main", Some(Ty::Float));
            let a = b.const_f(0.1, Ty::Float);
            let c = b.const_f(0.2, Ty::Float);
            let s = b.bin(BinOp::Add, a, c, Ty::Float);
            b.ret(Some(s));
            m.add_func(b.finish());
            m
        };
        let mut i = Interp::new(&m, 1 << 16);
        let got = i.call_by_name("main", &[]).unwrap().unwrap().as_f();
        assert_eq!(got, (0.1f32 + 0.2f32) as f64);
    }

    #[test]
    fn locals_are_addressable() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", Some(Ty::Int));
        let arr = b.new_local("a", 40);
        let base = b.local_addr(arr);
        let idx = b.const_i(3 * 4, Ty::Int);
        let slot = b.bin(BinOp::Add, base, idx, Ty::Ptr);
        let val = b.const_i(99, Ty::Int);
        b.store(slot, val, Ty::Int);
        let rd = b.load(slot, Ty::Int);
        b.ret(Some(rd));
        m.add_func(b.finish());
        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(i.call_by_name("main", &[]).unwrap(), Some(Value::I(99)));
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main", None);
        let blk = b.new_block();
        b.jump(blk);
        b.switch_to(blk);
        b.jump(blk);
        m.add_func(b.finish());
        let mut i = Interp::new(&m, 1 << 16).with_budget(1000);
        let e = i.call_by_name("main", &[]).unwrap_err();
        assert!(e.to_string().contains("budget"));
    }

    #[test]
    fn conversions() {
        assert_eq!(convert(Value::I(300), Ty::Int, Ty::Char), Value::I(44));
        assert_eq!(convert(Value::F(3.9), Ty::Double, Ty::Int), Value::I(3));
        assert_eq!(convert(Value::F(-3.9), Ty::Double, Ty::Int), Value::I(-3));
        assert_eq!(convert(Value::I(2), Ty::Int, Ty::Double), Value::F(2.0));
    }

    #[test]
    fn char_loads_sign_extend() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "c".into(),
            init: GlobalInit::Words(vec![0xFF]),
        });
        let mut b = FuncBuilder::new("main", Some(Ty::Int));
        let addr = b.global_addr(g);
        let v = b.load(addr, Ty::Char);
        let w = b.cvt(v, Ty::Int);
        b.ret(Some(w));
        m.add_func(b.finish());
        let mut i = Interp::new(&m, 1 << 16);
        assert_eq!(i.call_by_name("main", &[]).unwrap(), Some(Value::I(-1)));
    }
}
