//! Structural and type verification of IR modules.

use crate::func::*;
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A verification failure, naming the function and the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function the error was found in (empty for module-level).
    pub func: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.func.is_empty() {
            write!(f, "ir verification failed: {}", self.message)
        } else {
            write!(
                f,
                "ir verification failed in `{}`: {}",
                self.func, self.message
            )
        }
    }
}

impl Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first structural problem found: dangling node, block,
/// vreg or symbol references; forward node references (the arena must
/// be topologically ordered); non-relational branch conditions; type
/// mismatches on vreg writes.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.funcs {
        verify_func(func, module.symbol_count())?;
    }
    Ok(())
}

/// Verifies one function. `symbol_count` bounds symbol references.
///
/// # Errors
///
/// See [`verify_module`].
pub fn verify_func(func: &Function, symbol_count: usize) -> Result<(), VerifyError> {
    let err = |message: String| VerifyError {
        func: func.name.clone(),
        message,
    };
    let nnodes = func.nodes.len();
    let check_node = |id: NodeId, parent: usize| -> Result<(), VerifyError> {
        if id.0 as usize >= nnodes {
            return Err(err(format!("node {id} out of range")));
        }
        if id.0 as usize >= parent {
            return Err(err(format!(
                "node n{parent} references later node {id} (arena must be topological)"
            )));
        }
        Ok(())
    };
    for (i, node) in func.nodes.iter().enumerate() {
        match &node.kind {
            NodeKind::ConstI(_) | NodeKind::ConstF(_) => {}
            NodeKind::ReadVreg(v) => {
                if v.0 as usize >= func.vreg_tys.len() {
                    return Err(err(format!("vreg {v} out of range")));
                }
                if func.vreg_ty(*v) != node.ty {
                    return Err(err(format!(
                        "n{i}: ReadVreg type {} != vreg type {}",
                        node.ty,
                        func.vreg_ty(*v)
                    )));
                }
            }
            NodeKind::GlobalAddr(s) => {
                if s.0 as usize >= symbol_count {
                    return Err(err(format!("symbol {s} out of range")));
                }
            }
            NodeKind::LocalAddr(l) => {
                if l.0 as usize >= func.locals.len() {
                    return Err(err(format!("local {l} out of range")));
                }
            }
            NodeKind::Load(a) | NodeKind::Un(_, a) | NodeKind::Cvt(a) => check_node(*a, i)?,
            NodeKind::Bin(_, a, b) => {
                check_node(*a, i)?;
                check_node(*b, i)?;
            }
            NodeKind::Call(s, args) => {
                if s.0 as usize >= symbol_count {
                    return Err(err(format!("symbol {s} out of range")));
                }
                for a in args {
                    check_node(*a, i)?;
                }
            }
        }
    }
    if func.blocks.is_empty() {
        return Err(err("function has no blocks".into()));
    }
    let nblocks = func.blocks.len();
    let in_range = |id: NodeId| -> Result<(), VerifyError> {
        if id.0 as usize >= nnodes {
            Err(err(format!("node {id} out of range")))
        } else {
            Ok(())
        }
    };
    for (bi, block) in func.blocks.iter().enumerate() {
        for stmt in &block.stmts {
            match stmt {
                Stmt::SetVreg(v, n) => {
                    in_range(*n)?;
                    if v.0 as usize >= func.vreg_tys.len() {
                        return Err(err(format!("vreg {v} out of range")));
                    }
                    let nt = func.node(*n).ty;
                    let vt = func.vreg_ty(*v);
                    if nt != vt {
                        return Err(err(format!(
                            "b{bi}: SetVreg({v}) type mismatch: node {nt} vs vreg {vt}"
                        )));
                    }
                }
                Stmt::Store { addr, value, .. } => {
                    in_range(*addr)?;
                    in_range(*value)?;
                }
                Stmt::CallStmt(n) => {
                    in_range(*n)?;
                    if !matches!(func.node(*n).kind, NodeKind::Call(..)) {
                        return Err(err(format!("b{bi}: CallStmt on non-call node")));
                    }
                }
            }
        }
        match &block.term {
            Terminator::Jump(t) => {
                if t.0 as usize >= nblocks {
                    return Err(err(format!("jump target {t} out of range")));
                }
            }
            Terminator::CondJump {
                rel,
                lhs,
                rhs,
                then_to,
                else_to,
            } => {
                if !rel.is_relational() {
                    return Err(err(format!(
                        "b{bi}: branch relation `{rel}` not relational"
                    )));
                }
                in_range(*lhs)?;
                in_range(*rhs)?;
                for t in [then_to, else_to] {
                    if t.0 as usize >= nblocks {
                        return Err(err(format!("branch target {t} out of range")));
                    }
                }
            }
            Terminator::Ret(Some(n)) => {
                in_range(*n)?;
                if func.ret_ty.is_none() {
                    return Err(err(format!("b{bi}: value return from void function")));
                }
            }
            Terminator::Ret(None) => {}
        }
    }
    for (v, _) in &func.params {
        if v.0 as usize >= func.vreg_tys.len() {
            return Err(err(format!("parameter vreg {v} out of range")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use marion_maril::{BinOp, Ty};

    #[test]
    fn accepts_well_formed() {
        let mut b = FuncBuilder::new("ok", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let c = b.const_i(1, Ty::Int);
        let s = b.bin(BinOp::Add, x, c, Ty::Int);
        b.ret(Some(s));
        assert_eq!(verify_func(&b.finish(), 0), Ok(()));
    }

    #[test]
    fn rejects_dangling_node() {
        let mut b = FuncBuilder::new("bad", Some(Ty::Int));
        b.ret(Some(NodeId(42)));
        let e = verify_func(&b.finish(), 0).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_vreg_type_mismatch() {
        let mut b = FuncBuilder::new("bad", None);
        let v = b.new_vreg(Ty::Double);
        let c = b.const_i(0, Ty::Int);
        b.set_vreg(v, c);
        b.ret(None);
        let e = verify_func(&b.finish(), 0).unwrap_err();
        assert!(e.to_string().contains("mismatch"), "{e}");
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut b = FuncBuilder::new("bad", None);
        b.jump(BlockId(9));
        let e = verify_func(&b.finish(), 0).unwrap_err();
        assert!(e.to_string().contains("target"), "{e}");
    }

    #[test]
    fn rejects_value_return_from_void() {
        let mut b = FuncBuilder::new("bad", None);
        let c = b.const_i(0, Ty::Int);
        b.ret(Some(c));
        let e = verify_func(&b.finish(), 0).unwrap_err();
        assert!(e.to_string().contains("void"), "{e}");
    }

    #[test]
    fn rejects_symbol_out_of_range() {
        let mut b = FuncBuilder::new("bad", None);
        let g = b.global_addr(crate::module::SymbolId(5));
        let c = b.const_i(0, Ty::Int);
        b.store(g, c, Ty::Int);
        b.ret(None);
        let e = verify_func(&b.finish(), 2).unwrap_err();
        assert!(e.to_string().contains("symbol"), "{e}");
    }
}
