//! Incremental construction of [`Function`]s with local CSE.
//!
//! The builder hash-conses pure value nodes *within the current basic
//! block*, so repeated subexpressions share one node — which the
//! selector later forces into a register, matching the paper's
//! treatment of local common subexpressions. `Load` nodes are shared
//! too, but the load cache is invalidated by stores and calls.

use crate::func::*;
use crate::module::SymbolId;
use marion_maril::{BinOp, Ty, UnOp};
use std::collections::HashMap;

/// Builds one [`Function`]. Create with [`FuncBuilder::new`], add
/// blocks and statements, then [`FuncBuilder::finish`].
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    current: BlockId,
    cse: HashMap<CseKey, NodeId>,
    load_cache: Vec<NodeId>,
    sealed: Vec<bool>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CseKey {
    ConstI(i64, Ty),
    ConstF(u64, Ty),
    ReadVreg(VregId),
    GlobalAddr(SymbolId),
    LocalAddr(LocalId),
    Load(NodeId, Ty),
    Bin(BinOp, NodeId, NodeId, Ty),
    Un(UnOp, NodeId, Ty),
    Cvt(NodeId, Ty),
}

impl FuncBuilder {
    /// Starts a function with the given name and return type; the
    /// entry block is current.
    pub fn new(name: &str, ret_ty: Option<Ty>) -> FuncBuilder {
        FuncBuilder {
            func: Function {
                name: name.to_owned(),
                params: vec![],
                ret_ty,
                vreg_tys: vec![],
                locals: vec![],
                blocks: vec![Block {
                    stmts: vec![],
                    term: Terminator::Ret(None),
                }],
                nodes: vec![],
            },
            current: BlockId(0),
            cse: HashMap::new(),
            load_cache: Vec::new(),
            sealed: vec![false],
        }
    }

    /// Declares a parameter; its value arrives in the returned
    /// pseudo-register.
    pub fn param(&mut self, ty: Ty) -> VregId {
        let v = self.new_vreg(ty);
        self.func.params.push((v, ty));
        v
    }

    /// Allocates a fresh pseudo-register of type `ty`.
    pub fn new_vreg(&mut self, ty: Ty) -> VregId {
        self.func.vreg_tys.push(ty);
        VregId(self.func.vreg_tys.len() as u32 - 1)
    }

    /// Allocates a frame local of `size` bytes.
    pub fn new_local(&mut self, name: &str, size: u32) -> LocalId {
        self.func.locals.push(Local {
            name: name.to_owned(),
            size,
        });
        LocalId(self.func.locals.len() as u32 - 1)
    }

    /// Creates a new (empty) block and returns its id. Does not switch
    /// to it.
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Block {
            stmts: vec![],
            term: Terminator::Ret(None),
        });
        self.sealed.push(false);
        BlockId(self.func.blocks.len() as u32 - 1)
    }

    /// Makes `block` the insertion point. Clears the CSE scope: value
    /// sharing is local to a block.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
        self.cse.clear();
        self.load_cache.clear();
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn intern(&mut self, key: CseKey, kind: NodeKind, ty: Ty) -> NodeId {
        if let Some(id) = self.cse.get(&key) {
            return *id;
        }
        self.func.nodes.push(Node { kind, ty });
        let id = NodeId(self.func.nodes.len() as u32 - 1);
        self.cse.insert(key, id);
        id
    }

    /// Integer constant node.
    pub fn const_i(&mut self, v: i64, ty: Ty) -> NodeId {
        self.intern(CseKey::ConstI(v, ty), NodeKind::ConstI(v), ty)
    }

    /// Floating constant node.
    pub fn const_f(&mut self, v: f64, ty: Ty) -> NodeId {
        self.intern(CseKey::ConstF(v.to_bits(), ty), NodeKind::ConstF(v), ty)
    }

    /// Pseudo-register read.
    pub fn read_vreg(&mut self, v: VregId) -> NodeId {
        let ty = self.func.vreg_ty(v);
        self.intern(CseKey::ReadVreg(v), NodeKind::ReadVreg(v), ty)
    }

    /// Address of a global.
    pub fn global_addr(&mut self, sym: SymbolId) -> NodeId {
        self.intern(CseKey::GlobalAddr(sym), NodeKind::GlobalAddr(sym), Ty::Ptr)
    }

    /// Address of a frame local.
    pub fn local_addr(&mut self, local: LocalId) -> NodeId {
        self.intern(
            CseKey::LocalAddr(local),
            NodeKind::LocalAddr(local),
            Ty::Ptr,
        )
    }

    /// Memory load of type `ty` from `addr`.
    pub fn load(&mut self, addr: NodeId, ty: Ty) -> NodeId {
        let id = self.intern(CseKey::Load(addr, ty), NodeKind::Load(addr), ty);
        if !self.load_cache.contains(&id) {
            self.load_cache.push(id);
        }
        id
    }

    /// Binary operation of type `ty`.
    pub fn bin(&mut self, op: BinOp, a: NodeId, b: NodeId, ty: Ty) -> NodeId {
        self.intern(CseKey::Bin(op, a, b, ty), NodeKind::Bin(op, a, b), ty)
    }

    /// Unary operation of type `ty`.
    pub fn un(&mut self, op: UnOp, a: NodeId, ty: Ty) -> NodeId {
        self.intern(CseKey::Un(op, a, ty), NodeKind::Un(op, a), ty)
    }

    /// Conversion of `a` to `ty`.
    pub fn cvt(&mut self, a: NodeId, ty: Ty) -> NodeId {
        if self.func.node(a).ty == ty {
            return a;
        }
        self.intern(CseKey::Cvt(a, ty), NodeKind::Cvt(a), ty)
    }

    /// A call producing a value of type `ty`. Calls are never CSE'd.
    pub fn call(&mut self, sym: SymbolId, args: Vec<NodeId>, ty: Ty) -> NodeId {
        self.func.nodes.push(Node {
            kind: NodeKind::Call(sym, args),
            ty,
        });
        self.invalidate_loads();
        NodeId(self.func.nodes.len() as u32 - 1)
    }

    fn invalidate_loads(&mut self) {
        for id in self.load_cache.drain(..) {
            self.cse.retain(|_, v| *v != id);
        }
    }

    /// Appends `v = node`.
    pub fn set_vreg(&mut self, v: VregId, value: NodeId) {
        // A later read of `v` must not reuse a node created before
        // this write.
        self.cse.remove(&CseKey::ReadVreg(v));
        self.func.blocks[self.current.0 as usize]
            .stmts
            .push(Stmt::SetVreg(v, value));
    }

    /// Appends a store; conservatively invalidates all cached loads.
    pub fn store(&mut self, addr: NodeId, value: NodeId, ty: Ty) {
        self.invalidate_loads();
        self.func.blocks[self.current.0 as usize]
            .stmts
            .push(Stmt::Store { addr, value, ty });
    }

    /// Appends a call-for-effect statement.
    pub fn call_stmt(&mut self, call: NodeId) {
        self.func.blocks[self.current.0 as usize]
            .stmts
            .push(Stmt::CallStmt(call));
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, to: BlockId) {
        self.seal(Terminator::Jump(to));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_jump(
        &mut self,
        rel: BinOp,
        lhs: NodeId,
        rhs: NodeId,
        then_to: BlockId,
        else_to: BlockId,
    ) {
        assert!(rel.is_relational(), "cond_jump needs a relational op");
        self.seal(Terminator::CondJump {
            rel,
            lhs,
            rhs,
            then_to,
            else_to,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<NodeId>) {
        self.seal(Terminator::Ret(value));
    }

    fn seal(&mut self, term: Terminator) {
        let cur = self.current.0 as usize;
        assert!(!self.sealed[cur], "block {cur} terminated twice");
        self.func.blocks[cur].term = term;
        self.sealed[cur] = true;
    }

    /// Whether the current block already has a terminator.
    pub fn is_sealed(&self) -> bool {
        self.sealed[self.current.0 as usize]
    }

    /// Finishes construction. Unsealed blocks keep their default
    /// `Ret(None)` terminator.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cse_shares_pure_nodes_within_block() {
        let mut b = FuncBuilder::new("f", Some(Ty::Int));
        let v = b.new_vreg(Ty::Int);
        let x1 = b.read_vreg(v);
        let c = b.const_i(4, Ty::Int);
        let a1 = b.bin(BinOp::Add, x1, c, Ty::Int);
        let x2 = b.read_vreg(v);
        let c2 = b.const_i(4, Ty::Int);
        let a2 = b.bin(BinOp::Add, x2, c2, Ty::Int);
        assert_eq!(x1, x2);
        assert_eq!(c, c2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn cse_reset_across_blocks() {
        let mut b = FuncBuilder::new("f", None);
        let c1 = b.const_i(7, Ty::Int);
        let blk = b.new_block();
        b.jump(blk);
        b.switch_to(blk);
        let c2 = b.const_i(7, Ty::Int);
        assert_ne!(c1, c2);
    }

    #[test]
    fn store_invalidates_load_cache() {
        let mut b = FuncBuilder::new("f", None);
        let g = b.global_addr(SymbolId(0));
        let l1 = b.load(g, Ty::Int);
        let l1b = b.load(g, Ty::Int);
        assert_eq!(l1, l1b);
        let val = b.const_i(1, Ty::Int);
        b.store(g, val, Ty::Int);
        let l2 = b.load(g, Ty::Int);
        assert_ne!(l1, l2, "load across store must not be shared");
    }

    #[test]
    fn set_vreg_invalidates_read() {
        let mut b = FuncBuilder::new("f", None);
        let v = b.new_vreg(Ty::Int);
        let r1 = b.read_vreg(v);
        let c = b.const_i(5, Ty::Int);
        b.set_vreg(v, c);
        let r2 = b.read_vreg(v);
        assert_ne!(r1, r2);
    }

    #[test]
    fn cvt_to_same_type_is_identity() {
        let mut b = FuncBuilder::new("f", None);
        let c = b.const_i(3, Ty::Int);
        assert_eq!(b.cvt(c, Ty::Int), c);
        assert_ne!(b.cvt(c, Ty::Double), c);
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = FuncBuilder::new("f", None);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    fn call_not_csed_and_invalidates_loads() {
        let mut b = FuncBuilder::new("f", None);
        let g = b.global_addr(SymbolId(0));
        let l1 = b.load(g, Ty::Int);
        let c1 = b.call(SymbolId(1), vec![], Ty::Int);
        let c2 = b.call(SymbolId(1), vec![], Ty::Int);
        assert_ne!(c1, c2);
        let l2 = b.load(g, Ty::Int);
        assert_ne!(l1, l2);
    }
}
