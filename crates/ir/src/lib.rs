//! # marion-ir — the intermediate language
//!
//! Marion's front end (the paper used lcc) produces an intermediate
//! language of directed acyclic graphs built from typed low-level
//! operators, one DAG region per basic block. This crate defines that
//! IL: value [`Node`]s held in a per-function arena, effectful
//! [`Stmt`]s in source order inside [`Block`]s, and [`Terminator`]s
//! forming the control-flow graph.
//!
//! Cross-block values live in *pseudo-registers* ([`VregId`]): scalar
//! user variables that may reside in registers, exactly as in the
//! paper (§2.1). Aggregates and address-taken variables live in frame
//! [`Local`]s and are accessed through explicit `Load`/`Store`.
//!
//! The crate also provides:
//!
//! * [`FuncBuilder`] — an API for constructing functions with local
//!   common-subexpression sharing (nodes with more than one parent are
//!   later forced into registers by the selector);
//! * [`verify`](verify::verify_module) — structural and type checking;
//! * [`interp`](interp::Interp) — a reference interpreter used for
//!   differential testing against generated code running on the
//!   `marion-sim` pipeline simulator.
//!
//! Types and operators are shared with the Maril description language
//! ([`Ty`], [`BinOp`]) so selection patterns compare directly.

pub mod builder;
pub mod dot;
pub mod func;
pub mod interp;
pub mod module;
pub mod verify;

pub use builder::FuncBuilder;
pub use func::{
    Block, BlockId, Function, Local, LocalId, Node, NodeId, NodeKind, Stmt, Terminator, VregId,
};
pub use marion_maril::{BinOp, Ty, UnOp};
pub use module::{Global, GlobalInit, Module, SymbolId};
