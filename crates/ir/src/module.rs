//! Modules and global data.

use crate::func::{Function, NodeKind};
use std::fmt;

/// Index of a symbol (function or global) in a [`Module`]'s symbol
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Initial contents of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialised, `size` bytes.
    Zero(u32),
    /// 32-bit words (ints or raw float bits), in order.
    Words(Vec<u32>),
    /// 64-bit doubles, in order.
    Doubles(Vec<f64>),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl GlobalInit {
    /// Size in bytes of the initialised data.
    pub fn size(&self) -> u32 {
        match self {
            GlobalInit::Zero(n) => *n,
            GlobalInit::Words(w) => (w.len() * 4) as u32,
            GlobalInit::Doubles(d) => (d.len() * 8) as u32,
            GlobalInit::Bytes(b) => b.len() as u32,
        }
    }

    /// The raw bytes, little-endian.
    pub fn bytes(&self) -> Vec<u8> {
        match self {
            GlobalInit::Zero(n) => vec![0; *n as usize],
            GlobalInit::Words(w) => w.iter().flat_map(|v| v.to_le_bytes()).collect(),
            GlobalInit::Doubles(d) => d.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect(),
            GlobalInit::Bytes(b) => b.clone(),
        }
    }
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Initial contents (also fixes the size).
    pub init: GlobalInit,
}

/// A symbol table entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Symbol {
    /// A function defined in this module (index into
    /// [`Module::funcs`]).
    Func(usize),
    /// A global defined in this module (index into
    /// [`Module::globals`]).
    Global(usize),
    /// A name declared but not defined here.
    Extern(String),
}

/// A compilation unit: functions, globals and the symbol table tying
/// names to both.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Defined functions.
    pub funcs: Vec<Function>,
    /// Defined globals.
    pub globals: Vec<Global>,
    symbols: Vec<(String, Symbol)>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Adds a function, creating (or completing) its symbol.
    pub fn add_func(&mut self, func: Function) -> SymbolId {
        let idx = self.funcs.len();
        let name = func.name.clone();
        self.funcs.push(func);
        self.bind(name, Symbol::Func(idx))
    }

    /// Adds a global, creating (or completing) its symbol.
    pub fn add_global(&mut self, global: Global) -> SymbolId {
        let idx = self.globals.len();
        let name = global.name.clone();
        self.globals.push(global);
        self.bind(name, Symbol::Global(idx))
    }

    /// Interns a symbol name without a definition (external
    /// reference). Returns the existing id if already present.
    pub fn declare(&mut self, name: &str) -> SymbolId {
        if let Some(id) = self.symbol_id(name) {
            return id;
        }
        self.symbols
            .push((name.to_owned(), Symbol::Extern(name.to_owned())));
        SymbolId(self.symbols.len() as u32 - 1)
    }

    fn bind(&mut self, name: String, sym: Symbol) -> SymbolId {
        if let Some(pos) = self.symbols.iter().position(|(n, _)| *n == name) {
            self.symbols[pos].1 = sym;
            SymbolId(pos as u32)
        } else {
            self.symbols.push((name, sym));
            SymbolId(self.symbols.len() as u32 - 1)
        }
    }

    /// Looks up a symbol id by name.
    pub fn symbol_id(&self, name: &str) -> Option<SymbolId> {
        self.symbols
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| SymbolId(i as u32))
    }

    /// The name of a symbol.
    pub fn symbol_name(&self, id: SymbolId) -> &str {
        &self.symbols[id.0 as usize].0
    }

    /// The binding of a symbol.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize].1
    }

    /// Number of symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        match self.symbol_id(name).map(|id| self.symbol(id)) {
            Some(Symbol::Func(i)) => Some(&self.funcs[*i]),
            _ => None,
        }
    }

    /// Links `other` into this module: its defined functions and
    /// globals are added under `prefix`-ed names, and every symbol
    /// reference inside the absorbed function bodies is remapped to
    /// this module's symbol table. External references keep their
    /// unprefixed names and unify with (or forward-declare) this
    /// module's symbols, like a linker resolving an undefined symbol.
    ///
    /// Returns the new (prefixed) names of the absorbed functions, in
    /// `other.funcs` order. The caller must pick prefixes that keep
    /// defined names unique across the link.
    pub fn absorb(&mut self, other: &Module, prefix: &str) -> Vec<String> {
        // Pass 1: intern every symbol so the id map is complete before
        // any function body is rewritten (bodies may reference symbols
        // declared after them).
        let map: Vec<SymbolId> = other
            .symbols
            .iter()
            .map(|(name, sym)| match sym {
                Symbol::Func(_) | Symbol::Global(_) => self.declare(&format!("{prefix}{name}")),
                Symbol::Extern(_) => self.declare(name),
            })
            .collect();
        // Pass 2: definitions. `add_global`/`add_func` complete the
        // symbols declared above.
        for g in &other.globals {
            self.add_global(Global {
                name: format!("{prefix}{}", g.name),
                init: g.init.clone(),
            });
        }
        let mut names = Vec::with_capacity(other.funcs.len());
        for f in &other.funcs {
            let mut f = f.clone();
            f.name = format!("{prefix}{}", f.name);
            for node in &mut f.nodes {
                match &mut node.kind {
                    NodeKind::GlobalAddr(s) | NodeKind::Call(s, _) => *s = map[s.0 as usize],
                    _ => {}
                }
            }
            names.push(f.name.clone());
            self.add_func(f);
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::*;
    use marion_maril::Ty;

    fn empty_func(name: &str) -> Function {
        Function {
            name: name.into(),
            params: vec![],
            ret_ty: None,
            vreg_tys: vec![],
            locals: vec![],
            blocks: vec![Block {
                stmts: vec![],
                term: Terminator::Ret(None),
            }],
            nodes: vec![],
        }
    }

    #[test]
    fn declare_then_define_shares_symbol() {
        let mut m = Module::new();
        let fwd = m.declare("f");
        let def = m.add_func(empty_func("f"));
        assert_eq!(fwd, def);
        assert!(matches!(m.symbol(def), Symbol::Func(0)));
        assert!(m.func_by_name("f").is_some());
        assert!(m.func_by_name("g").is_none());
    }

    #[test]
    fn global_init_bytes() {
        assert_eq!(GlobalInit::Zero(3).bytes(), vec![0, 0, 0]);
        assert_eq!(
            GlobalInit::Words(vec![0x01020304]).bytes(),
            vec![4, 3, 2, 1]
        );
        let d = GlobalInit::Doubles(vec![1.0]);
        assert_eq!(d.size(), 8);
        assert_eq!(d.bytes(), 1.0f64.to_bits().to_le_bytes().to_vec());
        let _ = Ty::Double; // silence unused import in cfg(test)
    }
}
