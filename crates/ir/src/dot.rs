//! Graphviz rendering of a function's CFG and per-block DAGs, for
//! debugging.

use crate::func::*;
use std::fmt::Write as _;

/// Renders `func` as a `dot` digraph: one record node per basic block
/// listing its statements, plus CFG edges.
pub fn func_to_dot(func: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name);
    let _ = writeln!(out, "  node [shape=box fontname=monospace];");
    for (i, block) in func.blocks.iter().enumerate() {
        let mut label = format!("b{i}\\l");
        for stmt in &block.stmts {
            let text = match stmt {
                Stmt::SetVreg(v, n) => format!("{v} = {}", render(func, *n)),
                Stmt::Store { addr, value, ty } => {
                    format!("*({}):{ty} = {}", render(func, *addr), render(func, *value))
                }
                Stmt::CallStmt(n) => render(func, *n),
            };
            let _ = write!(label, "{}\\l", text.replace('"', "'"));
        }
        match &block.term {
            Terminator::Jump(t) => {
                let _ = write!(label, "jump {t}\\l");
            }
            Terminator::CondJump { rel, lhs, rhs, .. } => {
                let _ = write!(
                    label,
                    "if {} {rel} {}\\l",
                    render(func, *lhs),
                    render(func, *rhs)
                );
            }
            Terminator::Ret(Some(n)) => {
                let _ = write!(label, "ret {}\\l", render(func, *n));
            }
            Terminator::Ret(None) => {
                let _ = write!(label, "ret\\l");
            }
        }
        let _ = writeln!(out, "  b{i} [label=\"{label}\"];");
        for succ in block.term.successors() {
            let _ = writeln!(out, "  b{i} -> {succ};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders one node as an expression string.
pub fn render(func: &Function, id: NodeId) -> String {
    let node = func.node(id);
    match &node.kind {
        NodeKind::ConstI(v) => v.to_string(),
        NodeKind::ConstF(v) => format!("{v}"),
        NodeKind::ReadVreg(v) => v.to_string(),
        NodeKind::GlobalAddr(s) => format!("&{s}"),
        NodeKind::LocalAddr(l) => format!("&{l}"),
        NodeKind::Load(a) => format!("ld.{}[{}]", node.ty, render(func, *a)),
        NodeKind::Bin(op, a, b) => format!("({} {op} {})", render(func, *a), render(func, *b)),
        NodeKind::Un(op, a) => format!("{op}{}", render(func, *a)),
        NodeKind::Cvt(a) => format!("({}){}", node.ty, render(func, *a)),
        NodeKind::Call(s, args) => {
            let args: Vec<String> = args.iter().map(|a| render(func, *a)).collect();
            format!("{s}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use marion_maril::{BinOp, Ty};

    #[test]
    fn dot_output_mentions_blocks_and_edges() {
        let mut b = FuncBuilder::new("f", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let z = b.const_i(0, Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_jump(BinOp::Lt, x, z, t, e);
        b.switch_to(t);
        let one = b.const_i(1, Ty::Int);
        b.ret(Some(one));
        b.switch_to(e);
        let two = b.const_i(2, Ty::Int);
        b.ret(Some(two));
        let dot = func_to_dot(&b.finish());
        assert!(dot.contains("digraph"));
        assert!(dot.contains("b0 -> b1"));
        assert!(dot.contains("b0 -> b2"));
        assert!(dot.contains("if v0 < 0"));
    }
}
