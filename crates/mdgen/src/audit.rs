//! The differential-audit harness.
//!
//! For one generated machine, every workload in the suite is compiled
//! under all three strategies with three independent cross-checks:
//!
//! * **block legality** — every scheduled block is re-checked with
//!   both `sched::verify_schedule_with` and `explain::audit_schedule`
//!   (the independent checker that also validates provenance) against
//!   the DAG its scheduling discipline used;
//! * **differential execution** — the compiled program runs on the
//!   pipeline simulator and its `main` result must equal the IR
//!   interpreter's checksum (computed once per workload, machines
//!   don't change IR semantics);
//! * **reproducibility** — one rotating (workload, strategy) pair per
//!   machine is compiled twice and the rendered assembly must be
//!   byte-identical;
//! * **quality differentials** — every passing run's sim-measured and
//!   estimated cycles are recorded, and cross-strategy comparison
//!   flags a strategy drastically worse than the best on the same
//!   workload or an estimate implausibly far from the simulator —
//!   scheduler bugs that still produce correct code.
//!
//! The harness replicates the driver's per-function pipeline (glue →
//! select → strategy → emit → delay-slot fill) so the audited
//! schedules are exactly the ones behind the simulated program, then
//! assembles the same [`CompiledProgram`] the driver would.

use marion_core::driver::{CompileStats, CompiledProgram};
use marion_core::emit::{emit_func, fill_delay_slots, render_program, AsmProgram};
use marion_core::strategy::strategy_for;
use marion_core::{explain, glue, sched, select, EscapeRegistry, StrategyKind};
use marion_ir::interp::{Interp, Value};
use marion_maril::{Machine, Ty};
use marion_sim::{run_program, SimConfig};
use marion_trace::Tracer;
use marion_workloads::{livermore, suite, Workload};

/// A workload with its IR and interpreter checksum precomputed, so
/// the per-machine audit pays neither front-end nor interpreter cost.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Workload name (`LL3`, `nasker`, ...).
    pub name: String,
    /// C-subset source (kept for corpus entries).
    pub source: String,
    /// Compiled IR.
    pub module: marion_ir::Module,
    /// The interpreter's `main` checksum.
    pub expected: i64,
}

/// Prepares arbitrary workloads (used with probe programs too).
///
/// # Panics
///
/// Panics if a workload fails to compile or interpret — the bundled
/// suite is covered by its own tests, and probes are fixed strings.
pub fn prepare(workloads: &[Workload]) -> Vec<PreparedWorkload> {
    workloads
        .iter()
        .map(|w| {
            let module = w.module();
            let expected = interp_main(&module)
                .unwrap_or_else(|e| panic!("workload {}: interpreter: {e}", w.name));
            PreparedWorkload {
                name: w.name.clone(),
                source: w.source.clone(),
                module,
                expected,
            }
        })
        .collect()
}

/// The full audit suite: the compile-time programs (Table 3's
/// stand-ins) plus all fourteen Livermore kernels.
pub fn prepare_full_suite() -> Vec<PreparedWorkload> {
    let mut all = suite::programs();
    all.extend(livermore::kernels());
    prepare(&all)
}

/// A small deterministic subset for `--smoke` runs and CI: `sphot`
/// (the suite program that has caught every real fuzzer finding so
/// far — calls, doubles, spills) plus three short Livermore kernels
/// covering float pipelines, reductions, and control flow.
pub fn prepare_smoke_suite() -> Vec<PreparedWorkload> {
    let keep = ["sphot", "LL1", "LL3", "LL5"];
    let mut all = suite::programs();
    all.extend(livermore::kernels());
    all.retain(|w| keep.contains(&w.name.as_str()));
    prepare(&all)
}

/// Runs `main` in the IR interpreter and returns its integer result.
pub fn interp_main(module: &marion_ir::Module) -> Result<i64, String> {
    let mut interp = Interp::new(module, 1 << 22).with_budget(400_000_000);
    match interp.call_by_name("main", &[]) {
        Ok(Some(Value::I(v))) => Ok(v),
        Ok(other) => Err(format!("main returned {other:?}, expected an int")),
        Err(e) => Err(e.to_string()),
    }
}

/// What went wrong, at which stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Glue, selection, scheduling, allocation or emission refused a
    /// machine the front door accepted.
    Compile,
    /// `verify_schedule_with` or `audit_schedule` rejected a block.
    BlockAudit,
    /// Simulator result differs from the interpreter checksum.
    Differential,
    /// Two compiles of the same input rendered different bytes.
    Reproducibility,
}

impl FailureKind {
    /// Stable lowercase tag (corpus files, JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            FailureKind::Compile => "compile",
            FailureKind::BlockAudit => "block-audit",
            FailureKind::Differential => "differential",
            FailureKind::Reproducibility => "reproducibility",
        }
    }

    /// Parses [`FailureKind::tag`].
    pub fn from_tag(tag: &str) -> Option<FailureKind> {
        Some(match tag {
            "compile" => FailureKind::Compile,
            "block-audit" => FailureKind::BlockAudit,
            "differential" => FailureKind::Differential,
            "reproducibility" => FailureKind::Reproducibility,
            _ => return None,
        })
    }
}

/// One audit failure: which workload/strategy tripped, and how.
#[derive(Debug, Clone)]
pub struct AuditFailure {
    /// The check that failed.
    pub kind: FailureKind,
    /// Workload name.
    pub workload: String,
    /// Strategy in use.
    pub strategy: StrategyKind,
    /// Human-readable diagnosis.
    pub detail: String,
}

/// Sim-measured and estimated cycles for one passing
/// (workload, strategy) run — the raw material for cross-strategy
/// quality differentials. Only recorded when the differential check
/// itself passed: cycle counts from wrong code are noise.
#[derive(Debug, Clone)]
pub struct QualityObservation {
    /// Workload name.
    pub workload: String,
    /// Strategy that produced the code.
    pub strategy: StrategyKind,
    /// Simulator-measured cycles (with caches and memory system).
    pub sim_cycles: u64,
    /// Scheduler-estimated cycles for the same execution profile.
    pub est_cycles: u64,
}

/// A cross-strategy quality differential the audit could not explain:
/// either one strategy's code is drastically worse than the best
/// strategy on the same (machine, workload), or the schedule estimate
/// and the simulator disagree beyond any plausible cache effect. Both
/// point at scheduler or description bugs that still produce *correct*
/// code — exactly the class the checksum differential cannot see.
#[derive(Debug, Clone)]
pub struct QualityAnomaly {
    /// Workload name.
    pub workload: String,
    /// Strategy whose numbers look wrong.
    pub strategy: StrategyKind,
    /// Human-readable diagnosis.
    pub detail: String,
}

/// A strategy this much slower (in sim cycles) than the best strategy
/// on the same machine and workload is flagged. Generated machines
/// legitimately spread strategies far wider than the bundled ones —
/// deep exposed pipelines reward scheduling enormously — so the bound
/// is deliberately loose; it exists to catch pathological blowups
/// (a strategy emitting serialized code), not ordinary gaps.
pub const QUALITY_GAP_LIMIT: f64 = 3.0;

/// Sim/estimate ratio bounds. The simulator adds cache and memory
/// cycles the estimate excludes (ratio > 1 expected); a ratio below
/// 0.5 means the estimate double-counts, above 10 that the schedule
/// estimate misses most of the machine's real cost.
pub const QUALITY_DRIFT_RANGE: (f64, f64) = (0.5, 10.0);

/// The audit result for one machine.
#[derive(Debug, Clone, Default)]
pub struct MachineAudit {
    /// Non-empty blocks whose schedules passed both checkers.
    pub blocks_audited: usize,
    /// (workload × strategy) compilations performed.
    pub compilations: usize,
    /// Workloads differentially executed (sim vs interpreter).
    pub workloads_run: usize,
    /// Everything that failed.
    pub failures: Vec<AuditFailure>,
    /// Cycle observations from every passing run.
    pub quality: Vec<QualityObservation>,
}

impl MachineAudit {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Cross-strategy quality differentials: for every workload with
    /// observations from all strategies, flags any strategy more than
    /// [`QUALITY_GAP_LIMIT`]× the best strategy's sim cycles, and any
    /// run whose sim/estimate ratio falls outside
    /// [`QUALITY_DRIFT_RANGE`].
    pub fn quality_anomalies(&self) -> Vec<QualityAnomaly> {
        let mut anomalies = Vec::new();
        let mut workloads: Vec<&str> = self.quality.iter().map(|q| q.workload.as_str()).collect();
        workloads.dedup();
        for w in workloads {
            let obs: Vec<&QualityObservation> =
                self.quality.iter().filter(|q| q.workload == w).collect();
            let best = obs.iter().map(|q| q.sim_cycles).min().unwrap_or(0);
            for q in obs {
                if best > 0 && q.sim_cycles as f64 > best as f64 * QUALITY_GAP_LIMIT {
                    anomalies.push(QualityAnomaly {
                        workload: q.workload.clone(),
                        strategy: q.strategy,
                        detail: format!(
                            "sim {} cycles vs best strategy's {best} (> {QUALITY_GAP_LIMIT}x)",
                            q.sim_cycles
                        ),
                    });
                }
                if q.est_cycles > 0 {
                    let ratio = q.sim_cycles as f64 / q.est_cycles as f64;
                    let (lo, hi) = QUALITY_DRIFT_RANGE;
                    if ratio < lo || ratio > hi {
                        anomalies.push(QualityAnomaly {
                            workload: q.workload.clone(),
                            strategy: q.strategy,
                            detail: format!(
                                "sim {} vs estimate {} cycles (ratio {ratio:.2} outside \
                                 {lo}..{hi})",
                                q.sim_cycles, q.est_cycles
                            ),
                        });
                    }
                }
            }
        }
        anomalies
    }
}

/// Audits one machine over the prepared workloads.
///
/// `repro_rotation` picks which (workload, strategy) pair gets the
/// double-compile byte-identity check — callers rotate it per machine
/// so a 200-machine run covers many pairs without doubling every
/// compile.
pub fn audit_machine(
    machine: &Machine,
    escapes: &EscapeRegistry,
    workloads: &[PreparedWorkload],
    repro_rotation: usize,
) -> MachineAudit {
    let mut audit = MachineAudit::default();
    let pairs = workloads.len() * StrategyKind::ALL.len();
    let repro_pick = if pairs == 0 {
        0
    } else {
        repro_rotation % pairs
    };
    for (wi, w) in workloads.iter().enumerate() {
        for (si, &strategy) in StrategyKind::ALL.iter().enumerate() {
            let pair_index = wi * StrategyKind::ALL.len() + si;
            audit_one(
                machine,
                escapes,
                w,
                strategy,
                pair_index == repro_pick,
                &mut audit,
            );
        }
        audit.workloads_run += 1;
    }
    audit
}

/// Audits a single (workload, strategy) pair — the minimiser's and
/// corpus replayer's unit of reproduction. No reproducibility check.
pub fn audit_pair(
    machine: &Machine,
    escapes: &EscapeRegistry,
    w: &PreparedWorkload,
    strategy: StrategyKind,
) -> Vec<AuditFailure> {
    let mut audit = MachineAudit::default();
    audit_one(machine, escapes, w, strategy, false, &mut audit);
    audit.failures
}

/// Compiles one workload under one strategy with block auditing, then
/// simulates and cross-checks. Failures are appended to `audit`.
fn audit_one(
    machine: &Machine,
    escapes: &EscapeRegistry,
    w: &PreparedWorkload,
    strategy: StrategyKind,
    check_repro: bool,
    audit: &mut MachineAudit,
) {
    let fail = |audit: &mut MachineAudit, kind, detail: String| {
        audit.failures.push(AuditFailure {
            kind,
            workload: w.name.clone(),
            strategy,
            detail,
        });
    };
    audit.compilations += 1;
    let (program, blocks) = match compile_audited(machine, escapes, &w.module, strategy) {
        Ok(ok) => ok,
        Err((kind, detail)) => {
            fail(audit, kind, detail);
            return;
        }
    };
    audit.blocks_audited += blocks;
    if check_repro {
        audit.compilations += 1;
        match compile_audited(machine, escapes, &w.module, strategy) {
            Ok((second, _)) => {
                if program.render(machine) != second.render(machine) {
                    fail(
                        audit,
                        FailureKind::Reproducibility,
                        "two compiles rendered different assembly".to_string(),
                    );
                }
            }
            Err((_, detail)) => {
                fail(
                    audit,
                    FailureKind::Reproducibility,
                    format!("second compile failed: {detail}"),
                );
            }
        }
    }
    // The simulator is allowed to panic on machine-level type
    // confusion (a fuzzer finding in itself) — catch it and record a
    // differential failure instead of killing the whole run.
    let sim = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_program(
            machine,
            &program,
            "main",
            &[],
            Some(Ty::Int),
            &SimConfig::default(),
        )
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("panic");
        Err(marion_sim::SimError(format!("simulator panicked: {msg}")))
    });
    match sim {
        Ok(run) => match run.result {
            Some(Value::I(got)) if got == w.expected => {
                audit.quality.push(QualityObservation {
                    workload: w.name.clone(),
                    strategy,
                    sim_cycles: run.cycles,
                    est_cycles: marion_sim::run::estimated_cycles(&program, &run.block_counts),
                });
            }
            Some(Value::I(got)) => fail(
                audit,
                FailureKind::Differential,
                format!("interp {} != sim {got}", w.expected),
            ),
            other => fail(
                audit,
                FailureKind::Differential,
                format!("sim returned {other:?}, expected {}", w.expected),
            ),
        },
        Err(e) => fail(audit, FailureKind::Differential, format!("simulator: {e}")),
    }
}

/// The driver's per-function pipeline with per-block auditing wired
/// in between scheduling and emission, assembled into the same
/// [`CompiledProgram`] the driver builds. Returns the program and the
/// number of audited (non-empty) blocks.
#[allow(clippy::result_large_err)]
pub fn compile_audited(
    machine: &Machine,
    escapes: &EscapeRegistry,
    module: &marion_ir::Module,
    strategy_kind: StrategyKind,
) -> Result<(CompiledProgram, usize), (FailureKind, String)> {
    let mut module = module.clone();
    marion_core::driver::materialize_float_constants(&mut module);
    let strategy = strategy_for(strategy_kind);
    let tracer = Tracer::off();
    let mut asm = AsmProgram::default();
    let mut blocks_audited = 0usize;
    for func in &module.funcs {
        let mut f = func.clone();
        glue::apply_glue(machine, &mut f)
            .map_err(|e| (FailureKind::Compile, format!("glue {}: {e}", f.name)))?;
        let mut code = select::select_func(machine, escapes, &module, &f)
            .map_err(|e| (FailureKind::Compile, format!("select {}: {e}", f.name)))?;
        let (schedules, _stats) = strategy
            .run(machine, &mut code, &tracer, &f.name)
            .map_err(|e| (FailureKind::Compile, format!("strategy {}: {e}", f.name)))?;
        for (bi, (block, schedule)) in code.blocks.iter().zip(&schedules).enumerate() {
            if block.insts.is_empty() {
                continue;
            }
            let discipline = schedule.explanation.discipline;
            let (dag, check_rule1) = explain::dag_for_discipline(machine, block, discipline);
            sched::verify_schedule_with(machine, block, &dag, schedule, check_rule1).map_err(
                |e| {
                    (
                        FailureKind::BlockAudit,
                        format!("{}/b{bi}: verify_schedule: {e}", f.name),
                    )
                },
            )?;
            explain::audit_schedule(machine, block, &dag, schedule, check_rule1).map_err(|e| {
                (
                    FailureKind::BlockAudit,
                    format!("{}/b{bi}: audit_schedule: {e}", f.name),
                )
            })?;
            blocks_audited += 1;
        }
        let mut emitted = emit_func(machine, &code, &schedules)
            .map_err(|e| (FailureKind::Compile, format!("emit {}: {e}", f.name)))?;
        fill_delay_slots(machine, &mut emitted);
        asm.funcs.push(emitted);
    }
    let symbols: Vec<String> = (0..module.symbol_count())
        .map(|i| module.symbol_name(marion_ir::SymbolId(i as u32)).to_owned())
        .collect();
    let globals = module
        .globals
        .iter()
        .map(|g| (g.name.clone(), g.init.clone()))
        .collect();
    Ok((
        CompiledProgram {
            asm,
            globals,
            symbols,
            machine_name: machine.name().to_owned(),
            strategy: strategy_kind,
            stats: CompileStats::default(),
            trace: None,
            cache: None,
        },
        blocks_audited,
    ))
}

/// Renders a program for byte-comparison (exposed for tests).
pub fn render(machine: &Machine, program: &CompiledProgram) -> String {
    render_program(machine, &program.asm, &program.symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit harness must agree with reality on a known-good
    /// machine: TOYP over one small kernel passes every check.
    #[test]
    fn toyp_passes_the_audit_on_a_small_kernel() {
        let spec = marion_machines::load("toyp");
        let kernels = livermore::kernels();
        let small: Vec<Workload> = kernels.into_iter().filter(|k| k.name == "LL3").collect();
        let prepared = prepare(&small);
        let audit = audit_machine(&spec.machine, &spec.escapes, &prepared, 0);
        assert!(audit.passed(), "failures: {:?}", audit.failures);
        assert!(audit.blocks_audited > 0);
        assert_eq!(audit.workloads_run, 1);
        // The rotation doubled exactly one compile.
        assert_eq!(audit.compilations, StrategyKind::ALL.len() + 1);
        // Every passing run left a cycle observation, and a known-good
        // machine shows no cross-strategy anomaly.
        assert_eq!(audit.quality.len(), StrategyKind::ALL.len());
        assert!(audit.quality.iter().all(|q| q.sim_cycles > 0));
        assert!(audit.quality_anomalies().is_empty());
    }

    /// The anomaly detector fires on a pathological gap and on
    /// implausible drift, and stays quiet inside the bounds.
    #[test]
    fn quality_anomalies_flag_gaps_and_drift() {
        let obs = |strategy, sim, est| QualityObservation {
            workload: "LL1".to_string(),
            strategy,
            sim_cycles: sim,
            est_cycles: est,
        };
        let mut audit = MachineAudit {
            quality: vec![
                obs(StrategyKind::Postpass, 1000, 900),
                obs(StrategyKind::Ips, 900, 850),
                obs(StrategyKind::Rase, 880, 840),
            ],
            ..MachineAudit::default()
        };
        assert!(audit.quality_anomalies().is_empty());
        // One strategy 4x the best: a gap anomaly.
        audit.quality[0].sim_cycles = 4000;
        let anomalies = audit.quality_anomalies();
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert!(anomalies[0].detail.contains("best strategy"));
        // Estimate wildly below sim: a drift anomaly.
        audit.quality[0].sim_cycles = 1000;
        audit.quality[0].est_cycles = 50;
        let anomalies = audit.quality_anomalies();
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert!(anomalies[0].detail.contains("ratio"));
    }
}
