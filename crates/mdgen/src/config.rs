//! The generator's parameter space.
//!
//! A [`MachineConfig`] is a point in the space of machines the
//! generator can describe: a TOYP-shaped validity envelope (the fixed
//! calling convention, immediate formats and escape contract every
//! generated machine shares so the full workload suite is guaranteed
//! to compile) with every scheduling-relevant dimension varied —
//! issue width, operation latencies, branch delay slots, register
//! file sizes and the callee-save split, and optional explicitly
//! advanced floating-point pipelines (temporal clocks, latch chains
//! of varying depth and packing classes, the i860 features of paper
//! §4.5–4.6).
//!
//! Configs are sampled deterministically from a seed via the shared
//! [`marion_rng::SplitMix64`] stream and can be *shrunk*: each
//! [`shrink_steps`] transform removes one source of complexity, so a
//! failing machine minimises toward the simplest config that still
//! reproduces the failure.

use marion_rng::SplitMix64;

/// How instructions contend for issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueModel {
    /// TOYP-style: every instruction claims the fetch stage, one
    /// instruction per cycle.
    Single,
    /// i860-style: the integer and floating units draw from disjoint
    /// resource sets, so one of each may issue per cycle.
    Dual,
}

/// An explicitly advanced floating-point pipeline pair (adder and
/// multiplier), modelled on the i860's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EapConfig {
    /// Latches in the adder chain (`a1..aK`); the chain is
    /// `A1/S1, A2, …, AWB`. 2..=4 keeps selection's recursive chain
    /// match well inside its depth bound.
    pub add_stages: u32,
    /// Latches in the multiplier chain (`m1..mJ`).
    pub mul_stages: u32,
    /// One `%clock` shared by both pipes (they advance together)
    /// instead of a clock per pipe.
    pub shared_clock: bool,
    /// Whether adder and multiplier sub-operations share a dual
    /// long-word element, i.e. may pack into one instruction word.
    pub cross_packing: bool,
}

/// One sampled machine: every knob the generator varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// The seed this config was sampled from (the machine's identity).
    pub seed: u64,
    /// Double registers; the integer file is exactly twice as large
    /// and overlays it (`%equiv r[0] d[0]`), preserving the TOYP
    /// half-register escape contract.
    pub dbl_regs: u32,
    /// First callee-save integer register (`%calleesave
    /// r[callee_save_from : int_regs-1]`). At least 4 so the argument
    /// and return-address registers stay caller-save.
    pub callee_save_from: u32,
    /// Issue width model.
    pub issue: IssueModel,
    /// Integer load-to-use latency.
    pub load_latency: u32,
    /// Iterative integer multiply latency.
    pub mul_latency: u32,
    /// Integer divide/remainder latency.
    pub div_latency: u32,
    /// Double add/subtract latency (plain pipeline; an EAP chain's
    /// effective latency is its stage count instead).
    pub fadd_latency: u32,
    /// Double multiply latency.
    pub fmul_latency: u32,
    /// Double divide latency.
    pub fdiv_latency: u32,
    /// Branch latency.
    pub branch_latency: u32,
    /// Branch delay slots (0..=2).
    pub delay_slots: u32,
    /// Extra float-op-to-store latency published as `%aux` pairs
    /// (`fadd.d : st.d` and `fmul.d : st.d`, or the EAP write-backs).
    pub store_aux: u32,
    /// Explicitly advanced FP pipelines, when present.
    pub eap: Option<EapConfig>,
}

impl MachineConfig {
    /// Number of integer registers (always twice the double file).
    pub fn int_regs(&self) -> u32 {
        self.dbl_regs * 2
    }

    /// Samples one config from a seed. Every field is drawn from the
    /// seed's own SplitMix64 stream, so equal seeds give equal
    /// configs byte-for-byte.
    pub fn sample(seed: u64) -> MachineConfig {
        let mut rng = SplitMix64::new(seed);
        let dbl_regs = 4 + rng.below(13) as u32; // 4..=16 → r: 8..=32
        let int_regs = dbl_regs * 2;
        // Callee-save split: keep r0 (zero), r1 (retaddr), r2/r3
        // (args) caller-save; leave at least two caller-save
        // scratch registers above the args.
        let callee_save_from = 4 + rng.below(u64::from(int_regs - 5)) as u32;
        let issue = if rng.below(5) < 2 {
            IssueModel::Dual
        } else {
            IssueModel::Single
        };
        let eap = if rng.below(5) < 2 {
            Some(EapConfig {
                add_stages: 2 + rng.below(3) as u32, // 2..=4
                mul_stages: 2 + rng.below(3) as u32,
                shared_clock: rng.below(3) == 0,
                cross_packing: rng.below(2) == 0,
            })
        } else {
            None
        };
        MachineConfig {
            seed,
            dbl_regs,
            callee_save_from,
            issue,
            load_latency: 1 + rng.below(4) as u32,   // 1..=4
            mul_latency: 2 + rng.below(11) as u32,   // 2..=12
            div_latency: 8 + rng.below(33) as u32,   // 8..=40
            fadd_latency: 2 + rng.below(7) as u32,   // 2..=8
            fmul_latency: 3 + rng.below(8) as u32,   // 3..=10
            fdiv_latency: 10 + rng.below(21) as u32, // 10..=30
            branch_latency: 1 + rng.below(3) as u32, // 1..=3
            delay_slots: rng.below(3) as u32,        // 0..=2
            store_aux: 1 + rng.below(4) as u32,      // 1..=4 extra cycles
            eap,
        }
    }

    /// A one-line human summary of the knobs (for logs and reports).
    pub fn summary(&self) -> String {
        let issue = match self.issue {
            IssueModel::Single => "single",
            IssueModel::Dual => "dual",
        };
        let eap = match self.eap {
            None => "none".to_string(),
            Some(e) => format!(
                "a{}m{}{}{}",
                e.add_stages,
                e.mul_stages,
                if e.shared_clock { " shared-clk" } else { "" },
                if e.cross_packing { " xpack" } else { "" }
            ),
        };
        format!(
            "r{}/d{} cs@{} {issue}-issue ld{} mul{} div{} fadd{} fmul{} fdiv{} br{}+{}slot aux+{} eap:{eap}",
            self.int_regs(),
            self.dbl_regs,
            self.callee_save_from,
            self.load_latency,
            self.mul_latency,
            self.div_latency,
            self.fadd_latency,
            self.fmul_latency,
            self.fdiv_latency,
            self.branch_latency,
            self.delay_slots,
            self.store_aux,
        )
    }

    /// The minimal config every shrink sequence converges toward.
    pub fn minimal(seed: u64) -> MachineConfig {
        MachineConfig {
            seed,
            dbl_regs: 4,
            callee_save_from: 4,
            issue: IssueModel::Single,
            load_latency: 1,
            mul_latency: 2,
            div_latency: 8,
            fadd_latency: 2,
            fmul_latency: 3,
            fdiv_latency: 10,
            branch_latency: 1,
            delay_slots: 0,
            store_aux: 1,
            eap: None,
        }
    }
}

/// One named shrinking transform: returns `Some(simpler)` when it
/// changes the config, `None` when already applied.
pub type ShrinkStep = (&'static str, fn(&MachineConfig) -> Option<MachineConfig>);

/// The ordered shrink ladder: big structural removals first, then
/// individual latency and size reductions. `minimize` applies each
/// greedily, keeping a step only when the failure still reproduces.
pub fn shrink_steps() -> Vec<ShrinkStep> {
    fn set<F: FnOnce(&mut MachineConfig)>(c: &MachineConfig, f: F) -> Option<MachineConfig> {
        let mut out = *c;
        f(&mut out);
        (out != *c).then_some(out)
    }
    vec![
        ("drop-eap", |c| set(c, |c| c.eap = None)),
        ("single-issue", |c| set(c, |c| c.issue = IssueModel::Single)),
        ("no-delay-slots", |c| set(c, |c| c.delay_slots = 0)),
        ("shallow-eap", |c| {
            set(c, |c| {
                if let Some(e) = &mut c.eap {
                    e.add_stages = 2;
                    e.mul_stages = 2;
                    e.shared_clock = false;
                    e.cross_packing = false;
                }
            })
        }),
        ("unit-latencies", |c| {
            set(c, |c| {
                c.load_latency = 1;
                c.mul_latency = 2;
                c.div_latency = 8;
                c.fadd_latency = 2;
                c.fmul_latency = 3;
                c.fdiv_latency = 10;
                c.branch_latency = 1;
                c.store_aux = 1;
            })
        }),
        ("minimal-registers", |c| {
            set(c, |c| {
                c.dbl_regs = 4;
                c.callee_save_from = 4;
            })
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(MachineConfig::sample(42), MachineConfig::sample(42));
        assert_ne!(MachineConfig::sample(42), MachineConfig::sample(43));
    }

    #[test]
    fn sampled_configs_stay_in_bounds() {
        for seed in 0..500 {
            let c = MachineConfig::sample(seed);
            assert!((4..=16).contains(&c.dbl_regs), "{c:?}");
            assert!(c.callee_save_from >= 4 && c.callee_save_from < c.int_regs() - 1);
            assert!(c.delay_slots <= 2);
            if let Some(e) = c.eap {
                assert!((2..=4).contains(&e.add_stages));
                assert!((2..=4).contains(&e.mul_stages));
            }
        }
    }

    #[test]
    fn shrink_ladder_converges_to_the_minimal_config() {
        // A maximally complex config: every step has something to do.
        let c = MachineConfig {
            seed: 7,
            dbl_regs: 16,
            callee_save_from: 10,
            issue: IssueModel::Dual,
            load_latency: 4,
            mul_latency: 12,
            div_latency: 40,
            fadd_latency: 8,
            fmul_latency: 10,
            fdiv_latency: 30,
            branch_latency: 3,
            delay_slots: 2,
            store_aux: 4,
            eap: Some(EapConfig {
                add_stages: 4,
                mul_stages: 3,
                shared_clock: true,
                cross_packing: true,
            }),
        };
        let mut current = c;
        for (_, step) in shrink_steps() {
            if let Some(next) = step(&current) {
                current = next;
            }
        }
        assert_eq!(current, MachineConfig::minimal(7));
        // Idempotence: nothing fires on the minimal config.
        for (name, step) in shrink_steps() {
            assert!(step(&current).is_none(), "{name} fired on minimal");
        }
    }
}
