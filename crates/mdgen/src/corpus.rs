//! The corpus: minimised reproducers on disk.
//!
//! Every failure `marion-fuzz` finds is minimised and written to
//! `corpus/` as one plain-text file: a small header, the machine's
//! canonical Maril text, and the C program that tripped it. The
//! regression suite (`tests/retarget_corpus.rs`) replays every entry
//! on each run — a corpus entry is a bug that *was* found, so replay
//! must pass once the bug is fixed, and a reappearing failure points
//! at a regression with a ready-made reproducer.
//!
//! The format is deliberately dumb — `key: value` header lines, two
//! `---`-fenced sections — so entries stay reviewable in a diff and
//! writable by hand.

use crate::audit::{audit_pair, FailureKind, PreparedWorkload};
use crate::minimize::Minimized;
use marion_core::StrategyKind;
use marion_maril::Machine;
use std::path::{Path, PathBuf};

/// One reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Generator seed of the (possibly shrunk) machine.
    pub seed: u64,
    /// Which check failed when the entry was recorded.
    pub kind: FailureKind,
    /// Strategy under which it failed.
    pub strategy: StrategyKind,
    /// Workload or probe name.
    pub workload: String,
    /// One-line knob summary (informational).
    pub summary: String,
    /// One-line diagnosis when recorded (informational).
    pub detail: String,
    /// Canonical Maril text of the machine.
    pub machine_text: String,
    /// C source of the reproducing program.
    pub program: String,
}

const MACHINE_FENCE: &str = "--- machine ---";
const PROGRAM_FENCE: &str = "--- program ---";

impl CorpusEntry {
    /// Builds an entry from a minimised failure.
    pub fn from_minimized(min: &Minimized) -> CorpusEntry {
        CorpusEntry {
            seed: min.machine.config.seed,
            kind: min.kind,
            strategy: min.strategy,
            workload: min.workload_name.clone(),
            summary: min.machine.config.summary(),
            detail: min.detail.replace('\n', " "),
            machine_text: min.machine.text.clone(),
            program: min.program.trim().to_string(),
        }
    }

    /// The machine's name as fed to `Machine::parse`.
    pub fn machine_name(&self) -> String {
        format!("gen-{:016x}", self.seed)
    }

    /// A stable file name for this entry.
    pub fn file_name(&self) -> String {
        format!(
            "seed-{:016x}-{}-{}-{}.txt",
            self.seed,
            self.kind.tag(),
            self.strategy.name().to_ascii_lowercase(),
            self.workload
        )
    }

    /// Renders the on-disk form.
    pub fn render(&self) -> String {
        format!(
            "# marion-fuzz corpus entry\n\
             version: 1\n\
             seed: {:#018x}\n\
             kind: {}\n\
             strategy: {}\n\
             workload: {}\n\
             summary: {}\n\
             detail: {}\n\
             {MACHINE_FENCE}\n\
             {}\n\
             {PROGRAM_FENCE}\n\
             {}\n",
            self.seed,
            self.kind.tag(),
            self.strategy.name().to_ascii_lowercase(),
            self.workload,
            self.summary,
            self.detail,
            self.machine_text.trim_end(),
            self.program.trim_end(),
        )
    }

    /// Parses the [`CorpusEntry::render`] form.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let machine_at = text
            .find(MACHINE_FENCE)
            .ok_or_else(|| format!("missing `{MACHINE_FENCE}` fence"))?;
        let program_at = text
            .find(PROGRAM_FENCE)
            .ok_or_else(|| format!("missing `{PROGRAM_FENCE}` fence"))?;
        if program_at < machine_at {
            return Err("program fence precedes machine fence".to_string());
        }
        let header = &text[..machine_at];
        // Canonical Maril text (print_description output) ends with a
        // newline; restore it after fence trimming so parse∘render is
        // the identity on entries holding canonical text.
        let machine_text = format!(
            "{}\n",
            text[machine_at + MACHINE_FENCE.len()..program_at].trim()
        );
        let program = text[program_at + PROGRAM_FENCE.len()..].trim().to_string();
        let mut seed = None;
        let mut kind = None;
        let mut strategy = None;
        let mut workload = None;
        let mut summary = String::new();
        let mut detail = String::new();
        for line in header.lines() {
            let line = line.trim();
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match key.trim() {
                "seed" => {
                    let digits = value.trim_start_matches("0x");
                    seed = Some(
                        u64::from_str_radix(digits, 16)
                            .map_err(|e| format!("bad seed `{value}`: {e}"))?,
                    );
                }
                "kind" => {
                    kind = Some(
                        FailureKind::from_tag(value)
                            .ok_or_else(|| format!("bad kind `{value}`"))?,
                    );
                }
                "strategy" => {
                    strategy = Some(
                        StrategyKind::parse(value)
                            .ok_or_else(|| format!("bad strategy `{value}`"))?,
                    );
                }
                "workload" => workload = Some(value.to_string()),
                "summary" => summary = value.to_string(),
                "detail" => detail = value.to_string(),
                _ => {}
            }
        }
        Ok(CorpusEntry {
            seed: seed.ok_or("missing `seed:`")?,
            kind: kind.ok_or("missing `kind:`")?,
            strategy: strategy.ok_or("missing `strategy:`")?,
            workload: workload.ok_or("missing `workload:`")?,
            summary,
            detail,
            machine_text,
            program,
        })
    }

    /// Replays the entry: the machine must pass the front door and
    /// the recorded (workload, strategy) pair must pass the full
    /// audit. `Err` carries the replayed failure — the recorded bug
    /// is back (or was never fixed).
    pub fn replay(&self) -> Result<(), String> {
        let machine = Machine::parse(&self.machine_name(), &self.machine_text)
            .map_err(|e| format!("machine rejected: {e}"))?;
        let module = marion_frontend::compile(&self.program)
            .map_err(|e| format!("program rejected: {e}"))?;
        let expected = crate::audit::interp_main(&module)?;
        let prepared = PreparedWorkload {
            name: self.workload.clone(),
            source: self.program.clone(),
            module,
            expected,
        };
        // Generated machines all share the TOYP escape contract.
        let escapes = marion_machines::toyp::escapes();
        let failures = audit_pair(&machine, &escapes, &prepared, self.strategy);
        match failures.first() {
            None => Ok(()),
            Some(f) => Err(format!("{}: {}", f.kind.tag(), f.detail)),
        }
    }
}

/// Reads every `*.txt` entry in `dir`, sorted by file name. A missing
/// directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(out),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry = CorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, entry));
    }
    Ok(out)
}

/// Writes an entry into `dir` (created if needed). Returns the path.
pub fn write_entry(dir: &Path, entry: &CorpusEntry) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(entry.file_name());
    std::fs::write(&path, entry.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CorpusEntry {
        let gen = crate::emit::generate(11).unwrap();
        CorpusEntry {
            seed: 11,
            kind: FailureKind::Differential,
            strategy: StrategyKind::Ips,
            summary: gen.config.summary(),
            detail: "interp 42 != sim 41".to_string(),
            workload: "probe-int-arith".to_string(),
            machine_text: gen.text,
            program: "int main() { return 42; }".to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let entry = sample_entry();
        let parsed = CorpusEntry::parse(&entry.render()).unwrap();
        assert_eq!(parsed, entry);
        // And the parsed machine text still compiles.
        Machine::parse(&parsed.machine_name(), &parsed.machine_text).unwrap();
    }

    #[test]
    fn replay_passes_on_a_healthy_machine() {
        // Seed 11's machine works today, so replaying a recorded
        // (fixed) failure against it must succeed.
        sample_entry().replay().unwrap();
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(CorpusEntry::parse("no fences at all").is_err());
        let entry = sample_entry().render();
        let broken = entry.replace("kind: differential", "kind: nonsense");
        assert!(CorpusEntry::parse(&broken).is_err());
    }
}
