//! # marion-mdgen — generative machine descriptions + differential audit
//!
//! A seeded, deterministic generator of Maril machine descriptions
//! and the audit harness that turns them into a retargeting fuzzer
//! (the `marion-fuzz` binary):
//!
//! * [`config`] — the sampled parameter space: issue width, operation
//!   latencies, delay slots, register-class shapes and sizes, and
//!   optional explicitly advanced FP pipelines (temporal clocks,
//!   latch chains, packing classes), plus the shrink ladder;
//! * [`emit`] — renders a config as Maril text and canonicalises it
//!   through `lexer → parser → pretty::print_description`, so every
//!   generated machine enters the compiler through the same front
//!   door as the hand-written ones;
//! * [`audit`] — per machine, compiles the full workload suite under
//!   all three strategies and cross-checks (a) simulator execution
//!   results against IR-interpreter checksums, (b) `audit_schedule`
//!   legality and provenance on every block, (c) byte-identical
//!   recompilation;
//! * [`minimize`] — greedy failure shrinking over the config ladder
//!   and a probe-program ladder, producing small reproducers;
//! * [`corpus`] — the plain-text reproducer format written to
//!   `corpus/` and replayed as regression tests.

pub mod audit;
pub mod config;
pub mod corpus;
pub mod emit;
pub mod minimize;

pub use audit::{audit_machine, AuditFailure, FailureKind, MachineAudit, PreparedWorkload};
pub use config::{EapConfig, IssueModel, MachineConfig};
pub use emit::{generate, generate_from_config, GeneratedMachine};
