//! Config → Maril text.
//!
//! The emitter renders a [`MachineConfig`] as a complete Maril
//! machine description shaped like TOYP (the paper's Figures 1–3
//! machine): the same mnemonics, calling convention, immediate
//! formats and glue rules, so the TOYP escape registry
//! (`*li32`/`*movd`/`*cvt8`/`*cvt16`) and the whole workload suite
//! work unchanged — while issue width, latencies, delay slots,
//! register file sizes and the optional explicitly advanced FP
//! pipelines all come from the config.
//!
//! The raw text is then pushed through the real front half of the
//! language (`lexer → parser`) and re-rendered with
//! [`marion_maril::pretty::print_description`]; that printed form is
//! the machine's *canonical text* — the exact bytes later fed to
//! [`Machine::parse`], hashed for distinctness and stored in corpus
//! entries. Nothing about a generated machine bypasses the front
//! door.

use crate::config::{IssueModel, MachineConfig};
use marion_maril::lexer::lex;
use marion_maril::parser::parse;
use marion_maril::pretty::print_description;
use marion_maril::{Machine, MarilError};
use std::fmt::Write;

/// One generated machine: its sampled config and canonical text.
#[derive(Debug, Clone)]
pub struct GeneratedMachine {
    /// The sampled knobs.
    pub config: MachineConfig,
    /// `gen-<seed hex>` — the name `Machine::parse` is given.
    pub name: String,
    /// Canonical Maril text (`print_description` of the parsed raw
    /// emission).
    pub text: String,
}

impl GeneratedMachine {
    /// Compiles the canonical text through the full front door.
    pub fn machine(&self) -> Result<Machine, Box<MarilError>> {
        Machine::parse(&self.name, &self.text)
    }
}

/// Samples the config for `seed`, emits it and canonicalises the
/// text. `Err` means the emitter produced text the parser rejects —
/// a generator bug, surfaced rather than hidden.
pub fn generate(seed: u64) -> Result<GeneratedMachine, MarilError> {
    let config = MachineConfig::sample(seed);
    generate_from_config(&config)
}

/// Emits and canonicalises a specific config (used by the minimiser,
/// which edits configs directly).
pub fn generate_from_config(config: &MachineConfig) -> Result<GeneratedMachine, MarilError> {
    let raw = emit_text(config);
    let desc = parse(&lex(&raw)?)?;
    let text = print_description(&desc);
    Ok(GeneratedMachine {
        config: *config,
        name: format!("gen-{:016x}", config.seed),
        text,
    })
}

/// A `[A; B; C;]` resource vector from stage names.
fn rv(stages: &[&str]) -> String {
    let mut s = String::from("[");
    for st in stages {
        s.push_str(st);
        s.push_str("; ");
    }
    s.pop();
    if s.len() > 1 {
        s.pop();
        s.push(';');
    }
    s.push(']');
    s
}

/// A vector that repeats `stage` `n` times between a prefix and
/// suffix (iterative units occupying one stage for several cycles).
fn rv_rep(prefix: &[&str], stage: &str, n: u32, suffix: &[&str]) -> String {
    let mut stages: Vec<&str> = prefix.to_vec();
    for _ in 0..n {
        stages.push(stage);
    }
    stages.extend_from_slice(suffix);
    rv(&stages)
}

fn emit_text(c: &MachineConfig) -> String {
    let mut s = String::with_capacity(8192);
    let rc = c.int_regs();
    let dc = c.dbl_regs;
    let dual = c.issue == IssueModel::Dual;

    // Occupancy caps keep resource vectors (and the scheduler's
    // reservation tables) bounded even at the largest latencies.
    let occ = |lat: u32, cap: u32| lat.clamp(1, cap);

    // ---------------- declare ----------------
    s.push_str("declare {\n");
    let _ = writeln!(s, "    %reg r[0:{}] (int);", rc - 1);
    let _ = writeln!(s, "    %reg d[0:{}] (double);", dc - 1);
    s.push_str("    %equiv r[0] d[0];\n");
    if dual {
        s.push_str("    %resource CE; CM; FG; DV;\n");
    } else {
        s.push_str("    %resource IF; ID; IE; IA; IW; F1; F2;\n");
    }
    if let Some(e) = c.eap {
        for i in 1..=e.add_stages {
            let _ = write!(s, "    %resource RA{i};");
        }
        s.push('\n');
        for i in 1..=e.mul_stages {
            let _ = write!(s, "    %resource RM{i};");
        }
        s.push_str("\n    %resource RWB;\n");
        let (clk_a, clk_m) = eap_clocks(c);
        if e.shared_clock {
            let _ = writeln!(s, "    %clock {clk_a};");
        } else {
            let _ = writeln!(s, "    %clock {clk_a};\n    %clock {clk_m};");
        }
        for i in 1..=e.add_stages {
            let _ = writeln!(s, "    %reg a{i} (double; {clk_a}) +temporal;");
        }
        for i in 1..=e.mul_stages {
            let _ = writeln!(s, "    %reg m{i} (double; {clk_m}) +temporal;");
        }
        s.push_str("    %element eA; %element eS; %element eM;\n");
        if e.cross_packing {
            s.push_str("    %element eD;\n");
            s.push_str("    %class cls_add { eA, eD };\n");
            s.push_str("    %class cls_sub { eS };\n");
            s.push_str("    %class cls_apass { eA, eS, eD };\n");
            s.push_str("    %class cls_mul { eM, eD };\n");
            s.push_str("    %class cls_mpass { eM, eD };\n");
            s.push_str("    %class cls_wb { eA, eS, eM, eD };\n");
        } else {
            s.push_str("    %class cls_add { eA };\n");
            s.push_str("    %class cls_sub { eS };\n");
            s.push_str("    %class cls_apass { eA, eS };\n");
            s.push_str("    %class cls_mul { eM };\n");
            s.push_str("    %class cls_mpass { eM };\n");
            s.push_str("    %class cls_wb { eA, eS, eM };\n");
        }
    }
    s.push_str("    %def const16 [-32768:32767];\n");
    s.push_str("    %def uconst5 [0:31];\n");
    s.push_str("    %def addr16 [0:32767] +abs;\n");
    s.push_str("    %def const32 [-2147483648:2147483647] +abs;\n");
    s.push_str("    %label rlab [-32768:32767] +relative;\n");
    s.push_str("    %memory m[0:2147483647];\n");
    s.push_str("}\n\n");

    // ---------------- cwvm ----------------
    // TOYP's calling convention, scaled to the register file: sp and
    // fp live in the top two integer registers, the callee-save split
    // point comes from the config.
    s.push_str("cwvm {\n");
    s.push_str("    %general (int) r;\n");
    s.push_str("    %general (double) d;\n");
    s.push_str("    %general (float) d;\n");
    let _ = writeln!(s, "    %allocable r[1:{}];", rc - 2);
    let _ = writeln!(s, "    %allocable d[1:{}];", dc - 2);
    let _ = writeln!(s, "    %calleesave r[{}:{}];", c.callee_save_from, rc - 1);
    let _ = writeln!(s, "    %sp r[{}] +down;", rc - 1);
    let _ = writeln!(s, "    %fp r[{}] +down;", rc - 2);
    s.push_str("    %retaddr r[1];\n");
    s.push_str("    %hard r[0] 0;\n");
    s.push_str("    %arg (int) r[2] 1;\n");
    s.push_str("    %arg (int) r[3] 2;\n");
    s.push_str("    %arg (double) d[1] 1;\n");
    s.push_str("    %result r[2] (int);\n");
    s.push_str("    %result d[1] (double);\n");
    s.push_str("}\n\n");

    // ---------------- instr ----------------
    // Family resource vectors.
    let alu = if dual {
        rv(&["CE"])
    } else {
        rv(&["IF", "ID", "IE", "IA", "IW"])
    };
    let mul_v = if dual {
        rv_rep(&[], "CE", occ(c.mul_latency, 12), &[])
    } else {
        rv_rep(
            &["IF", "ID"],
            "IE",
            occ(c.mul_latency - 1, 10),
            &["IA", "IW"],
        )
    };
    let div_v = if dual {
        rv_rep(&["CE"], "DV", occ(c.div_latency / 2, 16), &[])
    } else {
        rv_rep(
            &["IF", "ID"],
            "IE",
            occ(c.div_latency - 2, 16),
            &["IA", "IW"],
        )
    };
    let ld_v = if dual {
        rv(&["CE", "CM"])
    } else {
        rv(&["IF", "ID", "IE", "IA", "IW"])
    };
    let ldd_v = if dual {
        rv(&["CE", "CM", "CM"])
    } else {
        rv(&["IF", "ID", "IE", "IA", "IA", "IW"])
    };
    let fp2 = |n: u32| {
        if dual {
            rv_rep(&[], "FG", occ(n / 2, 8), &[])
        } else {
            rv_rep(&["IF", "ID"], "F1", occ(n / 2, 8), &["F2"])
        }
    };
    let fdiv_v = if dual {
        rv_rep(&[], "DV", occ(c.fdiv_latency / 2, 20), &[])
    } else {
        rv_rep(&["IF", "ID"], "F1", occ(c.fdiv_latency - 2, 20), &["F2"])
    };
    let ctl = if dual {
        rv(&["CE"])
    } else {
        rv(&["IF", "ID", "IE"])
    };

    let ll = c.load_latency;
    let (fa, fm, fd) = (c.fadd_latency, c.fmul_latency, c.fdiv_latency);
    // Single-precision latencies ride a notch under the double ones.
    let fa_s = (fa.saturating_sub(1)).max(2);
    let fm_s = (fm.saturating_sub(2)).max(2);
    let fd_s = (fd / 2 + 2).max(4);
    // A branch cannot resolve before its architectural delay slots
    // have issued.
    let blat = c.branch_latency.max(c.delay_slots.max(1));
    let slots = c.delay_slots;

    s.push_str("instr {\n");
    // Integer ALU — the full TOYP set (what selection and the escapes
    // rely on).
    for (mn, ops, sem) in [
        ("add", "r, r, r", "$1 = $2 + $3;"),
        ("addi", "r, r, #const16", "$1 = $2 + $3;"),
        ("sub", "r, r, r", "$1 = $2 - $3;"),
        ("subi", "r, r, #const16", "$1 = $2 - $3;"),
        ("neg", "r, r", "$1 = -$2;"),
        ("not", "r, r", "$1 = ~$2;"),
        ("and", "r, r, r", "$1 = $2 & $3;"),
        ("andi", "r, r, #const16", "$1 = $2 & $3;"),
        ("or", "r, r, r", "$1 = $2 | $3;"),
        ("ori", "r, r, #const16", "$1 = $2 | $3;"),
        ("xor", "r, r, r", "$1 = $2 ^ $3;"),
        ("shl", "r, r, r", "$1 = $2 << $3;"),
        ("shli", "r, r, #uconst5", "$1 = $2 << $3;"),
        ("sra", "r, r, r", "$1 = $2 >> $3;"),
        ("srai", "r, r, #uconst5", "$1 = $2 >> $3;"),
    ] {
        let _ = writeln!(s, "    %instr {mn} {ops} (int) {{{sem}}} {alu} (1,1,0)");
    }
    let _ = writeln!(
        s,
        "    %instr li r, r[0], #const16 (int) {{$1 = $3;}} {alu} (1,1,0)"
    );
    let _ = writeln!(
        s,
        "    %instr la r, r[0], #addr16 (int) {{$1 = $3;}} {alu} (1,1,0)"
    );
    let _ = writeln!(
        s,
        "    %instr *li32 r, #const32 (int) {{$1 = $2;}} {alu} (1,1,0)"
    );
    let _ = writeln!(
        s,
        "    %instr mul r, r, r (int) {{$1 = $2 * $3;}} {mul_v} (1,{},0)",
        c.mul_latency
    );
    let _ = writeln!(
        s,
        "    %instr div r, r, r (int) {{$1 = $2 / $3;}} {div_v} (1,{},0)",
        c.div_latency
    );
    let _ = writeln!(
        s,
        "    %instr rem r, r, r (int) {{$1 = $2 % $3;}} {div_v} (1,{},0)",
        c.div_latency
    );
    // Generic compares, fed by the glue rules.
    let _ = writeln!(
        s,
        "    %instr cmp r, r, r (int) {{$1 = $2 :: $3;}} {alu} (1,1,0)"
    );
    let _ = writeln!(
        s,
        "    %instr fcmp r, d, d (int) {{$1 = $2 :: $3;}} {} (1,{fa},0)",
        fp2(fa)
    );
    let _ = writeln!(
        s,
        "    %instr fcmp.s r, d, d (int) {{$1 = $2 :: $3;}} {} (1,{fa_s},0)",
        fp2(fa_s)
    );
    // Memory.
    for (mn, ty, lat) in [
        ("ld", "int", ll),
        ("ld.b", "char", ll),
        ("ld.h", "short", ll),
    ] {
        let _ = writeln!(
            s,
            "    %instr {mn} r, r, #const16 ({ty}) {{$1 = m[$2+$3];}} {ld_v} (1,{lat},0)"
        );
    }
    for (mn, ty) in [("st", "int"), ("st.b", "char"), ("st.h", "short")] {
        let _ = writeln!(
            s,
            "    %instr {mn} r, r, #const16 ({ty}) {{m[$2+$3] = $1;}} {ld_v} (1,1,0)"
        );
    }
    let _ = writeln!(
        s,
        "    %instr ld.d d, r, #const16 (double) {{$1 = m[$2+$3];}} {ldd_v} (1,{},0)",
        ll + 1
    );
    let _ = writeln!(
        s,
        "    %instr st.d d, r, #const16 (double) {{m[$2+$3] = $1;}} {ldd_v} (1,1,0)"
    );
    let _ = writeln!(
        s,
        "    %instr ld.s d, r, #const16 (float) {{$1 = m[$2+$3];}} {ld_v} (1,{ll},0)"
    );
    let _ = writeln!(
        s,
        "    %instr st.s d, r, #const16 (float) {{m[$2+$3] = $1;}} {ld_v} (1,1,0)"
    );

    // Double-precision arithmetic: plain pipelines, or explicitly
    // advanced sub-operation chains when the config says so.
    if let Some(e) = c.eap {
        let (clk_a, clk_m) = eap_clocks(c);
        let ka = e.add_stages;
        let km = e.mul_stages;
        let _ = writeln!(
            s,
            "    %instr A1 d, d (double; {clk_a}) <cls_add> {{a1 = $1 + $2;}} [RA1;] (1,1,0)"
        );
        let _ = writeln!(
            s,
            "    %instr S1 d, d (double; {clk_a}) <cls_sub> {{a1 = $1 - $2;}} [RA1;] (1,1,0)"
        );
        for i in 2..=ka {
            let _ = writeln!(
                s,
                "    %instr A{i} (double; {clk_a}) <cls_apass> {{a{i} = a{};}} [RA{i};] (1,1,0)",
                i - 1
            );
        }
        let _ = writeln!(
            s,
            "    %instr AWB d (double; {clk_a}) <cls_wb> {{$1 = a{ka};}} [RWB;] (1,1,0)"
        );
        let _ = writeln!(
            s,
            "    %instr M1 d, d (double; {clk_m}) <cls_mul> {{m1 = $1 * $2;}} [RM1;] (1,1,0)"
        );
        for i in 2..=km {
            let _ = writeln!(
                s,
                "    %instr M{i} (double; {clk_m}) <cls_mpass> {{m{i} = m{};}} [RM{i};] (1,1,0)",
                i - 1
            );
        }
        let _ = writeln!(
            s,
            "    %instr MWB d (double; {clk_m}) <cls_wb> {{$1 = m{km};}} [RWB;] (1,1,0)"
        );
    } else {
        let _ = writeln!(
            s,
            "    %instr fadd.d d, d, d (double) {{$1 = $2 + $3;}} {} (1,{fa},0)",
            fp2(fa)
        );
        let _ = writeln!(
            s,
            "    %instr fsub.d d, d, d (double) {{$1 = $2 - $3;}} {} (1,{fa},0)",
            fp2(fa)
        );
        let _ = writeln!(
            s,
            "    %instr fmul.d d, d, d (double) {{$1 = $2 * $3;}} {} (1,{fm},0)",
            fp2(fm)
        );
    }
    let _ = writeln!(
        s,
        "    %instr fneg.d d, d (double) {{$1 = -$2;}} {} (1,{},0)",
        fp2(2),
        2
    );
    let _ = writeln!(
        s,
        "    %instr fdiv.d d, d, d (double) {{$1 = $2 / $3;}} {fdiv_v} (1,{fd},0)"
    );
    // Single precision: always plain (the real i860 runs these units
    // in a three-stage non-advanced mode).
    for (mn, sem, lat) in [
        ("fadd.s", "$1 = $2 + $3;", fa_s),
        ("fsub.s", "$1 = $2 - $3;", fa_s),
        ("fmul.s", "$1 = $2 * $3;", fm_s),
    ] {
        let _ = writeln!(
            s,
            "    %instr {mn} d, d, d (float) {{{sem}}} {} (1,{lat},0)",
            fp2(lat)
        );
    }
    let _ = writeln!(
        s,
        "    %instr fneg.s d, d (float) {{$1 = -$2;}} {} (1,2,0)",
        fp2(2)
    );
    let _ = writeln!(
        s,
        "    %instr fdiv.s d, d, d (float) {{$1 = $2 / $3;}} {} (1,{fd_s},0)",
        fp2(fd_s)
    );
    // Conversions.
    let _ = writeln!(
        s,
        "    %instr cvt.w r, r (int) {{$1 = (int)$2;}} [] (0,0,0)"
    );
    for (mn, ops, ty, lat) in [
        ("cvtid", "d, r", "double", fa),
        ("cvtdi", "r, d", "int", fa),
        ("cvtis", "d, r", "float", fa_s),
        ("cvtsi", "r, d", "int", fa_s),
        ("fcvt.ds", "d, d", "double", 3),
        ("fcvt.sd", "d, d", "float", 3),
    ] {
        let _ = writeln!(
            s,
            "    %instr {mn} {ops} ({ty}) {{$1 = ({ty})$2;}} {} (1,{lat},0)",
            fp2(lat)
        );
    }
    let _ = writeln!(
        s,
        "    %instr *cvt8 r, r (char) {{$1 = (char)$2;}} [] (0,0,0)"
    );
    let _ = writeln!(
        s,
        "    %instr *cvt16 r, r (short) {{$1 = (short)$2;}} [] (0,0,0)"
    );
    // Control.
    for (mn, cond) in [
        ("beq0", "=="),
        ("bne0", "!="),
        ("blt0", "<"),
        ("ble0", "<="),
        ("bgt0", ">"),
        ("bge0", ">="),
    ] {
        let _ = writeln!(
            s,
            "    %instr {mn} r, #rlab {{if ($1 {cond} 0) goto $2;}} {ctl} (1,{blat},{slots})"
        );
    }
    let _ = writeln!(
        s,
        "    %instr br #rlab {{goto $1;}} {ctl} (1,{blat},{slots})"
    );
    let _ = writeln!(
        s,
        "    %instr bsr #rlab {{call $1;}} {ctl} (1,{blat},{slots})"
    );
    let _ = writeln!(s, "    %instr rts {{return;}} {ctl} (1,{blat},{slots})");
    let _ = writeln!(s, "    %instr nop {{}} {alu} (1,1,0)");
    // Moves: the labelled single move the `*movd` escape emits, and
    // the escape itself.
    let _ = writeln!(
        s,
        "    %move [s.movs] add r, r, r[0] {{$1 = $2;}} {alu} (1,1,0)"
    );
    s.push_str("    %move *movd d, d {$1 = $2;} [] (0,0,0)\n");
    // Aux latencies: float results take extra cycles to become
    // storable (the TOYP Figure 3 `fadd.d : st.d` pattern, or the
    // write-back sub-operations on an EAP machine).
    if c.eap.is_some() {
        let wb_aux = c.store_aux + 1;
        let _ = writeln!(s, "    %aux AWB : st.d (1.$1 == 2.$1) ({wb_aux})");
        let _ = writeln!(s, "    %aux MWB : st.d (1.$1 == 2.$1) ({wb_aux})");
        s.push_str("    %aux AWB : A1 (1.$1 == 2.$1) (2)\n");
        s.push_str("    %aux MWB : M1 (1.$1 == 2.$1) (2)\n");
    } else {
        let _ = writeln!(
            s,
            "    %aux fadd.d : st.d (1.$1 == 2.$1) ({})",
            fa + c.store_aux
        );
        let _ = writeln!(
            s,
            "    %aux fmul.d : st.d (1.$1 == 2.$1) ({})",
            fm + c.store_aux
        );
    }
    // Glue: TOYP's strength reduction and compare expansion.
    s.push_str("    %glue r {($1 * 2) ==> ($1 + $1);}\n");
    for class in ["r", "d"] {
        for op in ["==", "!=", "<", "<="] {
            let _ = writeln!(
                s,
                "    %glue {class}, {class} {{($1 {op} $2) ==> (($1 :: $2) {op} 0);}}"
            );
        }
    }
    s.push_str("}\n");
    s
}

/// Clock names for the two EAP pipes (equal when shared).
fn eap_clocks(c: &MachineConfig) -> (&'static str, &'static str) {
    match c.eap {
        Some(e) if e.shared_clock => ("clk_f", "clk_f"),
        _ => ("clk_a", "clk_m"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_canonical() {
        let a = generate(99).unwrap();
        let b = generate(99).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.name, "gen-0000000000000063");
        // Canonical: printing the parse of the text is a fixpoint.
        let desc = parse(&lex(&a.text).unwrap()).unwrap();
        assert_eq!(print_description(&desc), a.text);
    }

    #[test]
    fn many_seeds_produce_valid_distinct_machines() {
        let mut texts = std::collections::HashSet::new();
        for seed in 0..64 {
            let g = generate(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let m = g
                .machine()
                .unwrap_or_else(|e| panic!("seed {seed}:\n{}", e.render("gen.maril", &g.text)));
            assert!(m.nop_template().is_some());
            assert!(m.template_by_mnemonic("add").is_some());
            texts.insert(g.text);
        }
        assert!(texts.len() >= 60, "only {} distinct texts", texts.len());
    }

    #[test]
    fn eap_configs_compile_with_clocks_and_classes() {
        let g = (0..)
            .map(|s| generate(s).unwrap())
            .find(|g| g.config.eap.is_some())
            .unwrap();
        let m = g.machine().unwrap();
        assert!(m.stats().clocks >= 1);
        assert!(m.stats().classes >= 6);
        assert!(m.temporals().len() >= 4);
        assert!(m.template_by_mnemonic("AWB").is_some());
    }

    #[test]
    fn minimal_config_compiles() {
        let g = generate_from_config(&MachineConfig::minimal(0)).unwrap();
        g.machine().unwrap();
    }
}
