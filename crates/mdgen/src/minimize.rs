//! Failure shrinking.
//!
//! When a generated machine fails the audit, the raw reproducer is a
//! full machine description plus a full workload — too big to debug.
//! The minimiser shrinks both:
//!
//! * **machine** — the [`crate::config::shrink_steps`] ladder is
//!   applied greedily: each step (drop EAP, force single issue, zero
//!   the delay slots, unit latencies, minimal register file) is kept
//!   only when the failure still reproduces *with the same kind* on
//!   the simplified machine;
//! * **program** — a fixed ladder of probe programs, from a handful
//!   of integer adds up to mixed float/double loops, is tried in
//!   order; the first probe that reproduces replaces the workload.
//!
//! The result is the simplest (machine, program) pair the harness can
//! find that still exhibits the failure — what lands in `corpus/`.

use crate::audit::{audit_pair, AuditFailure, FailureKind, PreparedWorkload};
use crate::config::{shrink_steps, MachineConfig};
use crate::emit::{generate_from_config, GeneratedMachine};
use marion_core::{EscapeRegistry, StrategyKind};
use marion_workloads::Workload;

/// A minimised reproducer.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The simplest failing machine found.
    pub machine: GeneratedMachine,
    /// Workload (possibly a probe) that reproduces on it.
    pub workload_name: String,
    /// Its C source.
    pub program: String,
    /// Strategy under which it fails.
    pub strategy: StrategyKind,
    /// The failure on the minimised pair.
    pub kind: FailureKind,
    /// Diagnosis from the minimised reproduction.
    pub detail: String,
    /// Names of the shrink steps that were kept.
    pub steps_applied: Vec<&'static str>,
}

/// The probe ladder, simplest first. Each exercises one more corner
/// of the machine: integer ALU, branching, memory, calls, then the
/// floating-point units (where EAP chains and packing live).
pub fn probe_programs() -> Vec<Workload> {
    let mk = |name: &str, src: &str| Workload {
        name: format!("probe-{name}"),
        source: src.to_string(),
        description: format!("minimiser probe `{name}`"),
    };
    vec![
        mk(
            "int-arith",
            "int main() { int a = 7, b = 9; return a * b + (a - b) / 2; }",
        ),
        mk(
            "int-branch",
            "int main() { int i, s = 0; for (i = 0; i < 17; i++) if (i % 3 == 0) s += i; return s; }",
        ),
        mk(
            "int-mem",
            "int a[16];
             int main() { int i, s = 0; for (i = 0; i < 16; i++) a[i] = i * i;
                          for (i = 0; i < 16; i++) s += a[i]; return s; }",
        ),
        mk(
            "call",
            "int twice(int x) { return x + x; }
             int main() { return twice(twice(5)) + twice(3); }",
        ),
        mk(
            "dbl-add",
            "double x[8];
             int main() { int i; double s = 0.0;
                          for (i = 0; i < 8; i++) x[i] = 0.5 * (i + 1);
                          for (i = 0; i < 8; i++) s = s + x[i];
                          return (int)(s * 10.0); }",
        ),
        mk(
            "dbl-mul",
            "int main() { double a = 1.5, b = 2.5; double c = a * b * b; return (int)(c * 4.0); }",
        ),
        mk(
            "dbl-mix",
            "double x[8]; double y[8];
             int main() { int i; double s = 0.0;
                          for (i = 0; i < 8; i++) { x[i] = 0.25 * i; y[i] = 0.5 * i; }
                          for (i = 0; i < 8; i++) s = s + x[i] * y[i];
                          return (int)(s * 8.0); }",
        ),
        mk(
            "flt",
            "int main() { float a = 1.25; float b = 3.5; float c = a * b + a - b; return (int)(c * 8.0); }",
        ),
    ]
}

/// True when the (config, workload, strategy) triple still fails with
/// `kind`; returns the reproduction's detail.
fn reproduces(
    config: &MachineConfig,
    escapes: &EscapeRegistry,
    w: &PreparedWorkload,
    strategy: StrategyKind,
    kind: FailureKind,
) -> Option<(GeneratedMachine, String)> {
    let gen = generate_from_config(config).ok()?;
    let machine = gen.machine().ok()?;
    let failures = audit_pair(&machine, escapes, w, strategy);
    failures
        .into_iter()
        .find(|f| f.kind == kind)
        .map(|f| (gen, f.detail))
}

/// Shrinks a failing (machine, workload, strategy) triple. `original`
/// is the machine that failed, `failure` the audit record, `workload`
/// the prepared workload it failed on.
pub fn minimize(
    original: &GeneratedMachine,
    escapes: &EscapeRegistry,
    workload: &PreparedWorkload,
    failure: &AuditFailure,
) -> Minimized {
    let kind = failure.kind;
    let strategy = failure.strategy;
    let mut config = original.config;
    let mut best = original.clone();
    let mut detail = failure.detail.clone();
    let mut steps_applied = Vec::new();

    // Phase 1: greedy config shrinking against the original workload.
    for (name, step) in shrink_steps() {
        let Some(candidate) = step(&config) else {
            continue;
        };
        if let Some((gen, d)) = reproduces(&candidate, escapes, workload, strategy, kind) {
            config = candidate;
            best = gen;
            detail = d;
            steps_applied.push(name);
        }
    }

    // Phase 2: probe ladder — the first (smallest) probe that still
    // reproduces on the shrunk machine replaces the workload.
    let mut workload_name = workload.name.clone();
    let mut program = workload.source.clone();
    if let Ok(machine) = best.machine() {
        for probe in probe_programs() {
            let Ok(module) = marion_frontend::compile(&probe.source) else {
                continue;
            };
            let Ok(expected) = crate::audit::interp_main(&module) else {
                continue;
            };
            let prepared = PreparedWorkload {
                name: probe.name.clone(),
                source: probe.source.clone(),
                module,
                expected,
            };
            let failures = audit_pair(&machine, escapes, &prepared, strategy);
            if let Some(f) = failures.into_iter().find(|f| f.kind == kind) {
                workload_name = probe.name;
                program = probe.source;
                detail = f.detail;
                break;
            }
        }
    }

    Minimized {
        machine: best,
        workload_name,
        program,
        strategy,
        kind,
        detail,
        steps_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::prepare;

    #[test]
    fn probes_all_compile_and_interpret() {
        let prepared = prepare(&probe_programs());
        assert_eq!(prepared.len(), 8);
        for p in &prepared {
            // Checksums are small, nonzero, and stable.
            assert_ne!(p.expected, 0, "{}", p.name);
        }
    }

    /// A failure that reproduces everywhere must minimise to the
    /// minimal config and the first probe. We fake one by claiming a
    /// `Compile` failure against a machine that actually works — no
    /// step reproduces, so the minimiser must keep the original.
    #[test]
    fn non_reproducing_failure_keeps_the_original() {
        let gen = crate::emit::generate(3).unwrap();
        let escapes = marion_machines::toyp::escapes();
        let prepared = prepare(&probe_programs()[..1]);
        let failure = AuditFailure {
            kind: FailureKind::Compile,
            workload: prepared[0].name.clone(),
            strategy: StrategyKind::Ips,
            detail: "synthetic".to_string(),
        };
        let min = minimize(&gen, &escapes, &prepared[0], &failure);
        assert!(min.steps_applied.is_empty());
        assert_eq!(min.machine.config, gen.config);
        assert_eq!(min.detail, "synthetic");
    }
}
