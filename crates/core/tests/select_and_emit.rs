//! Integration tests for instruction selection and emission against a
//! small purpose-built machine, exercising behaviours that unit tests
//! in the modules cannot see in isolation: pattern order, immediate
//! subsumption, hard-wired registers, addressing-mode fallback, CSE
//! forcing, dummies, store width selection and prologue/epilogue
//! shape.

use marion_core::{select::select_func, Compiler, EscapeRegistry, Operand, StrategyKind};
use marion_ir::FuncBuilder;
use marion_maril::{Machine, Ty};

const MINI: &str = r#"
declare {
    %reg r[0:15] (int);
    %resource EX; MEM;
    %def imm8 [-128:127];
    %def imm16 [-32768:32767];
    %def addr [0:1048575] +abs;
    %label off [-32768:32767] +relative;
    %memory m[0:16777215];
}
cwvm {
    %general (int) r;
    %general (double) r;
    %general (float) r;
    %allocable r[1:12];
    %calleesave r[8:13];
    %sp r[15] +down;
    %fp r[14] +down;
    %retaddr r[13];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %result r[2] (int);
}
instr {
    /* Pattern order matters: the small-immediate add must win over
     * the register form when the constant fits. */
    %instr addi8 r, r, #imm8 (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    %instr addi16 r, r, #imm16 (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    /* The matcher tries patterns in description order (paper §2.1),
     * so the fused form must precede the plain add. */
    %instr muladd r, r, r, r (int) {$1 = $2 + $3 * $4;} [EX; EX;] (1,2,0)
    %instr add r, r, r (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    %instr sub r, r, r (int) {$1 = $2 - $3;} [EX;] (1,1,0)
    %instr mul r, r, r (int) {$1 = $2 * $3;} [EX; EX; EX;] (1,3,0)
    %instr li r, r[0], #imm16 (int) {$1 = $3;} [EX;] (1,1,0)
    %instr la r, r[0], #addr (int) {$1 = $3;} [EX;] (1,1,0)
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [EX;] (1,1,0)
    %instr ld r, r, #imm16 (int) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr st r, r, #imm16 (int) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr ld.b r, r, #imm16 (char) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr st.b r, r, #imm16 (char) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr beq0 r, #off {if ($1 == 0) goto $2;} [EX;] (1,2,0)
    %instr bne0 r, #off {if ($1 != 0) goto $2;} [EX;] (1,2,0)
    %instr blt0 r, #off {if ($1 < 0) goto $2;} [EX;] (1,2,0)
    %instr ble0 r, #off {if ($1 <= 0) goto $2;} [EX;] (1,2,0)
    %instr bgt0 r, #off {if ($1 > 0) goto $2;} [EX;] (1,2,0)
    %instr bge0 r, #off {if ($1 >= 0) goto $2;} [EX;] (1,2,0)
    %instr jmp #off {goto $1;} [EX;] (1,1,0)
    %instr call #off {call $1;} [EX;] (1,1,0)
    %instr ret {return;} [EX;] (1,1,0)
    %instr nop {} [EX;] (1,1,0)
    %move mov r, r, r[0] {$1 = $2;} [EX;] (1,1,0)
    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

fn mini() -> Machine {
    Machine::parse("mini", MINI).unwrap()
}

fn mnemonics(machine: &Machine, code: &marion_core::CodeFunc) -> Vec<String> {
    code.blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .map(|i| machine.template(i.template).mnemonic.clone())
        .collect()
}

fn select_expr(machine: &Machine, build: impl FnOnce(&mut FuncBuilder)) -> marion_core::CodeFunc {
    let mut module = marion_ir::Module::new();
    let mut b = FuncBuilder::new("f", Some(Ty::Int));
    build(&mut b);
    module.add_func(b.finish());
    let mut f = module.funcs[0].clone();
    marion_core::glue::apply_glue(machine, &mut f).unwrap();
    select_func(machine, &EscapeRegistry::new(), &module, &f).unwrap()
}

#[test]
fn first_matching_pattern_wins() {
    let m = mini();
    // x + 5 fits imm8 -> addi8; x + 1000 fits imm16 only -> addi16;
    // x + y -> add.
    let code = select_expr(&m, |b| {
        let p = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let c5 = b.const_i(5, Ty::Int);
        let s1 = b.bin(marion_ir::BinOp::Add, x, c5, Ty::Int);
        let c1000 = b.const_i(1000, Ty::Int);
        let s2 = b.bin(marion_ir::BinOp::Add, s1, c1000, Ty::Int);
        let s3 = b.bin(marion_ir::BinOp::Add, s2, s2, Ty::Int);
        b.ret(Some(s3));
    });
    let ms = mnemonics(&m, &code);
    assert!(ms.contains(&"addi8".to_string()), "{ms:?}");
    assert!(ms.contains(&"addi16".to_string()), "{ms:?}");
    assert!(ms.contains(&"add".to_string()), "{ms:?}");
}

#[test]
fn compound_pattern_preferred_over_pieces() {
    let m = mini();
    // a + b*c should match the 4-operand muladd, not mul + add.
    let code = select_expr(&m, |b| {
        let p = b.param(Ty::Int);
        let q = b.param(Ty::Int);
        let a = b.read_vreg(p);
        let bb = b.read_vreg(q);
        let prod = b.bin(marion_ir::BinOp::Mul, a, bb, Ty::Int);
        let sum = b.bin(marion_ir::BinOp::Add, a, prod, Ty::Int);
        b.ret(Some(sum));
    });
    let ms = mnemonics(&m, &code);
    assert!(ms.contains(&"muladd".to_string()), "{ms:?}");
    assert!(!ms.contains(&"mul".to_string()), "{ms:?}");
}

#[test]
fn zero_constant_binds_hard_register() {
    let m = mini();
    // x + 0: the Reg operand can bind r0 directly — no li for the 0.
    let code = select_expr(&m, |b| {
        let p = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let z = b.const_i(0, Ty::Int);
        let s = b.bin(marion_ir::BinOp::Sub, x, z, Ty::Int);
        b.ret(Some(s));
    });
    let ms = mnemonics(&m, &code);
    assert!(!ms.contains(&"li".to_string()), "no li for zero: {ms:?}");
    let r = m.reg_class_by_name("r").unwrap();
    let uses_r0 = code.blocks.iter().flat_map(|b| b.insts.iter()).any(|i| {
        i.ops
            .contains(&Operand::Phys(marion_maril::PhysReg::new(r, 0)))
    });
    assert!(uses_r0);
}

#[test]
fn shared_subexpression_selected_once() {
    let m = mini();
    // (a*b) + (a*b): one mul/muladd-chain for the shared node.
    let code = select_expr(&m, |b| {
        let p = b.param(Ty::Int);
        let q = b.param(Ty::Int);
        let a = b.read_vreg(p);
        let bb = b.read_vreg(q);
        let prod = b.bin(marion_ir::BinOp::Mul, a, bb, Ty::Int);
        let sum = b.bin(marion_ir::BinOp::Add, prod, prod, Ty::Int);
        b.ret(Some(sum));
    });
    let ms = mnemonics(&m, &code);
    let muls = ms.iter().filter(|m| m.as_str() == "mul").count();
    assert_eq!(muls, 1, "shared node must be selected once: {ms:?}");
}

#[test]
fn address_fallback_covers_bare_and_computed_addresses() {
    let m = mini();
    let mut module = marion_ir::Module::new();
    let g = module.add_global(marion_ir::Global {
        name: "x".into(),
        init: marion_ir::GlobalInit::Zero(64),
    });
    let mut b = FuncBuilder::new("f", Some(Ty::Int));
    let p = b.param(Ty::Int);
    let i = b.read_vreg(p);
    // x[i*4]: address = &x + i*4 — the offset is not constant, so the
    // selector must fall back to (reg + 0) addressing.
    let base = b.global_addr(g);
    let four = b.const_i(4, Ty::Int);
    let off = b.bin(marion_ir::BinOp::Mul, i, four, Ty::Int);
    let addr = b.bin(marion_ir::BinOp::Add, base, off, Ty::Ptr);
    let v = b.load(addr, Ty::Int);
    // x[2]: address = &x + 8, constant — must use the immediate form.
    let eight = b.const_i(8, Ty::Int);
    let addr2 = b.bin(marion_ir::BinOp::Add, base, eight, Ty::Ptr);
    let v2 = b.load(addr2, Ty::Int);
    let s = b.bin(marion_ir::BinOp::Add, v, v2, Ty::Int);
    b.ret(Some(s));
    module.add_func(b.finish());
    let mut f = module.funcs[0].clone();
    marion_core::glue::apply_glue(&m, &mut f).unwrap();
    let code = select_func(&m, &EscapeRegistry::new(), &module, &f).unwrap();
    let lds: Vec<&marion_core::Inst> = code
        .blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .filter(|i| m.template(i.template).mnemonic == "ld")
        .collect();
    assert_eq!(lds.len(), 2);
    // One load has offset 0 (fallback), the other a constant 8.
    let offsets: Vec<Operand> = lds.iter().map(|i| i.ops[2]).collect();
    assert!(
        offsets.contains(&Operand::Imm(marion_core::ImmVal::Const(0))),
        "{offsets:?}"
    );
    assert!(
        offsets.contains(&Operand::Imm(marion_core::ImmVal::Const(8))),
        "{offsets:?}"
    );
}

#[test]
fn store_width_follows_type() {
    let m = mini();
    let mut module = marion_ir::Module::new();
    let g = module.add_global(marion_ir::Global {
        name: "buf".into(),
        init: marion_ir::GlobalInit::Zero(16),
    });
    let mut b = FuncBuilder::new("f", Some(Ty::Int));
    let base = b.global_addr(g);
    let c = b.const_i(65, Ty::Int);
    b.store(base, c, Ty::Char);
    let c2 = b.const_i(70000, Ty::Int);
    let four = b.const_i(4, Ty::Int);
    let a2 = b.bin(marion_ir::BinOp::Add, base, four, Ty::Ptr);
    b.store(a2, c2, Ty::Int);
    let z = b.const_i(0, Ty::Int);
    b.ret(Some(z));
    module.add_func(b.finish());
    let mut f = module.funcs[0].clone();
    marion_core::glue::apply_glue(&m, &mut f).unwrap();
    let code = select_func(&m, &EscapeRegistry::new(), &module, &f).unwrap();
    let ms = mnemonics(&m, &code);
    assert!(ms.contains(&"st.b".to_string()), "{ms:?}");
    assert!(ms.contains(&"st".to_string()), "{ms:?}");
}

#[test]
fn dummy_conversion_emits_nothing() {
    let m = mini();
    // int -> ptr conversion is a zero-cost dummy.
    let code = select_expr(&m, |b| {
        let p = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let ptr = b.cvt(x, Ty::Ptr);
        let back = b.cvt(ptr, Ty::Int);
        b.ret(Some(back));
    });
    let ms = mnemonics(&m, &code);
    assert!(
        !ms.contains(&"cvt.w".to_string()),
        "dummies must vanish: {ms:?}"
    );
}

#[test]
fn whole_pipeline_prologue_epilogue_shape() {
    let m = mini();
    let src = "int leaf(int a, int b) { return a + b; }
               int caller(int a) { return leaf(a, a) + leaf(a, 1); }";
    let module = marion_frontend::compile(src).unwrap();
    let compiler = Compiler::new(m.clone(), EscapeRegistry::new(), StrategyKind::Postpass);
    let program = compiler.compile_module(&module).unwrap();
    // Leaf function: no frame at all (no calls, no locals, no saves).
    let leaf = program.asm.func("leaf").unwrap();
    assert_eq!(leaf.frame_size, 0, "leaf should be frameless");
    // Caller: has a frame and saves the return address.
    let caller = program.asm.func("caller").unwrap();
    assert!(caller.frame_size >= 8);
    let first_block = &caller.blocks[0];
    let first = &first_block.words[0].insts[0];
    // Frame push first: an add-immediate on the stack pointer by
    // -frame_size (whichever immediate form fits).
    assert!(
        m.template(first.template).mnemonic.starts_with("addi"),
        "prologue starts with the frame push, got {}",
        m.template(first.template).mnemonic
    );
    assert_eq!(
        first.ops[2],
        Operand::Imm(marion_core::ImmVal::Const(-(caller.frame_size as i64)))
    );
}

#[test]
fn branch_selection_swaps_relations() {
    let m = mini();
    // `0 < x` must still select (as x > 0 — swapped match).
    let src = "int f(int x) { if (0 < x) return 1; return 2; }";
    let module = marion_frontend::compile(src).unwrap();
    let compiler = Compiler::new(m.clone(), EscapeRegistry::new(), StrategyKind::Postpass);
    assert!(compiler.compile_module(&module).is_ok());
}

#[test]
fn missing_pattern_reports_cleanly() {
    // A machine without multiply cannot select `a * b`.
    let text = MINI.replace(" * ", " & "); // no multiply patterns remain
    let m = Machine::parse("mini-nomul", &text).unwrap();
    let module = marion_frontend::compile("int f(int a, int b) { return a * b; }").unwrap();
    let mut f = module.funcs[0].clone();
    marion_core::glue::apply_glue(&m, &mut f).unwrap();
    let err = select_func(&m, &EscapeRegistry::new(), &module, &f).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no pattern matches"), "{msg}");
    assert!(msg.contains('*'), "should render the offending tree: {msg}");
}

#[test]
fn rendered_assembly_is_stable_and_complete() {
    let m = mini();
    let src = "int g;
        int f(int x) { if (x > 0) g = x; return g + x; }";
    let module = marion_frontend::compile(src).unwrap();
    let compiler = Compiler::new(m.clone(), EscapeRegistry::new(), StrategyKind::Postpass);
    let program = compiler.compile_module(&module).unwrap();
    let text = program.render(&m);
    // Labels for every block, the global by name, register syntax.
    assert!(text.contains("f:"), "{text}");
    assert!(text.contains(".Lf_0:"), "{text}");
    assert!(text.contains('g'), "{text}");
    assert!(text.contains("r15") || text.contains("r2"), "{text}");
    // Rendering is deterministic.
    assert_eq!(text, program.render(&m));
    // Branch targets reference labels that exist.
    for line in text.lines() {
        if let Some(pos) = line.find(".Lf_") {
            let label: String = line[pos..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_' || *c == 'L')
                .collect();
            let defined = format!("{}:", label.trim_end_matches(':'));
            assert!(
                text.contains(&defined),
                "undefined label {label} in\n{text}"
            );
        }
    }
}
