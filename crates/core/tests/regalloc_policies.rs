//! Allocation-policy tests: callee-save preference for call-crossing
//! values, caller-save preference for leaf temporaries, and
//! loop-depth-weighted spill choice — the Chaitin/Briggs behaviours
//! the paper's strategies depend on.

use marion_core::{Compiler, EscapeRegistry, StrategyKind};
use marion_maril::Machine;

const MINI: &str = r#"
declare {
    %reg r[0:15] (int);
    %resource EX; MEM;
    %def imm16 [-32768:32767];
    %def addr [0:1048575] +abs;
    %label off [-32768:32767] +relative;
    %memory m[0:16777215];
}
cwvm {
    %general (int) r;
    %general (double) r;
    %general (float) r;
    %allocable r[1:12];
    %calleesave r[8:13];
    %sp r[15] +down;
    %fp r[14] +down;
    %retaddr r[13];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %result r[2] (int);
}
instr {
    %instr addi r, r, #imm16 (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    %instr add r, r, r (int) {$1 = $2 + $3;} [EX;] (1,1,0)
    %instr sub r, r, r (int) {$1 = $2 - $3;} [EX;] (1,1,0)
    %instr mul r, r, r (int) {$1 = $2 * $3;} [EX; EX;] (1,2,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [EX;] (1,1,0)
    %instr andi r, r, #imm16 (int) {$1 = $2 & $3;} [EX;] (1,1,0)
    %instr li r, r[0], #imm16 (int) {$1 = $3;} [EX;] (1,1,0)
    %instr la r, r[0], #addr (int) {$1 = $3;} [EX;] (1,1,0)
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [EX;] (1,1,0)
    %instr ld r, r, #imm16 (int) {$1 = m[$2+$3];} [EX; MEM;] (1,2,0)
    %instr st r, r, #imm16 (int) {m[$2+$3] = $1;} [EX; MEM;] (1,1,0)
    %instr blt0 r, #off {if ($1 < 0) goto $2;} [EX;] (1,2,0)
    %instr bge0 r, #off {if ($1 >= 0) goto $2;} [EX;] (1,2,0)
    %instr beq0 r, #off {if ($1 == 0) goto $2;} [EX;] (1,2,0)
    %instr bne0 r, #off {if ($1 != 0) goto $2;} [EX;] (1,2,0)
    %instr ble0 r, #off {if ($1 <= 0) goto $2;} [EX;] (1,2,0)
    %instr bgt0 r, #off {if ($1 > 0) goto $2;} [EX;] (1,2,0)
    %instr jmp #off {goto $1;} [EX;] (1,1,0)
    %instr call #off {call $1;} [EX;] (1,1,0)
    %instr ret {return;} [EX;] (1,1,0)
    %instr nop {} [EX;] (1,1,0)
    %move mov r, r, r[0] {$1 = $2;} [EX;] (1,1,0)
    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

fn compile(src: &str) -> (Machine, marion_core::CompiledProgram) {
    let m = Machine::parse("mini", MINI).unwrap();
    let module = marion_frontend::compile(src).unwrap();
    let compiler = Compiler::new(m.clone(), EscapeRegistry::new(), StrategyKind::Postpass);
    let program = compiler.compile_module(&module).unwrap();
    (m, program)
}

fn regs_written(m: &Machine, f: &marion_core::AsmFunc) -> Vec<u32> {
    let mut out = Vec::new();
    for block in &f.blocks {
        for word in &block.words {
            for inst in &word.insts {
                let t = m.template(inst.template);
                for k in &t.effects.defs {
                    if let Some(marion_core::Operand::Phys(p)) = inst.ops.get((*k - 1) as usize) {
                        out.push(p.index);
                    }
                }
            }
        }
    }
    out
}

#[test]
fn values_crossing_calls_get_callee_saves() {
    // `kept` lives across the call: it must land in r8..r12 (the
    // callee-save allocables).
    let (m, program) = compile(
        "int g(int x) { return x + 1; }
         int f(int a) {
            int kept = a * 7;
            int r = g(a);
            return kept + r;
         }",
    );
    let f = program.asm.func("f").unwrap();
    // The multiply result's register must be callee-save.
    let mul = m.template_by_mnemonic("mul").unwrap();
    let mut mul_dest = None;
    for block in &f.blocks {
        for word in &block.words {
            for inst in &word.insts {
                if inst.template == mul {
                    if let marion_core::Operand::Phys(p) = inst.ops[0] {
                        mul_dest = Some(p.index);
                    }
                }
            }
        }
    }
    let dest = mul_dest.expect("mul found");
    assert!(
        (8..=12).contains(&dest),
        "call-crossing value in caller-save r{dest}"
    );
    // And the prologue must save what it uses.
    assert!(f.frame_size >= 16, "frame must hold ra + saved registers");
}

#[test]
fn leaf_functions_prefer_caller_saves_and_stay_frameless() {
    let (m, program) = compile("int leaf(int a, int b) { return a * b + a - b; }");
    let f = program.asm.func("leaf").unwrap();
    assert_eq!(f.frame_size, 0, "leaf should not touch the stack");
    for idx in regs_written(&m, f) {
        assert!(
            !(8..=12).contains(&idx),
            "leaf temporaries should avoid callee-saves, used r{idx}"
        );
    }
}

#[test]
fn spill_choice_prefers_values_outside_loops() {
    // 12 allocable registers; keep ~14 values live: several cold ones
    // defined before the loop and hot ones used inside it. The cold
    // values must spill, the loop counter must not.
    let src = "
        int a[4];
        int f(int n) {
            int c0 = n + 1, c1 = n + 2, c2 = n + 3, c3 = n + 4, c4 = n + 5,
                c5 = n + 6, c6 = n + 7, c7 = n + 8, c8 = n + 9, c9 = n + 10,
                c10 = n + 11, c11 = n + 12;
            int i, s = 0;
            for (i = 0; i < n; i++) s += a[i & 3] * i;
            return s + c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7 + c8 + c9 + c10 + c11;
        }";
    let (m, program) = compile(src);
    assert!(program.stats.spills > 0, "this kernel must spill");
    // The loop body block must not contain spill loads of the loop
    // counter: find the block executing most often structurally (the
    // one ending in a backward branch) and check it has at most a few
    // memory ops (the a[i&3] load plus perhaps one reload).
    let f = program.asm.func("f").unwrap();
    let ld = m.template_by_mnemonic("ld").unwrap();
    let mut min_loads_in_loop = usize::MAX;
    for (bi, block) in f.blocks.iter().enumerate() {
        let branches_back = block.words.iter().flat_map(|w| &w.insts).any(|inst| {
            inst.ops
                .iter()
                .any(|op| matches!(op, marion_core::Operand::Block(b) if (b.0 as usize) <= bi))
        });
        if branches_back {
            let loads = block
                .words
                .iter()
                .flat_map(|w| &w.insts)
                .filter(|i| i.template == ld)
                .count();
            min_loads_in_loop = min_loads_in_loop.min(loads);
        }
    }
    assert!(
        min_loads_in_loop <= 2,
        "loop body is full of spill reloads ({min_loads_in_loop})"
    );
}
