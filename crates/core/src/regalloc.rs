//! Global register allocation by graph coloring (paper §2.2).
//!
//! The allocator follows Chaitin as refined by Briggs et al.:
//! interference is determined from the instruction order presented to
//! it, simplification is optimistic, and an uncolorable node is
//! spilled for its entire lifetime (load before every use, store
//! after every def) before the whole allocation is retried.
//!
//! Register *pairs* are handled at unit granularity via the
//! description's `%equiv` overlays: a 64-bit `d` register interferes
//! with both 32-bit registers it covers. Values live across calls
//! interfere with the caller-save registers and therefore gravitate
//! to callee-saves.

use crate::code::*;
use crate::error::{CodegenError, Phase};
use marion_maril::{Machine, PhysReg};
use marion_trace::Tracer;
use std::collections::{HashMap, HashSet};

/// Result of one allocation run.
#[derive(Debug, Clone, Default)]
pub struct AllocResult {
    /// Number of virtual registers spilled (total across retries).
    pub spills: usize,
    /// Callee-save registers the function ended up using (to be saved
    /// in the prologue).
    pub used_callee_saves: Vec<PhysReg>,
    /// Number of build/simplify/select iterations.
    pub rounds: usize,
    /// Interference-graph nodes on the first build (the original
    /// allocation problem, before any spill code was inserted).
    pub graph_nodes: usize,
    /// Interference-graph edges (vreg–vreg, undirected) on the first
    /// build.
    pub graph_edges: usize,
    /// Total loop-weighted occurrence cost of the vregs chosen for
    /// spilling (0.0 when nothing spilled).
    pub spill_cost: f64,
}

fn err(msg: impl Into<String>) -> CodegenError {
    CodegenError::new(Phase::RegAlloc, msg)
}

/// Liveness key: a virtual register or a physical register unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    V(Vreg),
    U(u32),
}

/// Allocates physical registers for `func`, inserting spill code as
/// needed. `extra_cost` biases spill choice (used by RASE's schedule
/// estimates: a high value makes a vreg *less* likely to spill).
///
/// # Errors
///
/// Fails when a class has no allocable registers, when spilling makes
/// no progress, or when the machine lacks spill load/store templates
/// for a class that needs them.
pub fn allocate(
    machine: &Machine,
    func: &mut CodeFunc,
    extra_cost: &HashMap<Vreg, f64>,
) -> Result<AllocResult, CodegenError> {
    allocate_traced(machine, func, extra_cost, &Tracer::off())
}

/// [`allocate`] with micro-span profiling: the interference-graph
/// build, simplify/select coloring loops, eviction scans and spill
/// rewrites each fold into the tracer's profile trie (no-ops when the
/// tracer is off).
///
/// # Errors
///
/// Same failure modes as [`allocate`].
pub fn allocate_traced(
    machine: &Machine,
    func: &mut CodeFunc,
    extra_cost: &HashMap<Vreg, f64>,
    tracer: &Tracer,
) -> Result<AllocResult, CodegenError> {
    let mut result = AllocResult::default();
    // Temporaries created by spilling have minimal live ranges and
    // must never themselves be spilled (that would loop forever).
    let mut no_spill: std::collections::HashSet<Vreg> = std::collections::HashSet::new();
    for round in 0..32 {
        result.rounds = round + 1;
        let graph = {
            let _m = tracer.mspan("ig_build");
            build_interference(machine, func)
        };
        if round == 0 {
            result.graph_nodes = graph.nodes.len();
            result.graph_edges = graph.adj.values().map(|s| s.len()).sum::<usize>() / 2;
        }
        match color(machine, func, &graph, extra_cost, &no_spill, tracer)? {
            Coloring::Complete { colors } => {
                {
                    let _m = tracer.mspan("phys_rewrite");
                    rewrite(machine, func, &colors)?;
                }
                let mut saves: Vec<PhysReg> = Vec::new();
                for reg in colors.values() {
                    for cs in &machine.cwvm().callee_save {
                        if machine.regs_overlap(*reg, *cs) && !saves.contains(cs) {
                            saves.push(*cs);
                        }
                    }
                }
                saves.sort();
                result.used_callee_saves = saves;
                return Ok(result);
            }
            Coloring::Spill(vregs) => {
                if vregs.is_empty() {
                    return Err(err("allocator failed without spill candidates"));
                }
                if std::env::var("MARION_RA_DEBUG").is_ok() {
                    eprintln!("round {round}: spilling {vregs:?} in {}", func.name);
                }
                // A failing spill temporary must not be re-spilled (that
                // loops): evict a colourable neighbor instead, or give
                // up — the site is structurally over-committed.
                let _m = tracer.mspan("evict_scan");
                let mut to_spill: Vec<Vreg> = Vec::new();
                for v in vregs {
                    if !no_spill.contains(&v) {
                        if !to_spill.contains(&v) {
                            to_spill.push(v);
                        }
                        continue;
                    }
                    // Any neighbor whose class shares register units
                    // with ours frees colours when evicted (on TOYP a
                    // double blocks two integer registers).
                    let shares_units =
                        |a: marion_maril::RegClassId, b: marion_maril::RegClassId| {
                            let ca = machine.reg_class(a);
                            let cb = machine.reg_class(b);
                            let (a0, a1) = (ca.unit_base, ca.unit_base + ca.count * ca.unit_stride);
                            let (b0, b1) = (cb.unit_base, cb.unit_base + cb.count * cb.unit_stride);
                            a0 < b1 && b0 < a1
                        };
                    let neighbor = graph.adj.get(&v).and_then(|ns| {
                        ns.iter()
                            .filter(|n| {
                                !no_spill.contains(n)
                                    && shares_units(func.vreg(**n).class, func.vreg(v).class)
                            })
                            .max_by_key(|n| {
                                // Tie-break on the vreg number: the hash
                                // iteration order must not pick the victim,
                                // or compilation is not reproducible.
                                let d = graph.adj.get(n).map(|s| s.len()).unwrap_or(0);
                                (d, std::cmp::Reverse(n.0))
                            })
                            .copied()
                    });
                    match neighbor {
                        Some(n) => {
                            if !to_spill.contains(&n) {
                                to_spill.push(n);
                            }
                        }
                        None => {
                            return Err(err(format!(
                                "no register can hold spill temporary {v} of class `{}`                                  (the machine is structurally over-committed at that point)",
                                machine.reg_class(func.vreg(v).class).name
                            )));
                        }
                    }
                }
                drop(_m);
                let _m = tracer.mspan("spill_rewrite");
                for v in &to_spill {
                    result.spill_cost += graph.cost.get(v).copied().unwrap_or(0.0);
                    let first_temp = func.vregs.len();
                    spill_vreg(machine, func, *v)?;
                    for t in first_temp..func.vregs.len() {
                        no_spill.insert(Vreg(t as u32));
                    }
                }
                result.spills += to_spill.len();
            }
        }
    }
    Err(err("register allocation did not converge after 32 rounds"))
}

/// The interference graph plus loop-weighted occurrence costs.
#[derive(Debug, Default)]
struct Graph {
    adj: HashMap<Vreg, HashSet<Vreg>>,
    /// Physical units each vreg must avoid.
    phys_conflicts: HashMap<Vreg, HashSet<u32>>,
    /// Occurrence cost (def/use count weighted by loop depth).
    cost: HashMap<Vreg, f64>,
    /// Vregs live across at least one call.
    across_call: HashSet<Vreg>,
    nodes: Vec<Vreg>,
}

fn keys_of_operand(machine: &Machine, op: &Operand, out: &mut Vec<Key>) {
    match op {
        Operand::Vreg(v) | Operand::VregHalf(v, _) => out.push(Key::V(*v)),
        Operand::Phys(p) => out.extend(machine.units_of(*p).map(Key::U)),
        _ => {}
    }
}

fn inst_defs_uses(machine: &Machine, inst: &Inst) -> (Vec<Key>, Vec<Key>) {
    let mut defs = Vec::new();
    let mut uses = Vec::new();
    for op in inst.def_operands(machine) {
        keys_of_operand(machine, op, &mut defs);
        // Writing half a register keeps the other half live.
        if let Operand::VregHalf(v, _) = op {
            uses.push(Key::V(*v));
        }
    }
    for op in inst.use_operands(machine) {
        keys_of_operand(machine, op, &mut uses);
    }
    for p in &inst.extra_defs {
        defs.extend(machine.units_of(*p).map(Key::U));
    }
    for p in &inst.extra_uses {
        uses.extend(machine.units_of(*p).map(Key::U));
    }
    (defs, uses)
}

/// Approximate loop depth per block: an edge to a lower-numbered block
/// is taken as a back edge `latch -> header`, and a block inside
/// `[header, latch]` is inside that loop. Our front end lays loops out
/// this way.
fn loop_depth(func: &CodeFunc) -> Vec<u32> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        for succ in &block.succs {
            let h = succ.0 as usize;
            if h <= bi {
                spans.push((h, bi));
            }
        }
    }
    (0..func.blocks.len())
        .map(|bi| spans.iter().filter(|(h, l)| *h <= bi && bi <= *l).count() as u32)
        .collect()
}

fn build_interference(machine: &Machine, func: &CodeFunc) -> Graph {
    let nblocks = func.blocks.len();
    // Backward liveness over Key.
    let mut live_in: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
    let mut live_out: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
    // Per-block gen/kill.
    let mut gen: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
    let mut kill: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
    for (bi, block) in func.blocks.iter().enumerate() {
        for inst in &block.insts {
            let (defs, uses) = inst_defs_uses(machine, inst);
            for u in uses {
                if !kill[bi].contains(&u) {
                    gen[bi].insert(u);
                }
            }
            for d in defs {
                kill[bi].insert(d);
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nblocks).rev() {
            let mut out: HashSet<Key> = HashSet::new();
            for succ in &func.blocks[bi].succs {
                out.extend(live_in[succ.0 as usize].iter().copied());
            }
            let mut inn: HashSet<Key> = gen[bi].clone();
            for k in &out {
                if !kill[bi].contains(k) {
                    inn.insert(*k);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
    }

    let depth = loop_depth(func);
    let mut graph = Graph::default();
    for (i, info) in func.vregs.iter().enumerate() {
        let _ = info;
        graph.nodes.push(Vreg(i as u32));
    }
    let add_conflict = |graph: &mut Graph, a: Key, b: Key| match (a, b) {
        (Key::V(x), Key::V(y)) if x != y => {
            graph.adj.entry(x).or_default().insert(y);
            graph.adj.entry(y).or_default().insert(x);
        }
        (Key::V(x), Key::U(u)) | (Key::U(u), Key::V(x)) => {
            graph.phys_conflicts.entry(x).or_default().insert(u);
        }
        _ => {}
    };

    for (bi, block) in func.blocks.iter().enumerate() {
        let weight = 10f64.powi(depth[bi].min(4) as i32);
        let mut live = live_out[bi].clone();
        for inst in block.insts.iter().rev() {
            let (defs, uses) = inst_defs_uses(machine, inst);
            let is_call = machine.template(inst.template).effects.is_call;
            for d in &defs {
                if let Key::V(v) = d {
                    *graph.cost.entry(*v).or_insert(0.0) += weight;
                }
                for l in &live {
                    if l != d {
                        add_conflict(&mut graph, *d, *l);
                    }
                }
            }
            // Defs of the same instruction conflict with each other.
            for (i, a) in defs.iter().enumerate() {
                for b in &defs[i + 1..] {
                    add_conflict(&mut graph, *a, *b);
                }
            }
            if is_call {
                for l in &live {
                    if let Key::V(v) = l {
                        graph.across_call.insert(*v);
                    }
                }
            }
            for d in &defs {
                live.remove(d);
            }
            for u in uses {
                if let Key::V(v) = u {
                    *graph.cost.entry(v).or_insert(0.0) += weight;
                }
                live.insert(u);
            }
        }
    }
    graph
}

enum Coloring {
    Complete { colors: HashMap<Vreg, PhysReg> },
    Spill(Vec<Vreg>),
}

fn color(
    machine: &Machine,
    func: &CodeFunc,
    graph: &Graph,
    extra_cost: &HashMap<Vreg, f64>,
    no_spill: &HashSet<Vreg>,
    tracer: &Tracer,
) -> Result<Coloring, CodegenError> {
    // Only vregs that actually occur need colors.
    let occurring: HashSet<Vreg> = graph
        .cost
        .keys()
        .copied()
        .chain(graph.adj.keys().copied())
        .collect();
    let mut degree: HashMap<Vreg, usize> = HashMap::new();
    for v in &occurring {
        degree.insert(*v, graph.adj.get(v).map(|s| s.len()).unwrap_or(0));
    }
    let k_of = |v: Vreg| -> usize { machine.allocable_of_class(func.vreg(v).class).len() };
    for v in &occurring {
        if k_of(*v) == 0 {
            return Err(err(format!(
                "class `{}` has no allocable registers",
                machine.reg_class(func.vreg(*v).class).name
            )));
        }
    }

    // Simplify with optimistic push (Briggs).
    let _m = tracer.mspan("simplify");
    let mut stack: Vec<Vreg> = Vec::new();
    let mut removed: HashSet<Vreg> = HashSet::new();
    let mut work: Vec<Vreg> = occurring.iter().copied().collect();
    work.sort();
    while removed.len() < occurring.len() {
        let next_low = work
            .iter()
            .find(|v| !removed.contains(v) && degree[v] < k_of(**v))
            .copied();
        let chosen = match next_low {
            Some(v) => v,
            None => {
                // Optimistic spill candidate: lowest cost/degree.
                // Spill-generated temporaries are strongly avoided.
                let mut best: Option<(f64, Vreg)> = None;
                for v in &work {
                    if removed.contains(v) {
                        continue;
                    }
                    let mut c = graph.cost.get(v).copied().unwrap_or(0.0)
                        + extra_cost.get(v).copied().unwrap_or(0.0);
                    if no_spill.contains(v) {
                        c += 1e12;
                    }
                    let d = degree[v].max(1) as f64;
                    let metric = c / d;
                    if best.is_none_or(|(m, _)| metric < m) {
                        best = Some((metric, *v));
                    }
                }
                best.map(|(_, v)| v).ok_or_else(|| err("empty worklist"))?
            }
        };
        removed.insert(chosen);
        stack.push(chosen);
        if let Some(neigh) = graph.adj.get(&chosen) {
            for n in neigh {
                if !removed.contains(n) {
                    *degree.get_mut(n).unwrap() -= 1;
                }
            }
        }
    }

    // Select.
    drop(_m);
    let _m = tracer.mspan("select_colors");
    let mut colors: HashMap<Vreg, PhysReg> = HashMap::new();
    let mut spilled: Vec<Vreg> = Vec::new();
    while let Some(v) = stack.pop() {
        let class = func.vreg(v).class;
        let mut order = machine.allocable_of_class(class);
        // Values live across calls prefer callee-saves; leaves prefer
        // caller-saves (so calls need no saves around them).
        let is_callee_save = |r: &PhysReg| {
            machine
                .cwvm()
                .callee_save
                .iter()
                .any(|cs| machine.regs_overlap(*r, *cs))
        };
        if graph.across_call.contains(&v) {
            order.sort_by_key(|r| (!is_callee_save(r), r.index));
        } else {
            order.sort_by_key(|r| (is_callee_save(r), r.index));
        }
        let forbidden_units: HashSet<u32> =
            graph.phys_conflicts.get(&v).cloned().unwrap_or_default();
        let neighbors = graph.adj.get(&v);
        let choice = order.into_iter().find(|cand| {
            // Avoid precolored conflicts.
            if machine
                .units_of(*cand)
                .any(|u| forbidden_units.contains(&u))
            {
                return false;
            }
            // Avoid colored neighbors (unit overlap).
            if let Some(ns) = neighbors {
                for n in ns {
                    if let Some(nc) = colors.get(n) {
                        if machine.regs_overlap(*cand, *nc) {
                            return false;
                        }
                    }
                }
            }
            // A value live across a call must not sit in a
            // caller-save register (the call clobbers it) — the call's
            // extra_defs already created phys conflicts, so this is
            // covered by `forbidden_units`.
            true
        });
        match choice {
            Some(c) => {
                colors.insert(v, c);
            }
            None => {
                if std::env::var("MARION_RA_DEBUG").is_ok() {
                    let neigh: Vec<String> = graph
                        .adj
                        .get(&v)
                        .map(|ns| {
                            ns.iter()
                                .map(|n| format!("{n}={:?}", colors.get(n)))
                                .collect()
                        })
                        .unwrap_or_default();
                    eprintln!(
                        "  select fail {v} class {:?} no_spill={} forb={:?} neigh={:?}",
                        func.vreg(v).class,
                        no_spill.contains(&v),
                        forbidden_units,
                        neigh
                    );
                }
                spilled.push(v);
            }
        }
    }
    if spilled.is_empty() {
        Ok(Coloring::Complete { colors })
    } else {
        Ok(Coloring::Spill(spilled))
    }
}

/// Rewrites every vreg operand to its physical register.
fn rewrite(
    machine: &Machine,
    func: &mut CodeFunc,
    colors: &HashMap<Vreg, PhysReg>,
) -> Result<(), CodegenError> {
    let vreg_classes: Vec<marion_maril::RegClassId> = func.vregs.iter().map(|i| i.class).collect();
    // Resolve half-references: half i of vreg v is the i-th
    // single-unit register overlapping v's color.
    let half_of = |p: PhysReg, h: u8| -> Result<PhysReg, CodegenError> {
        let units: Vec<u32> = machine.units_of(p).collect();
        let want = *units.get(h as usize).ok_or_else(|| {
            err(format!(
                "register {}{} (class `{}`) has no half {h}",
                machine.reg_class(p.class).name,
                p.index,
                machine.reg_class(p.class).name
            ))
        })?;
        for (ci, c) in machine.reg_classes().iter().enumerate() {
            if c.unit_width == 1 {
                for r in 0..c.count {
                    if c.unit_base + r * c.unit_stride == want {
                        return Ok(PhysReg::new(marion_maril::RegClassId(ci as u32), r));
                    }
                }
            }
        }
        Err(err("no single-unit class overlaps this register"))
    };
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            for op in &mut inst.ops {
                match *op {
                    Operand::Vreg(v) => {
                        let c = colors
                            .get(&v)
                            .ok_or_else(|| err(format!("vreg {v} left uncolored")))?;
                        *op = Operand::Phys(*c);
                    }
                    Operand::VregHalf(v, h) => {
                        let c = colors
                            .get(&v)
                            .ok_or_else(|| err(format!("vreg {v} left uncolored")))?;
                        *op = Operand::Phys(half_of(*c, h).map_err(|e| {
                            err(format!(
                                "{e} (half of {v}, class `{}`)",
                                machine.reg_class(vreg_classes[v.0 as usize]).name
                            ))
                        })?);
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Recognises a spill run that is a pure register copy between `v`
/// and exactly one physical register of `v`'s class. Returns that
/// register and whether `v` is the source.
fn pure_copy_run(machine: &Machine, run: &[Inst], v: Vreg) -> Option<(PhysReg, bool)> {
    let mut phys_units: Vec<u32> = Vec::new();
    let mut v_source: Option<bool> = None;
    for inst in run {
        let t = machine.template(inst.template);
        // Must be a plain `$a = $b` move shape.
        let (a, b) = match t.sem.as_slice() {
            [marion_maril::expr::Stmt::Assign(
                marion_maril::expr::LValue::Operand(a),
                marion_maril::Expr::Operand(b),
            )] => (*a, *b),
            _ => return None,
        };
        let dst = inst.ops.get((a - 1) as usize)?;
        let src = inst.ops.get((b - 1) as usize)?;
        let (phys_op, this_v_source) = match (dst, src) {
            (Operand::Phys(p), Operand::Vreg(x) | Operand::VregHalf(x, _)) if *x == v => (*p, true),
            (Operand::Vreg(x) | Operand::VregHalf(x, _), Operand::Phys(p)) if *x == v => {
                (*p, false)
            }
            _ => return None,
        };
        if *v_source.get_or_insert(this_v_source) != this_v_source {
            return None;
        }
        phys_units.extend(machine.units_of(phys_op));
    }
    let v_source = v_source?;
    // The physical units must exactly compose one register of a class
    // that the spill load/store for `v` can address; search every
    // class for it.
    phys_units.sort_unstable();
    phys_units.dedup();
    for (ci, c) in machine.reg_classes().iter().enumerate() {
        for r in 0..c.count {
            let reg = PhysReg::new(marion_maril::RegClassId(ci as u32), r);
            let mut units: Vec<u32> = machine.units_of(reg).collect();
            units.sort_unstable();
            if units == phys_units {
                return Some((reg, v_source));
            }
        }
    }
    None
}

/// Spills `v`: allocate a slot, load before each use, store after each
/// def, rewriting occurrences to fresh one-shot temporaries.
fn spill_vreg(machine: &Machine, func: &mut CodeFunc, v: Vreg) -> Result<(), CodegenError> {
    let class = func.vreg(v).class;
    let load_t = machine.spill_load(class).ok_or_else(|| {
        err(format!(
            "no spill load for class `{}`",
            machine.reg_class(class).name
        ))
    })?;
    let store_t = machine.spill_store(class).ok_or_else(|| {
        err(format!(
            "no spill store for class `{}`",
            machine.reg_class(class).name
        ))
    })?;
    let sp = machine
        .cwvm()
        .sp
        .ok_or_else(|| err("machine declares no stack pointer"))?;
    let slot = func.new_spill_slot() as i64;
    let kind = func.vreg(v).kind;
    let _ = kind;

    for bi in 0..func.blocks.len() {
        let mut new_insts: Vec<Inst> = Vec::new();
        let insts = std::mem::take(&mut func.blocks[bi].insts);
        // Group maximal runs of consecutive instructions touching `v`
        // (a `*func` escape writes a pair register with two adjacent
        // half-moves; the pair must be reloaded/stored as one unit).
        let mut i = 0;
        while i < insts.len() {
            let touches = |inst: &Inst| {
                inst.ops
                    .iter()
                    .any(|op| matches!(op, Operand::Vreg(x) | Operand::VregHalf(x, _) if *x == v))
            };
            let touches_half = |inst: &Inst| {
                inst.ops
                    .iter()
                    .any(|op| matches!(op, Operand::VregHalf(x, _) if *x == v))
            };
            if !touches(&insts[i]) {
                new_insts.push(insts[i].clone());
                i += 1;
                continue;
            }
            // One instruction per run, except half-register (escape
            // pair) sequences, which must reload/store as one unit.
            // Merging arbitrary touching neighbours would keep the
            // temporary live through unrelated instructions and can
            // make tiny register files uncolourable.
            let mut j = i + 1;
            if touches_half(&insts[i]) {
                while j < insts.len() && touches_half(&insts[j]) {
                    j += 1;
                }
            }
            let run = &insts[i..j];
            // A run that merely copies between `v` and one physical
            // register (argument/result moves, including half-move
            // pairs from `*func` escapes) needs no temporary at all:
            // transfer directly between the spill slot and that
            // register. This is what keeps call boundaries colourable
            // on machines whose register pairs cover the whole file.
            if let Some((phys, v_is_source)) = pure_copy_run(machine, run, v) {
                if v_is_source {
                    // phys := v  ==>  load phys from the slot.
                    new_insts.push(Inst::new(
                        load_t,
                        vec![
                            Operand::Phys(phys),
                            Operand::Phys(sp),
                            Operand::Imm(ImmVal::Const(slot)),
                        ],
                    ));
                } else {
                    // v := phys  ==>  store phys to the slot.
                    new_insts.push(Inst::new(
                        store_t,
                        vec![
                            Operand::Phys(phys),
                            Operand::Phys(sp),
                            Operand::Imm(ImmVal::Const(slot)),
                        ],
                    ));
                }
                i = j;
                continue;
            }
            let tmp = func.new_vreg(class, VregKind::Local);
            let mut run_uses = false;
            let mut run_defs = false;
            let mut rewritten: Vec<Inst> = Vec::with_capacity(run.len());
            for inst in run {
                let t = machine.template(inst.template);
                for k in &t.effects.uses {
                    if let Some(Operand::Vreg(x)) | Some(Operand::VregHalf(x, _)) =
                        inst.ops.get((*k - 1) as usize)
                    {
                        if *x == v {
                            run_uses = true;
                        }
                    }
                }
                for k in &t.effects.defs {
                    if let Some(Operand::Vreg(x)) | Some(Operand::VregHalf(x, _)) =
                        inst.ops.get((*k - 1) as usize)
                    {
                        if *x == v {
                            run_defs = true;
                        }
                    }
                }
                let mut inst = inst.clone();
                for op in &mut inst.ops {
                    match *op {
                        Operand::Vreg(x) if x == v => *op = Operand::Vreg(tmp),
                        Operand::VregHalf(x, h) if x == v => *op = Operand::VregHalf(tmp, h),
                        _ => {}
                    }
                }
                rewritten.push(inst);
            }
            // A run that writes only part of the register (one half)
            // must merge with the slot's existing contents.
            let partial_def = run_defs
                && rewritten.iter().any(|inst| {
                    inst.ops
                        .iter()
                        .any(|op| matches!(op, Operand::VregHalf(..)))
                });
            if run_uses || partial_def {
                new_insts.push(Inst::new(
                    load_t,
                    vec![
                        Operand::Vreg(tmp),
                        Operand::Phys(sp),
                        Operand::Imm(ImmVal::Const(slot)),
                    ],
                ));
            }
            new_insts.extend(rewritten);
            if run_defs {
                new_insts.push(Inst::new(
                    store_t,
                    vec![
                        Operand::Vreg(tmp),
                        Operand::Phys(sp),
                        Operand::Imm(ImmVal::Const(slot)),
                    ],
                ));
            }
            i = j;
        }
        func.blocks[bi].insts = new_insts;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::BlockId;
    use marion_maril::RegClassId;

    const TOY: &str = r#"
        declare {
            %reg r[0:7] (int);
            %resource IE;
            %def const16 [-32768:32767];
            %label rlab [-32768:32767] +relative;
            %memory m[0:2147483647];
        }
        cwvm {
            %general (int) r;
            %allocable r[1:5];
            %calleesave r[4:7];
            %sp r[7] +down; %fp r[6] +down; %retaddr r[1];
            %hard r[0] 0;
        }
        instr {
            %instr add r, r, r (int) {$1 = $2 + $3;} [IE;] (1,1,0)
            %instr ld r, r, #const16 (int) {$1 = m[$2+$3];} [IE;] (1,3,0)
            %instr st r, r, #const16 (int) {m[$2+$3] = $1;} [IE;] (1,1,0)
            %move add2 r, r, r[0] {$1 = $2;} [IE;] (1,1,0)
        }
    "#;

    fn toy() -> Machine {
        Machine::parse("toy", TOY).unwrap()
    }

    fn v(n: u32) -> Operand {
        Operand::Vreg(Vreg(n))
    }

    fn imm(c: i64) -> Operand {
        Operand::Imm(ImmVal::Const(c))
    }

    fn inst(m: &Machine, mnem: &str, ops: Vec<Operand>) -> Inst {
        Inst::new(m.template_by_mnemonic(mnem).unwrap(), ops)
    }

    fn phys_ops(f: &CodeFunc) -> Vec<Vec<Operand>> {
        f.blocks
            .iter()
            .flat_map(|b| b.insts.iter().map(|i| i.ops.clone()))
            .collect()
    }

    #[test]
    fn colors_simple_chain() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        for _ in 0..4 {
            f.new_vreg(r, VregKind::Local);
        }
        f.blocks.push(CodeBlock {
            insts: vec![
                inst(
                    &m,
                    "ld",
                    vec![v(0), Operand::Phys(PhysReg::new(r, 7)), imm(0)],
                ),
                inst(&m, "add", vec![v(1), v(0), v(0)]),
                inst(
                    &m,
                    "st",
                    vec![v(1), Operand::Phys(PhysReg::new(r, 7)), imm(4)],
                ),
            ],
            succs: vec![],
        });
        let res = allocate(&m, &mut f, &HashMap::new()).unwrap();
        assert_eq!(res.spills, 0);
        for ops in phys_ops(&f) {
            for op in ops {
                assert!(!matches!(op, Operand::Vreg(_)), "vreg survived: {op}");
            }
        }
    }

    #[test]
    fn interfering_values_get_distinct_registers() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        for _ in 0..3 {
            f.new_vreg(r, VregKind::Local);
        }
        let sp = Operand::Phys(PhysReg::new(r, 7));
        // v0 and v1 are simultaneously live.
        f.blocks.push(CodeBlock {
            insts: vec![
                inst(&m, "ld", vec![v(0), sp, imm(0)]),
                inst(&m, "ld", vec![v(1), sp, imm(4)]),
                inst(&m, "add", vec![v(2), v(0), v(1)]),
                inst(&m, "st", vec![v(2), sp, imm(8)]),
            ],
            succs: vec![],
        });
        allocate(&m, &mut f, &HashMap::new()).unwrap();
        let ops = phys_ops(&f);
        let (a, b) = (ops[0][0], ops[1][0]);
        assert_ne!(a, b, "interfering vregs colored alike");
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        // 8 simultaneously-live values, only 5 allocable registers.
        let n = 8;
        for _ in 0..=n {
            f.new_vreg(r, VregKind::Local);
        }
        let sp = Operand::Phys(PhysReg::new(r, 7));
        let mut insts: Vec<Inst> = (0..n)
            .map(|i| inst(&m, "ld", vec![v(i), sp, imm(4 * i as i64)]))
            .collect();
        // One instruction using all of them pairwise.
        let mut acc = 0u32;
        for i in 1..n {
            insts.push(inst(&m, "add", vec![v(acc), v(acc), v(i)]));
            acc = 0;
        }
        insts.push(inst(&m, "st", vec![v(0), sp, imm(64)]));
        f.blocks.push(CodeBlock {
            insts,
            succs: vec![],
        });
        let res = allocate(&m, &mut f, &HashMap::new()).unwrap();
        assert!(res.spills > 0, "must spill: {res:?}");
        assert!(f.spill_size > 0);
        // And the result must be fully physical.
        for ops in phys_ops(&f) {
            for op in ops {
                assert!(!matches!(op, Operand::Vreg(_)));
            }
        }
    }

    #[test]
    fn precolored_conflicts_respected() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        f.new_vreg(r, VregKind::Local);
        let sp = Operand::Phys(PhysReg::new(r, 7));
        let r2 = Operand::Phys(PhysReg::new(r, 2));
        // v0 live across a def of r2 — must not be colored r2.
        f.blocks.push(CodeBlock {
            insts: vec![
                inst(&m, "ld", vec![v(0), sp, imm(0)]),
                inst(&m, "ld", vec![r2, sp, imm(4)]),
                inst(&m, "add", vec![r2, r2, v(0)]),
                inst(&m, "st", vec![r2, sp, imm(8)]),
            ],
            succs: vec![],
        });
        allocate(&m, &mut f, &HashMap::new()).unwrap();
        let ops = phys_ops(&f);
        assert_ne!(ops[0][0], r2, "v0 colored into a conflicting phys reg");
    }

    #[test]
    fn loop_depth_heuristic() {
        let mut f = CodeFunc::new("t");
        f.blocks = vec![
            CodeBlock {
                insts: vec![],
                succs: vec![BlockId(1)],
            },
            CodeBlock {
                insts: vec![],
                succs: vec![BlockId(2), BlockId(3)],
            },
            CodeBlock {
                insts: vec![],
                succs: vec![BlockId(1)],
            }, // back edge
            CodeBlock {
                insts: vec![],
                succs: vec![],
            },
        ];
        let d = loop_depth(&f);
        assert_eq!(d, vec![0, 1, 1, 0]);
    }
}
