//! Global register allocation by graph coloring (paper §2.2).
//!
//! The allocator follows Chaitin as refined by Briggs et al.:
//! interference is determined from the instruction order presented to
//! it, simplification is optimistic, and an uncolorable node is
//! spilled for its entire lifetime (load before every use, store
//! after every def) before the whole allocation is retried.
//!
//! Register *pairs* are handled at unit granularity via the
//! description's `%equiv` overlays: a 64-bit `d` register interferes
//! with both 32-bit registers it covers. Values live across calls
//! interfere with the caller-save registers and therefore gravitate
//! to callee-saves.
//!
//! Data layout: everything is dense-id indexed. The liveness key
//! universe is `0..nv` for virtual registers (`Vreg(v)` is bit `v`)
//! followed by `nv..nv+units` for physical register units, so
//! live-in/out/gen/kill are word-parallel [`BitSet`]s and the
//! dataflow fixpoint is a handful of `u64` loops per block. The
//! interference graph is built as a symmetric [`BitMatrix`] (O(1)
//! deduplicated edge insertion) and flattened to a [`Csr`] adjacency
//! array, so simplify/select/evict walk contiguous sorted neighbor
//! slices instead of rehashing per candidate.

use crate::code::*;
use crate::dense::{BitMatrix, BitSet, Csr};
use crate::error::{CodegenError, Phase};
use marion_maril::{Machine, PhysReg};
use marion_trace::Tracer;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Result of one allocation run.
#[derive(Debug, Clone, Default)]
pub struct AllocResult {
    /// Number of virtual registers spilled (total across retries).
    pub spills: usize,
    /// Callee-save registers the function ended up using (to be saved
    /// in the prologue).
    pub used_callee_saves: Vec<PhysReg>,
    /// Number of build/simplify/select iterations.
    pub rounds: usize,
    /// Interference-graph nodes on the first build (the original
    /// allocation problem, before any spill code was inserted).
    pub graph_nodes: usize,
    /// Interference-graph edges (vreg–vreg, undirected) on the first
    /// build.
    pub graph_edges: usize,
    /// Total loop-weighted occurrence cost of the vregs chosen for
    /// spilling (0.0 when nothing spilled).
    pub spill_cost: f64,
}

fn err(msg: impl Into<String>) -> CodegenError {
    CodegenError::new(Phase::RegAlloc, msg)
}

/// Allocates physical registers for `func`, inserting spill code as
/// needed. `extra_cost` biases spill choice (used by RASE's schedule
/// estimates: a high value makes a vreg *less* likely to spill).
///
/// # Errors
///
/// Fails when a class has no allocable registers, when spilling makes
/// no progress, or when the machine lacks spill load/store templates
/// for a class that needs them.
pub fn allocate(
    machine: &Machine,
    func: &mut CodeFunc,
    extra_cost: &HashMap<Vreg, f64>,
) -> Result<AllocResult, CodegenError> {
    allocate_traced(machine, func, extra_cost, &Tracer::off())
}

/// [`allocate`] with micro-span profiling: the interference-graph
/// build, simplify/select coloring loops, eviction scans and spill
/// rewrites each fold into the tracer's profile trie (no-ops when the
/// tracer is off).
///
/// # Errors
///
/// Same failure modes as [`allocate`].
pub fn allocate_traced(
    machine: &Machine,
    func: &mut CodeFunc,
    extra_cost: &HashMap<Vreg, f64>,
    tracer: &Tracer,
) -> Result<AllocResult, CodegenError> {
    let mut result = AllocResult::default();
    // Temporaries created by spilling have minimal live ranges and
    // must never themselves be spilled (that would loop forever).
    // Dense flag per vreg, grown as spill code mints new vregs.
    let mut no_spill: Vec<bool> = Vec::new();
    for round in 0..32 {
        result.rounds = round + 1;
        no_spill.resize(func.vregs.len(), false);
        let graph = {
            let _m = tracer.mspan("ig_build");
            build_interference(machine, func)
        };
        if round == 0 {
            result.graph_nodes = graph.nv;
            result.graph_edges = graph.adj.total_targets() / 2;
        }
        match color(machine, func, &graph, extra_cost, &no_spill, tracer)? {
            Coloring::Complete { colors } => {
                {
                    let _m = tracer.mspan("phys_rewrite");
                    rewrite(machine, func, &colors)?;
                }
                let mut saves: Vec<PhysReg> = Vec::new();
                for reg in colors.iter().flatten() {
                    for cs in &machine.cwvm().callee_save {
                        if machine.regs_overlap(*reg, *cs) && !saves.contains(cs) {
                            saves.push(*cs);
                        }
                    }
                }
                saves.sort();
                result.used_callee_saves = saves;
                return Ok(result);
            }
            Coloring::Spill(vregs) => {
                if vregs.is_empty() {
                    return Err(err("allocator failed without spill candidates"));
                }
                if std::env::var("MARION_RA_DEBUG").is_ok() {
                    eprintln!("round {round}: spilling {vregs:?} in {}", func.name);
                }
                // A failing spill temporary must not be re-spilled (that
                // loops): evict a colourable neighbor instead, or give
                // up — the site is structurally over-committed.
                let _m = tracer.mspan("evict_scan");
                let mut to_spill: Vec<Vreg> = Vec::new();
                for v in vregs {
                    if !no_spill[v.0 as usize] {
                        if !to_spill.contains(&v) {
                            to_spill.push(v);
                        }
                        continue;
                    }
                    // Any neighbor whose class shares register units
                    // with ours frees colours when evicted (on TOYP a
                    // double blocks two integer registers).
                    let shares_units =
                        |a: marion_maril::RegClassId, b: marion_maril::RegClassId| {
                            let ca = machine.reg_class(a);
                            let cb = machine.reg_class(b);
                            let (a0, a1) = (ca.unit_base, ca.unit_base + ca.count * ca.unit_stride);
                            let (b0, b1) = (cb.unit_base, cb.unit_base + cb.count * cb.unit_stride);
                            a0 < b1 && b0 < a1
                        };
                    let neighbor = graph
                        .adj
                        .neighbors(v.0 as usize)
                        .iter()
                        .filter(|n| {
                            !no_spill[**n as usize]
                                && shares_units(func.vreg(Vreg(**n)).class, func.vreg(v).class)
                        })
                        .max_by_key(|n| {
                            // Tie-break on the vreg number so the victim
                            // choice is reproducible.
                            let d = graph.adj.degree(**n as usize);
                            (d, std::cmp::Reverse(**n))
                        })
                        .map(|n| Vreg(*n));
                    match neighbor {
                        Some(n) => {
                            if !to_spill.contains(&n) {
                                to_spill.push(n);
                            }
                        }
                        None => {
                            return Err(err(format!(
                                "no register can hold spill temporary {v} of class `{}`                                  (the machine is structurally over-committed at that point)",
                                machine.reg_class(func.vreg(v).class).name
                            )));
                        }
                    }
                }
                drop(_m);
                let _m = tracer.mspan("spill_rewrite");
                for v in &to_spill {
                    result.spill_cost += graph.cost[v.0 as usize];
                    let first_temp = func.vregs.len();
                    spill_vreg(machine, func, *v)?;
                    no_spill.resize(func.vregs.len(), false);
                    for flag in &mut no_spill[first_temp..] {
                        *flag = true;
                    }
                }
                result.spills += to_spill.len();
            }
        }
    }
    Err(err("register allocation did not converge after 32 rounds"))
}

/// The interference graph plus loop-weighted occurrence costs, all
/// dense-id indexed by vreg number.
#[derive(Debug, Default)]
struct Graph {
    /// Vreg–vreg adjacency as sorted compressed rows.
    adj: Csr,
    /// Physical units each vreg must avoid: row `v`, column `unit`.
    phys: BitMatrix,
    /// Occurrence cost (def/use count weighted by loop depth).
    cost: Vec<f64>,
    /// Vregs live across at least one call.
    across_call: BitSet,
    /// Vregs that occur at all (have cost or an interference edge);
    /// only these need colors.
    occurs: BitSet,
    /// Number of vregs (dense universe width of the vreg part).
    nv: usize,
}

/// Appends the dense liveness ids of `op`: a vreg is its own number,
/// a physical register contributes `nv + unit` for each unit.
fn dense_ids_of_operand(machine: &Machine, nv: u32, op: &Operand, out: &mut Vec<u32>) {
    match op {
        Operand::Vreg(v) | Operand::VregHalf(v, _) => out.push(v.0),
        Operand::Phys(p) => out.extend(machine.units_of(*p).map(|u| nv + u)),
        _ => {}
    }
}

/// Collects the dense def/use id lists of one instruction.
fn inst_defs_uses_dense(
    machine: &Machine,
    nv: u32,
    inst: &Inst,
    defs: &mut Vec<u32>,
    uses: &mut Vec<u32>,
) {
    for op in inst.def_operands(machine) {
        dense_ids_of_operand(machine, nv, op, defs);
        // Writing half a register keeps the other half live.
        if let Operand::VregHalf(v, _) = op {
            uses.push(v.0);
        }
    }
    for op in inst.use_operands(machine) {
        dense_ids_of_operand(machine, nv, op, uses);
    }
    for p in &inst.extra_defs {
        defs.extend(machine.units_of(*p).map(|u| nv + u));
    }
    for p in &inst.extra_uses {
        uses.extend(machine.units_of(*p).map(|u| nv + u));
    }
}

/// Approximate loop depth per block: an edge to a lower-numbered block
/// is taken as a back edge `latch -> header`, and a block inside
/// `[header, latch]` is inside that loop. Our front end lays loops out
/// this way.
fn loop_depth(func: &CodeFunc) -> Vec<u32> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        for succ in &block.succs {
            let h = succ.0 as usize;
            if h <= bi {
                spans.push((h, bi));
            }
        }
    }
    (0..func.blocks.len())
        .map(|bi| spans.iter().filter(|(h, l)| *h <= bi && bi <= *l).count() as u32)
        .collect()
}

fn build_interference(machine: &Machine, func: &CodeFunc) -> Graph {
    let nv = func.vregs.len();
    let nu = machine.unit_count() as usize;
    let nk = nv + nu;
    let nblocks = func.blocks.len();

    // Per-instruction dense def/use id lists, flattened once so the
    // gen/kill pass and the backward interference walk share them.
    let mut ids: Vec<u32> = Vec::new();
    let mut spans: Vec<(u32, u32, u32)> = Vec::new(); // (start, def_end, use_end)
    let mut block_first: Vec<usize> = Vec::with_capacity(nblocks + 1);
    let mut defs_tmp: Vec<u32> = Vec::new();
    let mut uses_tmp: Vec<u32> = Vec::new();
    for block in &func.blocks {
        block_first.push(spans.len());
        for inst in &block.insts {
            defs_tmp.clear();
            uses_tmp.clear();
            inst_defs_uses_dense(machine, nv as u32, inst, &mut defs_tmp, &mut uses_tmp);
            let start = ids.len() as u32;
            ids.extend_from_slice(&defs_tmp);
            let def_end = ids.len() as u32;
            ids.extend_from_slice(&uses_tmp);
            spans.push((start, def_end, ids.len() as u32));
        }
    }
    block_first.push(spans.len());

    // Backward liveness over the dense key universe.
    let mut gen: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(nk)).collect();
    let mut kill: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(nk)).collect();
    for bi in 0..nblocks {
        for &(start, def_end, use_end) in &spans[block_first[bi]..block_first[bi + 1]] {
            for &u in &ids[def_end as usize..use_end as usize] {
                if !kill[bi].contains(u as usize) {
                    gen[bi].insert(u as usize);
                }
            }
            for &d in &ids[start as usize..def_end as usize] {
                kill[bi].insert(d as usize);
            }
        }
    }
    let mut live_in: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(nk)).collect();
    let mut live_out: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(nk)).collect();
    let mut out = BitSet::new(nk);
    let mut inn = BitSet::new(nk);
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nblocks).rev() {
            out.clear();
            for succ in &func.blocks[bi].succs {
                out.union_with(&live_in[succ.0 as usize]);
            }
            // in = gen ∪ (out − kill), fused word-parallel.
            inn.assign_union_minus(&gen[bi], &out, &kill[bi]);
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi].copy_from(&out);
                live_in[bi].copy_from(&inn);
                changed = true;
            }
        }
    }

    let depth = loop_depth(func);
    let mut adj = BitMatrix::new(nv, nv);
    let mut phys = BitMatrix::new(nv, nu);
    let mut cost = vec![0.0f64; nv];
    let mut across_call = BitSet::new(nv.max(1));
    let mut occurs = BitSet::new(nv.max(1));
    let mut add_conflict = |a: u32, b: u32, adj: &mut BitMatrix, occurs: &mut BitSet| {
        let (a, b) = (a as usize, b as usize);
        if a < nv && b < nv {
            if a != b {
                adj.set(a, b);
                adj.set(b, a);
                occurs.insert(a);
                occurs.insert(b);
            }
        } else if a < nv {
            phys.set(a, b - nv);
        } else if b < nv {
            phys.set(b, a - nv);
        }
    };

    let mut live = BitSet::new(nk);
    for (bi, block) in func.blocks.iter().enumerate() {
        let weight = 10f64.powi(depth[bi].min(4) as i32);
        live.copy_from(&live_out[bi]);
        for si in (block_first[bi]..block_first[bi + 1]).rev() {
            let (start, def_end, use_end) = spans[si];
            let defs = &ids[start as usize..def_end as usize];
            let uses = &ids[def_end as usize..use_end as usize];
            let inst = &block.insts[si - block_first[bi]];
            let is_call = machine.template(inst.template).effects.is_call;
            for &d in defs {
                if (d as usize) < nv {
                    cost[d as usize] += weight;
                    occurs.insert(d as usize);
                }
                for l in live.iter() {
                    if l != d as usize {
                        add_conflict(d, l as u32, &mut adj, &mut occurs);
                    }
                }
            }
            // Defs of the same instruction conflict with each other.
            for (i, a) in defs.iter().enumerate() {
                for b in &defs[i + 1..] {
                    add_conflict(*a, *b, &mut adj, &mut occurs);
                }
            }
            if is_call {
                for l in live.iter() {
                    if l < nv {
                        across_call.insert(l);
                    }
                }
            }
            for &d in defs {
                live.remove(d as usize);
            }
            for &u in uses {
                if (u as usize) < nv {
                    cost[u as usize] += weight;
                    occurs.insert(u as usize);
                }
                live.insert(u as usize);
            }
        }
    }
    Graph {
        adj: Csr::from_matrix(&adj),
        phys,
        cost,
        across_call,
        occurs,
        nv,
    }
}

enum Coloring {
    Complete { colors: Vec<Option<PhysReg>> },
    Spill(Vec<Vreg>),
}

fn color(
    machine: &Machine,
    func: &CodeFunc,
    graph: &Graph,
    extra_cost: &HashMap<Vreg, f64>,
    no_spill: &[bool],
    tracer: &Tracer,
) -> Result<Coloring, CodegenError> {
    // Colors-per-class, cached by class id.
    let k_by_class: Vec<usize> = (0..machine.reg_classes().len())
        .map(|ci| {
            machine
                .allocable_of_class(marion_maril::RegClassId(ci as u32))
                .len()
        })
        .collect();
    let k_of = |v: u32| -> usize { k_by_class[func.vreg(Vreg(v)).class.0 as usize] };
    // Only vregs that actually occur need colors.
    for v in graph.occurs.iter() {
        if k_of(v as u32) == 0 {
            return Err(err(format!(
                "class `{}` has no allocable registers",
                machine.reg_class(func.vreg(Vreg(v as u32)).class).name
            )));
        }
    }
    let occ_total = graph.occurs.len();

    // Simplify with optimistic push (Briggs). Degrees only decrease,
    // so the low-degree set grows monotonically: a min-id heap seeded
    // with the initially-low nodes and fed on each below-k crossing
    // yields exactly the lowest-numbered low-degree node each step.
    let _m = tracer.mspan("simplify");
    let mut degree: Vec<u32> = vec![0; graph.nv];
    let mut low: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    for v in graph.occurs.iter() {
        let d = graph.adj.degree(v) as u32;
        degree[v] = d;
        if (d as usize) < k_of(v as u32) {
            low.push(Reverse(v as u32));
        }
    }
    let mut stack: Vec<u32> = Vec::with_capacity(occ_total);
    let mut removed: Vec<bool> = vec![false; graph.nv];
    let mut removed_cnt = 0usize;
    while removed_cnt < occ_total {
        let next_low = loop {
            match low.pop() {
                Some(Reverse(v)) if removed[v as usize] => continue,
                Some(Reverse(v)) => break Some(v),
                None => break None,
            }
        };
        let chosen = match next_low {
            Some(v) => v,
            None => {
                // Optimistic spill candidate: lowest cost/degree, in
                // vreg order with first-minimum-wins. Spill-generated
                // temporaries are strongly avoided.
                let mut best: Option<(f64, u32)> = None;
                for v in graph.occurs.iter() {
                    if removed[v] {
                        continue;
                    }
                    let mut c =
                        graph.cost[v] + extra_cost.get(&Vreg(v as u32)).copied().unwrap_or(0.0);
                    if no_spill[v] {
                        c += 1e12;
                    }
                    let d = degree[v].max(1) as f64;
                    let metric = c / d;
                    if best.is_none_or(|(m, _)| metric < m) {
                        best = Some((metric, v as u32));
                    }
                }
                best.map(|(_, v)| v).ok_or_else(|| err("empty worklist"))?
            }
        };
        removed[chosen as usize] = true;
        removed_cnt += 1;
        stack.push(chosen);
        for &n in graph.adj.neighbors(chosen as usize) {
            if !removed[n as usize] {
                let d = degree[n as usize];
                degree[n as usize] = d - 1;
                // Crossed from ≥k to <k: now simplifiable.
                if d as usize == k_of(n) {
                    low.push(Reverse(n));
                }
            }
        }
    }

    // Select. The candidate preference orders are per-class
    // invariants, so they are computed once per class (lazily, first
    // use) instead of being re-sorted per node: one order preferring
    // caller-saves (for values not live across calls) and one
    // preferring callee-saves, each candidate carrying its contiguous
    // unit range. Per node the forbidden units — the precolored row
    // plus every colored neighbor's units — are gathered into one
    // bitset, so the candidate scan is O(candidates · width) bit
    // probes instead of O(candidates · neighbors) overlap tests.
    drop(_m);
    let _m = tracer.mspan("select_colors");
    let nunits = machine.unit_count() as usize;
    type Order = Vec<(PhysReg, u32, u32)>;
    // [caller-save-first, callee-save-first] per class id.
    let mut orders: Vec<Option<[Order; 2]>> = vec![None; machine.reg_classes().len()];
    let mut forbidden = BitSet::new(nunits);
    let mut colors: Vec<Option<PhysReg>> = vec![None; graph.nv];
    let mut spilled: Vec<Vreg> = Vec::new();
    while let Some(v) = stack.pop() {
        let class = func.vreg(Vreg(v)).class;
        let ci = class.0 as usize;
        if orders[ci].is_none() {
            // Values live across calls prefer callee-saves; leaves
            // prefer caller-saves (so calls need no saves around
            // them). The sorts are stable, so ties keep CWVM order.
            let is_callee_save = |r: &PhysReg| {
                machine
                    .cwvm()
                    .callee_save
                    .iter()
                    .any(|cs| machine.regs_overlap(*r, *cs))
            };
            let base: Vec<(PhysReg, bool)> = machine
                .allocable_of_class(class)
                .into_iter()
                .map(|r| (r, is_callee_save(&r)))
                .collect();
            let ranged = |src: &[(PhysReg, bool)]| -> Order {
                src.iter()
                    .map(|(r, _)| {
                        let (s, e) = machine.unit_range(*r);
                        (*r, s, e)
                    })
                    .collect()
            };
            let mut caller_first = base.clone();
            caller_first.sort_by_key(|(r, cs)| (*cs, r.index));
            let mut callee_first = base;
            callee_first.sort_by_key(|(r, cs)| (!*cs, r.index));
            orders[ci] = Some([ranged(&caller_first), ranged(&callee_first)]);
        }
        let pair = orders[ci].as_ref().unwrap();
        let order = &pair[usize::from(graph.across_call.contains(v as usize))];
        // Precolored conflicts; a value live across a call must not
        // sit in a caller-save register, but the call's extra_defs
        // already created phys conflicts, so that is covered here.
        forbidden.clear();
        for u in graph.phys.row_iter(v as usize) {
            forbidden.insert(u);
        }
        // Colored neighbors (unit overlap).
        let neighbors = graph.adj.neighbors(v as usize);
        for &n in neighbors {
            if let Some(nc) = colors[n as usize] {
                let (s, e) = machine.unit_range(nc);
                for u in s..e {
                    forbidden.insert(u as usize);
                }
            }
        }
        let choice = order
            .iter()
            .find(|(_, s, e)| (*s..*e).all(|u| !forbidden.contains(u as usize)))
            .map(|(r, _, _)| *r);
        match choice {
            Some(c) => {
                colors[v as usize] = Some(c);
            }
            None => {
                if std::env::var("MARION_RA_DEBUG").is_ok() {
                    let neigh: Vec<String> = neighbors
                        .iter()
                        .map(|n| format!("{}={:?}", Vreg(*n), colors[*n as usize]))
                        .collect();
                    let forb: Vec<usize> = graph.phys.row_iter(v as usize).collect();
                    eprintln!(
                        "  select fail {} class {:?} no_spill={} forb={:?} neigh={:?}",
                        Vreg(v),
                        func.vreg(Vreg(v)).class,
                        no_spill[v as usize],
                        forb,
                        neigh
                    );
                }
                spilled.push(Vreg(v));
            }
        }
    }
    if spilled.is_empty() {
        Ok(Coloring::Complete { colors })
    } else {
        Ok(Coloring::Spill(spilled))
    }
}

/// Rewrites every vreg operand to its physical register.
fn rewrite(
    machine: &Machine,
    func: &mut CodeFunc,
    colors: &[Option<PhysReg>],
) -> Result<(), CodegenError> {
    let vreg_classes: Vec<marion_maril::RegClassId> = func.vregs.iter().map(|i| i.class).collect();
    // Resolve half-references: half i of vreg v is the i-th
    // single-unit register overlapping v's color.
    let half_of = |p: PhysReg, h: u8| -> Result<PhysReg, CodegenError> {
        let units: Vec<u32> = machine.units_of(p).collect();
        let want = *units.get(h as usize).ok_or_else(|| {
            err(format!(
                "register {}{} (class `{}`) has no half {h}",
                machine.reg_class(p.class).name,
                p.index,
                machine.reg_class(p.class).name
            ))
        })?;
        for (ci, c) in machine.reg_classes().iter().enumerate() {
            if c.unit_width == 1 {
                for r in 0..c.count {
                    if c.unit_base + r * c.unit_stride == want {
                        return Ok(PhysReg::new(marion_maril::RegClassId(ci as u32), r));
                    }
                }
            }
        }
        Err(err("no single-unit class overlaps this register"))
    };
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            for op in &mut inst.ops {
                match *op {
                    Operand::Vreg(v) => {
                        let c = colors[v.0 as usize]
                            .ok_or_else(|| err(format!("vreg {v} left uncolored")))?;
                        *op = Operand::Phys(c);
                    }
                    Operand::VregHalf(v, h) => {
                        let c = colors[v.0 as usize]
                            .ok_or_else(|| err(format!("vreg {v} left uncolored")))?;
                        *op = Operand::Phys(half_of(c, h).map_err(|e| {
                            err(format!(
                                "{e} (half of {v}, class `{}`)",
                                machine.reg_class(vreg_classes[v.0 as usize]).name
                            ))
                        })?);
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Recognises a spill run that is a pure register copy between `v`
/// and exactly one physical register of `v`'s class. Returns that
/// register and whether `v` is the source.
///
/// The composed register must belong to `class` (the spilled vreg's
/// own class): a lone half-move — an escape pair split apart by
/// pre-allocation scheduling — composes a single-unit register of the
/// *overlay* class, and transferring through it with the full-width
/// spill template would store the wrong class at the wrong width.
/// Such runs take the general read-modify-write path instead.
fn pure_copy_run(
    machine: &Machine,
    run: &[Inst],
    v: Vreg,
    class: marion_maril::RegClassId,
) -> Option<(PhysReg, bool)> {
    let mut phys_units: Vec<u32> = Vec::new();
    let mut v_source: Option<bool> = None;
    for inst in run {
        let t = machine.template(inst.template);
        // Must be a plain `$a = $b` move shape.
        let (a, b) = match t.sem.as_slice() {
            [marion_maril::expr::Stmt::Assign(
                marion_maril::expr::LValue::Operand(a),
                marion_maril::Expr::Operand(b),
            )] => (*a, *b),
            _ => return None,
        };
        let dst = inst.ops.get((a - 1) as usize)?;
        let src = inst.ops.get((b - 1) as usize)?;
        let (phys_op, this_v_source) = match (dst, src) {
            (Operand::Phys(p), Operand::Vreg(x) | Operand::VregHalf(x, _)) if *x == v => (*p, true),
            (Operand::Vreg(x) | Operand::VregHalf(x, _), Operand::Phys(p)) if *x == v => {
                (*p, false)
            }
            _ => return None,
        };
        if *v_source.get_or_insert(this_v_source) != this_v_source {
            return None;
        }
        phys_units.extend(machine.units_of(phys_op));
    }
    let v_source = v_source?;
    // The physical units must exactly compose one register of a class
    // that the spill load/store for `v` can address; search every
    // class for it.
    phys_units.sort_unstable();
    phys_units.dedup();
    let c = &machine.reg_classes()[class.0 as usize];
    for r in 0..c.count {
        let reg = PhysReg::new(class, r);
        let mut units: Vec<u32> = machine.units_of(reg).collect();
        units.sort_unstable();
        if units == phys_units {
            return Some((reg, v_source));
        }
    }
    None
}

/// Spills `v`: allocate a slot, load before each use, store after each
/// def, rewriting occurrences to fresh one-shot temporaries.
fn spill_vreg(machine: &Machine, func: &mut CodeFunc, v: Vreg) -> Result<(), CodegenError> {
    let class = func.vreg(v).class;
    let load_t = machine.spill_load(class).ok_or_else(|| {
        err(format!(
            "no spill load for class `{}`",
            machine.reg_class(class).name
        ))
    })?;
    let store_t = machine.spill_store(class).ok_or_else(|| {
        err(format!(
            "no spill store for class `{}`",
            machine.reg_class(class).name
        ))
    })?;
    let sp = machine
        .cwvm()
        .sp
        .ok_or_else(|| err("machine declares no stack pointer"))?;
    let slot = func.new_spill_slot() as i64;
    let kind = func.vreg(v).kind;
    let _ = kind;

    for bi in 0..func.blocks.len() {
        // Blocks that never mention `v` keep their instruction list
        // untouched — no clone, no rebuild. Spilled vregs are almost
        // always block-local, so this skips nearly the whole function.
        if !func.blocks[bi].insts.iter().any(|inst| {
            inst.ops
                .iter()
                .any(|op| matches!(op, Operand::Vreg(x) | Operand::VregHalf(x, _) if *x == v))
        }) {
            continue;
        }
        // The old list is consumed in place: untouched instructions
        // move (not clone) into the rebuilt list.
        let mut insts: Vec<Option<Inst>> = std::mem::take(&mut func.blocks[bi].insts)
            .into_iter()
            .map(Some)
            .collect();
        let mut new_insts: Vec<Inst> = Vec::with_capacity(insts.len());
        // Group maximal runs of consecutive instructions touching `v`
        // (a `*func` escape writes a pair register with two adjacent
        // half-moves; the pair must be reloaded/stored as one unit).
        let mut i = 0;
        while i < insts.len() {
            let touches = |inst: &Inst| {
                inst.ops
                    .iter()
                    .any(|op| matches!(op, Operand::Vreg(x) | Operand::VregHalf(x, _) if *x == v))
            };
            let touches_half = |inst: &Inst| {
                inst.ops
                    .iter()
                    .any(|op| matches!(op, Operand::VregHalf(x, _) if *x == v))
            };
            if !touches(insts[i].as_ref().expect("instruction already consumed")) {
                new_insts.push(insts[i].take().expect("instruction already consumed"));
                i += 1;
                continue;
            }
            // One instruction per run, except half-register (escape
            // pair) sequences, which must reload/store as one unit.
            // Merging arbitrary touching neighbours would keep the
            // temporary live through unrelated instructions and can
            // make tiny register files uncolourable.
            let mut j = i + 1;
            if touches_half(insts[i].as_ref().expect("instruction already consumed")) {
                while j < insts.len()
                    && touches_half(insts[j].as_ref().expect("instruction already consumed"))
                {
                    j += 1;
                }
            }
            let run: Vec<Inst> = insts[i..j]
                .iter_mut()
                .map(|s| s.take().expect("instruction already consumed"))
                .collect();
            // A run that merely copies between `v` and one physical
            // register (argument/result moves, including half-move
            // pairs from `*func` escapes) needs no temporary at all:
            // transfer directly between the spill slot and that
            // register. This is what keeps call boundaries colourable
            // on machines whose register pairs cover the whole file.
            if let Some((phys, v_is_source)) = pure_copy_run(machine, &run, v, class) {
                if v_is_source {
                    // phys := v  ==>  load phys from the slot.
                    new_insts.push(Inst::new(
                        load_t,
                        vec![
                            Operand::Phys(phys),
                            Operand::Phys(sp),
                            Operand::Imm(ImmVal::Const(slot)),
                        ],
                    ));
                } else {
                    // v := phys  ==>  store phys to the slot.
                    new_insts.push(Inst::new(
                        store_t,
                        vec![
                            Operand::Phys(phys),
                            Operand::Phys(sp),
                            Operand::Imm(ImmVal::Const(slot)),
                        ],
                    ));
                }
                i = j;
                continue;
            }
            let tmp = func.new_vreg(class, VregKind::Local);
            let mut run_uses = false;
            let mut run_defs = false;
            let mut rewritten: Vec<Inst> = Vec::with_capacity(run.len());
            for mut inst in run {
                let t = machine.template(inst.template);
                for k in &t.effects.uses {
                    if let Some(Operand::Vreg(x)) | Some(Operand::VregHalf(x, _)) =
                        inst.ops.get((*k - 1) as usize)
                    {
                        if *x == v {
                            run_uses = true;
                        }
                    }
                }
                for k in &t.effects.defs {
                    if let Some(Operand::Vreg(x)) | Some(Operand::VregHalf(x, _)) =
                        inst.ops.get((*k - 1) as usize)
                    {
                        if *x == v {
                            run_defs = true;
                        }
                    }
                }
                for op in &mut inst.ops {
                    match *op {
                        Operand::Vreg(x) if x == v => *op = Operand::Vreg(tmp),
                        Operand::VregHalf(x, h) if x == v => *op = Operand::VregHalf(tmp, h),
                        _ => {}
                    }
                }
                rewritten.push(inst);
            }
            // A run that writes only part of the register (one half)
            // must merge with the slot's existing contents.
            let partial_def = run_defs
                && rewritten.iter().any(|inst| {
                    inst.ops
                        .iter()
                        .any(|op| matches!(op, Operand::VregHalf(..)))
                });
            if run_uses || partial_def {
                new_insts.push(Inst::new(
                    load_t,
                    vec![
                        Operand::Vreg(tmp),
                        Operand::Phys(sp),
                        Operand::Imm(ImmVal::Const(slot)),
                    ],
                ));
            }
            new_insts.extend(rewritten);
            if run_defs {
                new_insts.push(Inst::new(
                    store_t,
                    vec![
                        Operand::Vreg(tmp),
                        Operand::Phys(sp),
                        Operand::Imm(ImmVal::Const(slot)),
                    ],
                ));
            }
            i = j;
        }
        func.blocks[bi].insts = new_insts;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::BlockId;
    use marion_maril::RegClassId;

    const TOY: &str = r#"
        declare {
            %reg r[0:7] (int);
            %resource IE;
            %def const16 [-32768:32767];
            %label rlab [-32768:32767] +relative;
            %memory m[0:2147483647];
        }
        cwvm {
            %general (int) r;
            %allocable r[1:5];
            %calleesave r[4:7];
            %sp r[7] +down; %fp r[6] +down; %retaddr r[1];
            %hard r[0] 0;
        }
        instr {
            %instr add r, r, r (int) {$1 = $2 + $3;} [IE;] (1,1,0)
            %instr ld r, r, #const16 (int) {$1 = m[$2+$3];} [IE;] (1,3,0)
            %instr st r, r, #const16 (int) {m[$2+$3] = $1;} [IE;] (1,1,0)
            %move add2 r, r, r[0] {$1 = $2;} [IE;] (1,1,0)
        }
    "#;

    fn toy() -> Machine {
        Machine::parse("toy", TOY).unwrap()
    }

    fn v(n: u32) -> Operand {
        Operand::Vreg(Vreg(n))
    }

    fn imm(c: i64) -> Operand {
        Operand::Imm(ImmVal::Const(c))
    }

    fn inst(m: &Machine, mnem: &str, ops: Vec<Operand>) -> Inst {
        Inst::new(m.template_by_mnemonic(mnem).unwrap(), ops)
    }

    fn phys_ops(f: &CodeFunc) -> Vec<Vec<Operand>> {
        f.blocks
            .iter()
            .flat_map(|b| b.insts.iter().map(|i| i.ops.clone()))
            .collect()
    }

    #[test]
    fn colors_simple_chain() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        for _ in 0..4 {
            f.new_vreg(r, VregKind::Local);
        }
        f.blocks.push(CodeBlock {
            insts: vec![
                inst(
                    &m,
                    "ld",
                    vec![v(0), Operand::Phys(PhysReg::new(r, 7)), imm(0)],
                ),
                inst(&m, "add", vec![v(1), v(0), v(0)]),
                inst(
                    &m,
                    "st",
                    vec![v(1), Operand::Phys(PhysReg::new(r, 7)), imm(4)],
                ),
            ],
            succs: vec![],
        });
        let res = allocate(&m, &mut f, &HashMap::new()).unwrap();
        assert_eq!(res.spills, 0);
        for ops in phys_ops(&f) {
            for op in ops {
                assert!(!matches!(op, Operand::Vreg(_)), "vreg survived: {op}");
            }
        }
    }

    #[test]
    fn interfering_values_get_distinct_registers() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        for _ in 0..3 {
            f.new_vreg(r, VregKind::Local);
        }
        let sp = Operand::Phys(PhysReg::new(r, 7));
        // v0 and v1 are simultaneously live.
        f.blocks.push(CodeBlock {
            insts: vec![
                inst(&m, "ld", vec![v(0), sp, imm(0)]),
                inst(&m, "ld", vec![v(1), sp, imm(4)]),
                inst(&m, "add", vec![v(2), v(0), v(1)]),
                inst(&m, "st", vec![v(2), sp, imm(8)]),
            ],
            succs: vec![],
        });
        allocate(&m, &mut f, &HashMap::new()).unwrap();
        let ops = phys_ops(&f);
        let (a, b) = (ops[0][0], ops[1][0]);
        assert_ne!(a, b, "interfering vregs colored alike");
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        // 8 simultaneously-live values, only 5 allocable registers.
        let n = 8;
        for _ in 0..=n {
            f.new_vreg(r, VregKind::Local);
        }
        let sp = Operand::Phys(PhysReg::new(r, 7));
        let mut insts: Vec<Inst> = (0..n)
            .map(|i| inst(&m, "ld", vec![v(i), sp, imm(4 * i as i64)]))
            .collect();
        // One instruction using all of them pairwise.
        let mut acc = 0u32;
        for i in 1..n {
            insts.push(inst(&m, "add", vec![v(acc), v(acc), v(i)]));
            acc = 0;
        }
        insts.push(inst(&m, "st", vec![v(0), sp, imm(64)]));
        f.blocks.push(CodeBlock {
            insts,
            succs: vec![],
        });
        let res = allocate(&m, &mut f, &HashMap::new()).unwrap();
        assert!(res.spills > 0, "must spill: {res:?}");
        assert!(f.spill_size > 0);
        // And the result must be fully physical.
        for ops in phys_ops(&f) {
            for op in ops {
                assert!(!matches!(op, Operand::Vreg(_)));
            }
        }
    }

    #[test]
    fn precolored_conflicts_respected() {
        let m = toy();
        let mut f = CodeFunc::new("t");
        let r = RegClassId(0);
        f.new_vreg(r, VregKind::Local);
        let sp = Operand::Phys(PhysReg::new(r, 7));
        let r2 = Operand::Phys(PhysReg::new(r, 2));
        // v0 live across a def of r2 — must not be colored r2.
        f.blocks.push(CodeBlock {
            insts: vec![
                inst(&m, "ld", vec![v(0), sp, imm(0)]),
                inst(&m, "ld", vec![r2, sp, imm(4)]),
                inst(&m, "add", vec![r2, r2, v(0)]),
                inst(&m, "st", vec![r2, sp, imm(8)]),
            ],
            succs: vec![],
        });
        allocate(&m, &mut f, &HashMap::new()).unwrap();
        let ops = phys_ops(&f);
        assert_ne!(ops[0][0], r2, "v0 colored into a conflicting phys reg");
    }

    #[test]
    fn loop_depth_heuristic() {
        let mut f = CodeFunc::new("t");
        f.blocks = vec![
            CodeBlock {
                insts: vec![],
                succs: vec![BlockId(1)],
            },
            CodeBlock {
                insts: vec![],
                succs: vec![BlockId(2), BlockId(3)],
            },
            CodeBlock {
                insts: vec![],
                succs: vec![BlockId(1)],
            }, // back edge
            CodeBlock {
                insts: vec![],
                succs: vec![],
            },
        ];
        let d = loop_depth(&f);
        assert_eq!(d, vec![0, 1, 1, 0]);
    }

    /// Hash-container reference model of the interference build, kept
    /// as the oracle for the dense CSR rewrite: identical edges,
    /// degrees, phys conflicts, costs and across-call marks on
    /// SplitMix64-random functions.
    mod reference {
        use super::*;
        use std::collections::{HashMap, HashSet};

        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        enum Key {
            V(Vreg),
            U(u32),
        }

        #[derive(Debug, Default)]
        pub struct RefGraph {
            pub adj: HashMap<Vreg, HashSet<Vreg>>,
            pub phys: HashMap<Vreg, HashSet<u32>>,
            pub cost: HashMap<Vreg, f64>,
            pub across_call: HashSet<Vreg>,
        }

        fn keys_of_operand(machine: &Machine, op: &Operand, out: &mut Vec<Key>) {
            match op {
                Operand::Vreg(v) | Operand::VregHalf(v, _) => out.push(Key::V(*v)),
                Operand::Phys(p) => out.extend(machine.units_of(*p).map(Key::U)),
                _ => {}
            }
        }

        fn inst_defs_uses(machine: &Machine, inst: &Inst) -> (Vec<Key>, Vec<Key>) {
            let mut defs = Vec::new();
            let mut uses = Vec::new();
            for op in inst.def_operands(machine) {
                keys_of_operand(machine, op, &mut defs);
                if let Operand::VregHalf(v, _) = op {
                    uses.push(Key::V(*v));
                }
            }
            for op in inst.use_operands(machine) {
                keys_of_operand(machine, op, &mut uses);
            }
            for p in &inst.extra_defs {
                defs.extend(machine.units_of(*p).map(Key::U));
            }
            for p in &inst.extra_uses {
                uses.extend(machine.units_of(*p).map(Key::U));
            }
            (defs, uses)
        }

        pub fn build(machine: &Machine, func: &CodeFunc) -> RefGraph {
            let nblocks = func.blocks.len();
            let mut live_in: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
            let mut live_out: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
            let mut gen: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
            let mut kill: Vec<HashSet<Key>> = vec![HashSet::new(); nblocks];
            for (bi, block) in func.blocks.iter().enumerate() {
                for inst in &block.insts {
                    let (defs, uses) = inst_defs_uses(machine, inst);
                    for u in uses {
                        if !kill[bi].contains(&u) {
                            gen[bi].insert(u);
                        }
                    }
                    for d in defs {
                        kill[bi].insert(d);
                    }
                }
            }
            let mut changed = true;
            while changed {
                changed = false;
                for bi in (0..nblocks).rev() {
                    let mut out: HashSet<Key> = HashSet::new();
                    for succ in &func.blocks[bi].succs {
                        out.extend(live_in[succ.0 as usize].iter().copied());
                    }
                    let mut inn: HashSet<Key> = gen[bi].clone();
                    for k in &out {
                        if !kill[bi].contains(k) {
                            inn.insert(*k);
                        }
                    }
                    if out != live_out[bi] || inn != live_in[bi] {
                        live_out[bi] = out;
                        live_in[bi] = inn;
                        changed = true;
                    }
                }
            }

            let depth = loop_depth(func);
            let mut graph = RefGraph::default();
            let add_conflict = |graph: &mut RefGraph, a: Key, b: Key| match (a, b) {
                (Key::V(x), Key::V(y)) if x != y => {
                    graph.adj.entry(x).or_default().insert(y);
                    graph.adj.entry(y).or_default().insert(x);
                }
                (Key::V(x), Key::U(u)) | (Key::U(u), Key::V(x)) => {
                    graph.phys.entry(x).or_default().insert(u);
                }
                _ => {}
            };
            for (bi, block) in func.blocks.iter().enumerate() {
                let weight = 10f64.powi(depth[bi].min(4) as i32);
                let mut live = live_out[bi].clone();
                for inst in block.insts.iter().rev() {
                    let (defs, uses) = inst_defs_uses(machine, inst);
                    let is_call = machine.template(inst.template).effects.is_call;
                    for d in &defs {
                        if let Key::V(v) = d {
                            *graph.cost.entry(*v).or_insert(0.0) += weight;
                        }
                        for l in &live {
                            if l != d {
                                add_conflict(&mut graph, *d, *l);
                            }
                        }
                    }
                    for (i, a) in defs.iter().enumerate() {
                        for b in &defs[i + 1..] {
                            add_conflict(&mut graph, *a, *b);
                        }
                    }
                    if is_call {
                        for l in &live {
                            if let Key::V(v) = l {
                                graph.across_call.insert(*v);
                            }
                        }
                    }
                    for d in &defs {
                        live.remove(d);
                    }
                    for u in uses {
                        if let Key::V(v) = u {
                            *graph.cost.entry(v).or_insert(0.0) += weight;
                        }
                        live.insert(u);
                    }
                }
            }
            graph
        }
    }

    /// Property test: the dense CSR interference graph equals the
    /// hash-container reference model (same edges, same degrees, same
    /// phys conflicts, same costs) on SplitMix64-random functions.
    #[test]
    fn dense_graph_matches_reference_model() {
        use crate::dense::splitmix64;
        let m = toy();
        let r = RegClassId(0);
        let mut rng = 0x5eed_0b0bu64;
        for _ in 0..40 {
            let nv = 2 + (splitmix64(&mut rng) % 12) as u32;
            let nblocks = 1 + (splitmix64(&mut rng) % 4) as usize;
            let mut f = CodeFunc::new("t");
            for _ in 0..nv {
                f.new_vreg(r, VregKind::Local);
            }
            let sp = Operand::Phys(PhysReg::new(r, 7));
            for bi in 0..nblocks {
                let ninsts = 3 + (splitmix64(&mut rng) % 20) as usize;
                let mut insts = Vec::new();
                for _ in 0..ninsts {
                    let a = (splitmix64(&mut rng) % nv as u64) as u32;
                    let b = (splitmix64(&mut rng) % nv as u64) as u32;
                    let c = (splitmix64(&mut rng) % nv as u64) as u32;
                    match splitmix64(&mut rng) % 4 {
                        0 => insts.push(inst(&m, "ld", vec![v(a), sp, imm(4)])),
                        1 => insts.push(inst(&m, "st", vec![v(a), sp, imm(8)])),
                        2 => insts.push(inst(&m, "add", vec![v(a), v(b), v(c)])),
                        _ => {
                            // Mix in a precolored operand for phys
                            // conflicts.
                            let p = Operand::Phys(PhysReg::new(r, 2));
                            insts.push(inst(&m, "add", vec![v(a), p, v(b)]));
                        }
                    }
                }
                // Random successors, including back edges.
                let mut succs = Vec::new();
                if nblocks > 1 && !splitmix64(&mut rng).is_multiple_of(3) {
                    succs.push(BlockId((splitmix64(&mut rng) % nblocks as u64) as u32));
                }
                if bi + 1 < nblocks {
                    succs.push(BlockId((bi + 1) as u32));
                }
                f.blocks.push(CodeBlock { insts, succs });
            }

            let dense = build_interference(&m, &f);
            let model = reference::build(&m, &f);
            for vi in 0..nv {
                let vr = Vreg(vi);
                let mut want: Vec<u32> = model
                    .adj
                    .get(&vr)
                    .map(|s| s.iter().map(|n| n.0).collect())
                    .unwrap_or_default();
                want.sort_unstable();
                assert_eq!(
                    dense.adj.neighbors(vi as usize),
                    want.as_slice(),
                    "adjacency of {vr} differs"
                );
                assert_eq!(
                    dense.adj.degree(vi as usize),
                    model.adj.get(&vr).map(|s| s.len()).unwrap_or(0),
                    "degree of {vr} differs"
                );
                let mut want_phys: Vec<usize> = model
                    .phys
                    .get(&vr)
                    .map(|s| s.iter().map(|u| *u as usize).collect())
                    .unwrap_or_default();
                want_phys.sort_unstable();
                assert_eq!(
                    dense.phys.row_iter(vi as usize).collect::<Vec<_>>(),
                    want_phys,
                    "phys conflicts of {vr} differ"
                );
                assert_eq!(
                    dense.cost[vi as usize],
                    model.cost.get(&vr).copied().unwrap_or(0.0),
                    "cost of {vr} differs"
                );
                assert_eq!(
                    dense.across_call.contains(vi as usize),
                    model.across_call.contains(&vr),
                    "across-call mark of {vr} differs"
                );
                let occurs_model = model.cost.contains_key(&vr) || model.adj.contains_key(&vr);
                assert_eq!(
                    dense.occurs.contains(vi as usize),
                    occurs_model,
                    "occurs mark of {vr} differs"
                );
            }
        }
    }
}
