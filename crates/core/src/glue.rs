//! Glue transformations: tree-to-tree rewrites applied to the IL
//! before code selection (paper §3.4).
//!
//! Condition rules rewrite branch comparisons — e.g. TOYP's
//! `($1 == $2) ==> (($1 :: $2) == 0)` turns a register-register
//! equality branch into a generic compare feeding a compare-to-zero
//! branch. Value rules rewrite value trees. Each rule carries the
//! operand class constraints from its `%glue` operand list, so integer
//! and floating comparisons can be routed to different instruction
//! sequences. The built-ins `high`, `low` and `eval` are constant-
//! folded during instantiation.

use crate::error::{CodegenError, Phase};
use marion_ir::{Function, Node, NodeId, NodeKind, Terminator};
use marion_maril::machine::{GlueKind, GlueRule};
use marion_maril::{BinOp, Builtin, Expr, Machine, RegClassId, Ty, UnOp};

/// Applies every applicable glue rule to `func`. Each branch condition
/// receives at most one condition rewrite; each value node at most one
/// value rewrite (this mirrors the paper's use of glue as a one-step
/// mapping aid and keeps rule sets like "compare becomes `::` + test"
/// from re-firing on their own output).
///
/// # Errors
///
/// Returns an error if a rule's replacement applies a built-in to a
/// non-constant expression.
pub fn apply_glue(machine: &Machine, func: &mut Function) -> Result<(), CodegenError> {
    apply_cond_rules(machine, func)?;
    apply_value_rules(machine, func)?;
    Ok(())
}

fn natural_class(machine: &Machine, ty: Ty) -> Option<RegClassId> {
    machine.cwvm().general_class(ty)
}

fn class_ok(machine: &Machine, rule: &GlueRule, k: usize, func: &Function, node: NodeId) -> bool {
    match rule.operand_classes.get(k).copied().flatten() {
        None => true,
        Some(want) => natural_class(machine, func.node(node).ty) == Some(want),
    }
}

fn apply_cond_rules(machine: &Machine, func: &mut Function) -> Result<(), CodegenError> {
    for bi in 0..func.blocks.len() {
        let Terminator::CondJump { rel, lhs, rhs, .. } = func.blocks[bi].term else {
            continue;
        };
        let mut chosen = None;
        for rule in machine.glue_rules() {
            let GlueKind::Cond {
                from_rel,
                to_rel,
                to_lhs,
                to_rhs,
            } = &rule.kind
            else {
                continue;
            };
            // Try the rule as written, then with the relation (and
            // operand bindings) swapped: `a > b` matches a `<` rule as
            // `b < a`.
            if *from_rel == rel
                && class_ok(machine, rule, 0, func, lhs)
                && class_ok(machine, rule, 1, func, rhs)
            {
                chosen = Some((*to_rel, to_lhs.clone(), to_rhs.clone(), lhs, rhs));
                break;
            }
            if from_rel.swapped() == rel
                && *from_rel != rel
                && class_ok(machine, rule, 0, func, rhs)
                && class_ok(machine, rule, 1, func, lhs)
            {
                chosen = Some((*to_rel, to_lhs.clone(), to_rhs.clone(), rhs, lhs));
                break;
            }
        }
        let Some((to_rel, to_lhs, to_rhs, b1, b2)) = chosen else {
            continue;
        };
        let new_lhs = instantiate(func, &to_lhs, &[b1, b2])?;
        let new_rhs = instantiate(func, &to_rhs, &[b1, b2])?;
        if let Terminator::CondJump { rel, lhs, rhs, .. } = &mut func.blocks[bi].term {
            *rel = to_rel;
            *lhs = new_lhs;
            *rhs = new_rhs;
        }
    }
    Ok(())
}

fn apply_value_rules(machine: &Machine, func: &mut Function) -> Result<(), CodegenError> {
    let value_rules: Vec<&GlueRule> = machine
        .glue_rules()
        .iter()
        .filter(|r| matches!(r.kind, GlueKind::Value { .. }))
        .collect();
    if value_rules.is_empty() {
        return Ok(());
    }
    // One pass, one rewrite per node; replacements are appended to the
    // arena so they are never themselves rewritten.
    let original_len = func.nodes.len();
    for id in 0..original_len {
        let id = NodeId(id as u32);
        for rule in &value_rules {
            let GlueKind::Value { from, to } = &rule.kind else {
                unreachable!()
            };
            let mut binds: Vec<Option<NodeId>> = vec![None; 8];
            if match_pattern(func, from, id, &mut binds)
                && binds
                    .iter()
                    .enumerate()
                    .all(|(k, b)| b.is_none_or(|n| class_ok(machine, rule, k, func, n)))
            {
                let bound: Vec<NodeId> = binds.iter().map(|b| b.unwrap_or(id)).collect();
                let replacement = instantiate(func, to, &bound)?;
                // Re-point the matched node at the replacement's kind.
                let new_kind = func.node(replacement).kind.clone();
                let ty = func.node(replacement).ty;
                func.nodes[id.0 as usize] = Node { kind: new_kind, ty };
                break;
            }
        }
    }
    Ok(())
}

/// Structural match of a glue pattern against an IR subtree. `$k`
/// wildcards bind whole subtrees.
fn match_pattern(
    func: &Function,
    pat: &Expr,
    node: NodeId,
    binds: &mut Vec<Option<NodeId>>,
) -> bool {
    match pat {
        Expr::Operand(k) => {
            let slot = (*k - 1) as usize;
            if slot >= binds.len() {
                return false;
            }
            match binds[slot] {
                None => {
                    binds[slot] = Some(node);
                    true
                }
                Some(prev) => prev == node,
            }
        }
        Expr::Int(c) => matches!(func.node(node).kind, NodeKind::ConstI(v) if v == *c),
        Expr::Bin(op, a, b) => match &func.node(node).kind {
            NodeKind::Bin(nop, x, y) if nop == op => {
                match_pattern(func, a, *x, binds) && match_pattern(func, b, *y, binds)
            }
            _ => false,
        },
        Expr::Un(op, a) => match &func.node(node).kind {
            NodeKind::Un(nop, x) if nop == op => match_pattern(func, a, *x, binds),
            _ => false,
        },
        Expr::Convert(ty, a) => match &func.node(node).kind {
            NodeKind::Cvt(x) if func.node(node).ty == *ty => match_pattern(func, a, *x, binds),
            _ => false,
        },
        Expr::Mem(_, a) => match &func.node(node).kind {
            NodeKind::Load(x) => match_pattern(func, a, *x, binds),
            _ => false,
        },
        // Temporal registers and built-ins never occur in glue *match*
        // patterns.
        Expr::Temporal(_) | Expr::Call(..) => false,
    }
}

/// Builds IR nodes for a replacement expression. `$k` refers to
/// `bound[k-1]`. Built-ins fold over constants.
fn instantiate(func: &mut Function, expr: &Expr, bound: &[NodeId]) -> Result<NodeId, CodegenError> {
    let push = |func: &mut Function, kind: NodeKind, ty: Ty| {
        func.nodes.push(Node { kind, ty });
        NodeId(func.nodes.len() as u32 - 1)
    };
    match expr {
        Expr::Operand(k) => bound
            .get((*k - 1) as usize)
            .copied()
            .ok_or_else(|| CodegenError::new(Phase::Glue, format!("glue references ${k}"))),
        Expr::Int(c) => Ok(push(func, NodeKind::ConstI(*c), Ty::Int)),
        Expr::Bin(op, a, b) => {
            let x = instantiate(func, a, bound)?;
            let y = instantiate(func, b, bound)?;
            // The generic compare `::` and relationals produce an int
            // condition value; other operators keep the operand type.
            let ty = if *op == BinOp::Cmp || op.is_relational() {
                Ty::Int
            } else {
                func.node(x).ty
            };
            Ok(push(func, NodeKind::Bin(*op, x, y), ty))
        }
        Expr::Un(op, a) => {
            let x = instantiate(func, a, bound)?;
            let ty = func.node(x).ty;
            Ok(push(func, NodeKind::Un(*op, x), ty))
        }
        Expr::Convert(ty, a) => {
            let x = instantiate(func, a, bound)?;
            Ok(push(func, NodeKind::Cvt(x), *ty))
        }
        Expr::Call(builtin, a) => {
            let x = instantiate(func, a, bound)?;
            let NodeKind::ConstI(c) = func.node(x).kind else {
                return Err(CodegenError::new(
                    Phase::Glue,
                    format!("built-in `{builtin}` applied to a non-constant"),
                ));
            };
            let v = match builtin {
                Builtin::High => ((c as u32) >> 16) as i64,
                Builtin::Low => (c as u32 & 0xffff) as i64,
                Builtin::Eval => c,
            };
            Ok(push(func, NodeKind::ConstI(v), Ty::Int))
        }
        Expr::Temporal(name) => Err(CodegenError::new(
            Phase::Glue,
            format!("temporal register `{name}` in glue replacement"),
        )),
        Expr::Mem(_, a) => {
            let x = instantiate(func, a, bound)?;
            Ok(push(func, NodeKind::Load(x), Ty::Int))
        }
    }
}

/// Folds `UnOp::Neg` over integer constants (helper shared with the
/// selector's immediate matching).
pub fn fold_const(func: &Function, id: NodeId) -> Option<i64> {
    match &func.node(id).kind {
        NodeKind::ConstI(v) => Some(*v),
        NodeKind::Un(UnOp::Neg, x) => fold_const(func, *x).map(|v| -v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::FuncBuilder;

    const TOY: &str = r#"
        declare {
            %reg r[0:7] (int);
            %reg d[0:3] (double);
            %resource IF;
            %def const16 [-32768:32767];
            %label rlab [-32768:32767] +relative;
            %memory m[0:2147483647];
        }
        cwvm { %general (int) r; %general (double) d; }
        instr {
            %instr cmp r, r, r (int) {$1 = $2 :: $3;} [IF;] (1,1,0)
            %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IF;] (1,2,1)
            %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
            %glue d, d {($1 < $2) ==> (($1 :: $2) < 0);}
        }
    "#;

    fn toy() -> Machine {
        Machine::parse("toy", TOY).unwrap()
    }

    #[test]
    fn cond_rule_rewrites_int_equality() {
        let machine = toy();
        let mut b = FuncBuilder::new("f", None);
        let p = b.param(Ty::Int);
        let q = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let y = b.read_vreg(q);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_jump(BinOp::Eq, x, y, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        apply_glue(&machine, &mut f).unwrap();
        let Terminator::CondJump { rel, lhs, rhs, .. } = &f.blocks[0].term else {
            panic!()
        };
        assert_eq!(*rel, BinOp::Eq);
        assert!(matches!(f.node(*lhs).kind, NodeKind::Bin(BinOp::Cmp, a, b)
            if a == x && b == y));
        assert!(matches!(f.node(*rhs).kind, NodeKind::ConstI(0)));
    }

    #[test]
    fn cond_rule_respects_class_constraint() {
        // The `==` rule is declared for (r, r); a double comparison
        // must not fire it.
        let machine = toy();
        let mut b = FuncBuilder::new("f", None);
        let p = b.param(Ty::Double);
        let x = b.read_vreg(p);
        let z = b.const_f(0.0, Ty::Double);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_jump(BinOp::Eq, x, z, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        apply_glue(&machine, &mut f).unwrap();
        let Terminator::CondJump { lhs, .. } = &f.blocks[0].term else {
            panic!()
        };
        assert!(
            matches!(f.node(*lhs).kind, NodeKind::ReadVreg(_)),
            "double == must be left alone by the int-only rule"
        );
    }

    #[test]
    fn swapped_relation_matches() {
        // `a > b` (doubles) should fire the `<` rule as `b < a`.
        let machine = toy();
        let mut b = FuncBuilder::new("f", None);
        let p = b.param(Ty::Double);
        let q = b.param(Ty::Double);
        let x = b.read_vreg(p);
        let y = b.read_vreg(q);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_jump(BinOp::Gt, x, y, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        apply_glue(&machine, &mut f).unwrap();
        let Terminator::CondJump { rel, lhs, .. } = &f.blocks[0].term else {
            panic!()
        };
        assert_eq!(*rel, BinOp::Lt);
        // (y :: x) — swapped binding order.
        assert!(matches!(f.node(*lhs).kind, NodeKind::Bin(BinOp::Cmp, a, c)
            if a == y && c == x));
    }

    #[test]
    fn builtins_fold_constants() {
        let machine = Machine::parse(
            "t",
            r#"
            declare { %reg r[0:7] (int); %resource IF; }
            cwvm { %general (int) r; }
            instr {
                %glue {(12345678 * $1) ==> ((high(12345678) + low(12345678)) * $1);}
            }
            "#,
        )
        .unwrap();
        let mut b = FuncBuilder::new("f", Some(Ty::Int));
        let big = b.const_i(12_345_678, Ty::Int);
        let p = b.param(Ty::Int);
        let x = b.read_vreg(p);
        let prod = b.bin(BinOp::Mul, big, x, Ty::Int);
        b.ret(Some(prod));
        let mut f = b.finish();
        apply_glue(&machine, &mut f).unwrap();
        let Terminator::Ret(Some(n)) = f.blocks[0].term else {
            panic!()
        };
        let NodeKind::Bin(BinOp::Mul, l, _) = f.node(n).kind else {
            panic!("mul survives")
        };
        let NodeKind::Bin(BinOp::Add, hi, lo) = f.node(l).kind else {
            panic!("lhs should be high + low")
        };
        assert!(matches!(f.node(hi).kind, NodeKind::ConstI(188)));
        assert!(matches!(f.node(lo).kind, NodeKind::ConstI(v) if v == (12_345_678 & 0xffff)));
    }

    #[test]
    fn fold_const_handles_negation() {
        let mut b = FuncBuilder::new("f", None);
        let c = b.const_i(7, Ty::Int);
        let n = b.un(UnOp::Neg, c, Ty::Int);
        b.ret(None);
        let f = b.finish();
        assert_eq!(fold_const(&f, c), Some(7));
        assert_eq!(fold_const(&f, n), Some(-7));
    }
}
