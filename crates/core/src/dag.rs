//! The code DAG (paper §4.1) and temporal-sequence protection (§4.6).
//!
//! Nodes are the instructions of one basic block; directed labelled
//! edges represent dependence. An edge `(x, y)` with label `l` means
//! `y` cannot be scheduled fewer than `l` cycles after `x`. Edge
//! types follow the paper:
//!
//! * **type 1** — true dependences; the label is the producer's
//!   latency, overridden by `%aux` directives for specific
//!   instruction pairs. True dependences through a *temporal
//!   register* are marked with their clock — they are the temporal
//!   edges that drive Rule 1 during scheduling;
//! * **type 2** — memory ordering;
//! * **type 3** — anti- and output-dependences on register names, so
//!   that separate uses of the same register do not overlap.
//!
//! The DAG is threaded by the *code thread* (original instruction
//! order). Before scheduling, temporal sequences are *protected*:
//! for every alternate entry into a sequence, ancestors of the entry
//! that affect the sequence's clock get an extra edge to the
//! sequence's head — exactly the dashed `(p, q)` edge of the paper's
//! Figure 6 — so a non-backtracking scheduler cannot deadlock.

use crate::code::{CodeBlock, CodeFunc, Inst, Operand, Vreg};
use marion_maril::machine::{ClockId, TemporalId};
use marion_maril::Machine;
use std::collections::HashMap;

/// Edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// True dependence through a register.
    True,
    /// True dependence through a temporal register based on a clock.
    TrueTemporal(ClockId),
    /// Anti-dependence (use before redefinition).
    Anti,
    /// Output dependence (two definitions of the same register).
    Output,
    /// Memory ordering.
    Mem,
    /// Pure ordering (control, protection edges).
    Order,
}

/// A labelled dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source instruction index in the block.
    pub from: usize,
    /// Destination instruction index.
    pub to: usize,
    /// Minimum cycle distance.
    pub latency: u32,
    /// Classification (schedulers do not distinguish types except for
    /// temporal edges, per the paper).
    pub kind: EdgeKind,
}

/// The code DAG of one basic block.
#[derive(Debug, Clone, Default)]
pub struct CodeDag {
    /// Number of instructions.
    pub n: usize,
    /// All edges.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    pub succs: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    pub preds: Vec<Vec<usize>>,
}

impl CodeDag {
    fn add_edge(&mut self, from: usize, to: usize, latency: u32, kind: EdgeKind) {
        if from == to {
            return;
        }
        // Keep the strongest label for duplicate (from, to) pairs;
        // temporal edges are never merged away.
        if !matches!(kind, EdgeKind::TrueTemporal(_)) {
            for &ei in &self.succs[from] {
                let e = &mut self.edges[ei];
                if e.to == to && !matches!(e.kind, EdgeKind::TrueTemporal(_)) {
                    e.latency = e.latency.max(latency);
                    return;
                }
            }
        }
        let idx = self.edges.len();
        self.edges.push(Edge {
            from,
            to,
            latency,
            kind,
        });
        self.succs[from].push(idx);
        self.preds[to].push(idx);
    }

    /// Maximum distance (sum of labels) from each node to any leaf —
    /// the classic list-scheduling priority (paper §4.2).
    pub fn critical_path(&self) -> Vec<u32> {
        let order = self.topo_order();
        let mut dist = vec![0u32; self.n];
        for &i in order.iter().rev() {
            for &ei in &self.succs[i] {
                let e = self.edges[ei];
                dist[i] = dist[i].max(e.latency + dist[e.to]);
            }
        }
        dist
    }

    /// Maximum distance (sum of labels) from any root to each node:
    /// the earliest cycle dependences alone would let the node issue.
    /// Together with [`CodeDag::critical_path`] this gives per-node
    /// slack: `max(est + cp) - (est[i] + cp[i])`.
    pub fn earliest_starts(&self) -> Vec<u32> {
        let order = self.topo_order();
        let mut est = vec![0u32; self.n];
        for &i in &order {
            for &ei in &self.succs[i] {
                let e = self.edges[ei];
                est[e.to] = est[e.to].max(est[i] + e.latency);
            }
        }
        est
    }

    /// A topological order of the nodes. Edges mostly point forward in
    /// the code thread, but protection and serialisation edges (§4.6)
    /// may point backward in index order, so a Kahn sweep is used; any
    /// residue from a (never-constructed) cycle is appended in index
    /// order so callers always receive a permutation.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indeg: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let mut order = Vec::with_capacity(self.n);
        // Smallest-index-first keeps the order deterministic and equal
        // to the code thread whenever the thread is already topological.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..self.n)
            .filter(|&i| indeg[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(i);
            for &ei in &self.succs[i] {
                let t = self.edges[ei].to;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    ready.push(std::cmp::Reverse(t));
                }
            }
        }
        if order.len() < self.n {
            let mut seen = vec![false; self.n];
            for &i in &order {
                seen[i] = true;
            }
            order.extend((0..self.n).filter(|&i| !seen[i]));
        }
        order
    }

    /// Whether `to` is reachable from `from`.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![from];
        while let Some(i) = stack.pop() {
            for &ei in &self.succs[i] {
                let t = self.edges[ei].to;
                if t == to {
                    return true;
                }
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        false
    }
}

/// Register-name atoms at dependence granularity: virtual register
/// halves and physical register units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Atom {
    VregHalf(Vreg, u8),
    Unit(u32),
    Temporal(TemporalId),
}

fn operand_atoms(machine: &Machine, op: &Operand, out: &mut Vec<Atom>) {
    match op {
        Operand::Vreg(v) => {
            out.push(Atom::VregHalf(*v, 0));
            out.push(Atom::VregHalf(*v, 1));
        }
        Operand::VregHalf(v, h) => out.push(Atom::VregHalf(*v, *h)),
        Operand::Phys(p) => {
            for u in machine.units_of(*p) {
                out.push(Atom::Unit(u));
            }
        }
        _ => {}
    }
}

/// Def and use atom sets of one instruction, written into reusable
/// caller buffers.
fn atoms_of(machine: &Machine, inst: &Inst, defs: &mut Vec<Atom>, uses: &mut Vec<Atom>) {
    defs.clear();
    uses.clear();
    let t = machine.template(inst.template);
    for k in &t.effects.defs {
        if let Some(op) = inst.ops.get((*k - 1) as usize) {
            operand_atoms(machine, op, defs);
            // A half-register def leaves the other half live: it also
            // counts as a use so the whole pair stays intact.
            if let Operand::VregHalf(v, h) = op {
                uses.push(Atom::VregHalf(*v, 1 - *h));
            }
        }
    }
    for k in &t.effects.uses {
        if let Some(op) = inst.ops.get((*k - 1) as usize) {
            operand_atoms(machine, op, uses);
        }
    }
    for p in &inst.extra_defs {
        for u in machine.units_of(*p) {
            defs.push(Atom::Unit(u));
        }
    }
    for p in &inst.extra_uses {
        for u in machine.units_of(*p) {
            uses.push(Atom::Unit(u));
        }
    }
    for t_id in &t.effects.temporal_defs {
        defs.push(Atom::Temporal(*t_id));
    }
    for t_id in &t.effects.temporal_uses {
        uses.push(Atom::Temporal(*t_id));
    }
}

/// Builds the code DAG for one block.
///
/// `include_anti` controls type 3 edges (anti/output on register
/// names): strategies that schedule before register allocation on
/// single-assignment temporaries may leave them out for
/// anti-dependences that cannot matter, but redefinitions of the same
/// name are always ordered.
pub fn build_dag(machine: &Machine, block: &CodeBlock, include_anti: bool) -> CodeDag {
    build_dag_with(machine, block, include_anti, false)
}

/// [`build_dag`] with explicit control over latch name-dependences.
///
/// With `latch_name_deps` set, anti- and output-dependence edges are
/// added on temporal latches like on any register name. On the real
/// machine this is wrong (it forgoes Rule 1's packing freedom and the
/// pipelines physically advance together), but under the simulator's
/// explicit-latch semantics it is a *correct* alternative discipline —
/// used as a deadlock-free fallback when Rule 1 scheduling cannot
/// complete a pathological block.
pub fn build_dag_with(
    machine: &Machine,
    block: &CodeBlock,
    include_anti: bool,
    latch_name_deps: bool,
) -> CodeDag {
    let n = block.insts.len();
    let mut dag = CodeDag {
        n,
        edges: Vec::new(),
        succs: vec![Vec::new(); n],
        preds: vec![Vec::new(); n],
    };
    // Dense atom ids: the block's atom universe is bounded by the vreg
    // ids it mentions (two halves each) plus the machine's register
    // units and temporal latches, so last-def/last-use tracking is
    // plain array indexing instead of hashing.
    let mut max_vreg: usize = 0;
    for inst in &block.insts {
        for op in &inst.ops {
            if let Operand::Vreg(v) | Operand::VregHalf(v, _) = op {
                max_vreg = max_vreg.max(v.0 as usize + 1);
            }
        }
    }
    let unit_base = 2 * max_vreg;
    let temporal_base = unit_base + machine.unit_count() as usize;
    let universe = temporal_base + machine.temporals().len();
    let atom_id = |a: Atom| -> usize {
        match a {
            Atom::VregHalf(v, h) => (v.0 as usize) * 2 + h as usize,
            Atom::Unit(u) => unit_base + u as usize,
            Atom::Temporal(t) => temporal_base + t.0 as usize,
        }
    };
    let mut last_def: Vec<usize> = vec![usize::MAX; universe];
    let mut last_uses: Vec<Vec<usize>> = vec![Vec::new(); universe];
    let mut defs: Vec<Atom> = Vec::new();
    let mut uses: Vec<Atom> = Vec::new();
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_store: Option<usize> = None;
    let mut last_control: Option<usize> = None;
    let mut last_call: Option<usize> = None;

    let ops_equal = |a: &Inst, b: &Inst, i: u8, j: u8| -> bool {
        match (a.ops.get((i - 1) as usize), b.ops.get((j - 1) as usize)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    };

    for (i, inst) in block.insts.iter().enumerate() {
        let t = machine.template(inst.template);
        atoms_of(machine, inst, &mut defs, &mut uses);
        let reads_mem = t.effects.reads_mem || t.effects.is_call;
        let writes_mem = t.effects.writes_mem || t.effects.is_call;

        for atom in &uses {
            let d = last_def[atom_id(*atom)];
            if d != usize::MAX {
                let producer = &block.insts[d];
                let lat = machine.edge_latency(producer.template, inst.template, &|a, b| {
                    ops_equal(producer, inst, a, b)
                });
                let kind = match atom {
                    Atom::Temporal(tid) => EdgeKind::TrueTemporal(machine.temporal(*tid).clock),
                    _ => EdgeKind::True,
                };
                dag.add_edge(d, i, lat, kind);
            }
            last_uses[atom_id(*atom)].push(i);
        }
        for atom in &defs {
            // Normally no anti/output edges on temporal latches: Rule
            // 1 and temporal groups govern their ordering (adding them
            // would serialise independent EAP sequences the paper
            // explicitly overlaps). The `latch_name_deps` fallback
            // mode adds them instead of relying on Rule 1.
            if matches!(atom, Atom::Temporal(_)) && !latch_name_deps {
                continue;
            }
            let aid = atom_id(*atom);
            if include_anti {
                for &u in &last_uses[aid] {
                    if u != i {
                        dag.add_edge(u, i, 0, EdgeKind::Anti);
                    }
                }
            }
            let d = last_def[aid];
            if d != usize::MAX {
                dag.add_edge(d, i, 1, EdgeKind::Output);
            }
        }
        for atom in &defs {
            let aid = atom_id(*atom);
            last_def[aid] = i;
            last_uses[aid].clear();
        }

        if reads_mem {
            if let Some(s) = last_store {
                let producer = &block.insts[s];
                let lat = machine.edge_latency(producer.template, inst.template, &|a, b| {
                    ops_equal(producer, inst, a, b)
                });
                dag.add_edge(s, i, lat.max(1), EdgeKind::Mem);
            }
            loads_since_store.push(i);
        }
        if writes_mem {
            for &l in &loads_since_store {
                dag.add_edge(l, i, 1, EdgeKind::Mem);
            }
            if let Some(s) = last_store {
                dag.add_edge(s, i, 1, EdgeKind::Mem);
            }
            loads_since_store.clear();
            last_store = Some(i);
        }

        // A call is a full barrier for everything threaded after it:
        // the callee clobbers caller-save registers, memory, and any
        // temporal pipeline state (its own chain sub-ops advance the
        // clocks and overwrite the latches), and — subtler — any
        // later instruction scheduled within `slots` cycles of the
        // call lands in its architectural delay-slot window and
        // executes *before* the transfer. Data edges only cover
        // instructions that touch the call's declared operands, so an
        // independent instruction (say, loading an address into a
        // caller-save register) could otherwise drift into the
        // window. The explicit edge keeps every successor out; the
        // stretch loop below widens it past the delay slots. (The
        // control edges added below keep *pre*-call instructions from
        // sinking past one.)
        if let Some(c) = last_call {
            dag.add_edge(c, i, 1, EdgeKind::Order);
        }
        if t.effects.is_call {
            last_call = Some(i);
        }

        if t.effects.is_control() {
            // Control transfers come after everything before them in
            // the thread; a second transfer (the fall-through goto)
            // stays behind the first by its delay-slot distance.
            for j in 0..i {
                dag.add_edge(j, i, 0, EdgeKind::Order);
            }
            if let Some(c) = last_control {
                let prev = machine.template(block.insts[c].template);
                dag.add_edge(c, i, 1 + prev.slots.unsigned_abs(), EdgeKind::Order);
            }
            last_control = Some(i);
        }
    }
    // Nothing ordered after a call may land in its delay slots: it
    // would execute before the callee runs (and could clobber the
    // just-written return address). Stretch every edge leaving a call
    // past the slots.
    for e in &mut dag.edges {
        let pt = machine.template(block.insts[e.from].template);
        if pt.effects.is_call {
            e.latency = e.latency.max(1 + pt.slots.unsigned_abs());
        }
    }
    protect_temporal_sequences(machine, block, &mut dag);
    dag
}

/// A temporal sequence: a maximal chain of nodes connected by
/// temporal edges on one clock.
#[derive(Debug, Clone)]
pub struct TemporalSequence {
    /// The clock the sequence is based on.
    pub clock: ClockId,
    /// Member instruction indices, in dependence order.
    pub members: Vec<usize>,
    /// The sequence head (first member).
    pub head: usize,
}

/// Finds the temporal sequences of a DAG.
pub fn temporal_sequences(dag: &CodeDag) -> Vec<TemporalSequence> {
    // Union nodes connected by temporal edges of the same clock.
    let mut seqs: Vec<TemporalSequence> = Vec::new();
    let mut member_of: HashMap<(usize, ClockId), usize> = HashMap::new();
    for e in &dag.edges {
        let EdgeKind::TrueTemporal(k) = e.kind else {
            continue;
        };
        let from_seq = member_of.get(&(e.from, k)).copied();
        let to_seq = member_of.get(&(e.to, k)).copied();
        match (from_seq, to_seq) {
            (None, None) => {
                let id = seqs.len();
                seqs.push(TemporalSequence {
                    clock: k,
                    members: vec![e.from, e.to],
                    head: e.from,
                });
                member_of.insert((e.from, k), id);
                member_of.insert((e.to, k), id);
            }
            (Some(s), None) => {
                seqs[s].members.push(e.to);
                member_of.insert((e.to, k), s);
            }
            (None, Some(s)) => {
                seqs[s].members.push(e.from);
                member_of.insert((e.from, k), s);
                if seqs[s].head == e.to {
                    seqs[s].head = e.from;
                }
            }
            (Some(a), Some(b)) if a != b => {
                // Merge b into a.
                let b_members = std::mem::take(&mut seqs[b].members);
                for m in &b_members {
                    member_of.insert((*m, k), a);
                }
                let b_head = seqs[b].head;
                seqs[a].members.extend(b_members);
                if b_head != e.to {
                    // Keep the earlier head.
                    let a_head = seqs[a].head;
                    if dag.reaches(b_head, a_head) {
                        seqs[a].head = b_head;
                    }
                }
            }
            _ => {}
        }
    }
    seqs.retain(|s| !s.members.is_empty());
    for s in &mut seqs {
        s.members.sort_unstable();
        // Head: the member with no incoming temporal edge on the clock
        // from another member.
        s.head = *s
            .members
            .iter()
            .find(|&&m| {
                !dag.preds[m].iter().any(|&ei| {
                    let e = dag.edges[ei];
                    matches!(e.kind, EdgeKind::TrueTemporal(k) if k == s.clock)
                        && s.members.contains(&e.from)
                })
            })
            .unwrap_or(&s.members[0]);
    }
    seqs
}

/// Adds protection edges for every alternate entry into a temporal
/// sequence (paper §4.6, Figure 6): if an ancestor of the entry
/// affects the sequence's clock, an edge is added from that ancestor
/// to the sequence head, forcing it to schedule first. Worst case
/// O(n·e), as in the paper.
fn protect_temporal_sequences(machine: &Machine, block: &CodeBlock, dag: &mut CodeDag) {
    let seqs = temporal_sequences(dag);
    if seqs.is_empty() {
        return;
    }
    let affects: Vec<Option<ClockId>> = block
        .insts
        .iter()
        .map(|inst| machine.template(inst.template).affects_clock)
        .collect();
    let mut new_edges: Vec<(usize, usize)> = Vec::new();
    // Scratch shared across sequences: membership and head-descendant
    // flags, the ancestor-walk visited set, and per-sequence entry
    // dedup. The DAG is not mutated until every protection edge is
    // collected, so the head's descendant set can be computed once per
    // sequence and the cycle check becomes a flag lookup instead of a
    // DFS per candidate. An entry's ancestor walk depends only on the
    // entry and the sequence (not on which member it enters through),
    // so each distinct entry is walked once — repeat walks only
    // re-pushed duplicate edges that `add_edge` merges away anyway.
    let mut member_set = vec![false; dag.n];
    let mut head_desc = vec![false; dag.n];
    let mut seen = vec![false; dag.n];
    let mut entry_done = vec![false; dag.n];
    let mut stack: Vec<usize> = Vec::new();
    for seq in &seqs {
        member_set.fill(false);
        for &m in &seq.members {
            member_set[m] = true;
        }
        head_desc.fill(false);
        head_desc[seq.head] = true;
        stack.push(seq.head);
        while let Some(i) = stack.pop() {
            for &ei in &dag.succs[i] {
                let t = dag.edges[ei].to;
                if !head_desc[t] {
                    head_desc[t] = true;
                    stack.push(t);
                }
            }
        }
        entry_done.fill(false);
        for &x in &seq.members {
            if x == seq.head {
                continue;
            }
            // Alternate entries: non-temporal predecessors from
            // outside the sequence.
            for &ei in &dag.preds[x] {
                let y = dag.edges[ei].from;
                if member_set[y] || entry_done[y] {
                    continue;
                }
                entry_done[y] = true;
                // Walk backward from the entry, collecting ancestors
                // (including the entry itself).
                seen.fill(false);
                seen[y] = true;
                stack.push(y);
                while let Some(a) = stack.pop() {
                    if affects[a] == Some(seq.clock) && !member_set[a] && !head_desc[a] {
                        // The dashed (p, q) edge of Figure 6 — unless
                        // it would create a cycle.
                        new_edges.push((a, seq.head));
                    }
                    for &ei in &dag.preds[a] {
                        let p = dag.edges[ei].from;
                        if !seen[p] {
                            seen[p] = true;
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    // Materialise the protection edges one at a time, dropping any
    // that would close a cycle. The `head_desc` guard above only
    // checked each edge against the *original* DAG; two overlapped
    // sequences on the same clock can each nominate the other's head
    // (13 → 19 and 19 → 13, say), and while neither edge alone cycles,
    // the pair does — and a cyclic DAG is unsatisfiable by any
    // schedule. The paper's "unless it would create a cycle" applies
    // to the DAG as the edges accumulate, so re-check reachability
    // against the growing graph, keeping whichever edge came first.
    for (from, to) in new_edges {
        if !dag.reaches(to, from) {
            dag.add_edge(from, to, 1, EdgeKind::Order);
        }
    }
}

/// Fallback for pathological interleavings: serialises temporal
/// sequences that share a clock (tail of the earlier sequence before
/// the head of the later one). The resulting schedule forgoes EAP
/// overlap for this block but can never deadlock on Rule 1. Edges
/// that would create a cycle are skipped.
pub fn serialize_same_clock_sequences(dag: &mut CodeDag) {
    let seqs = temporal_sequences(dag);
    let mut by_clock: HashMap<ClockId, Vec<&TemporalSequence>> = HashMap::new();
    for s in &seqs {
        by_clock.entry(s.clock).or_default().push(s);
    }
    // Iterate clocks in id order: HashMap order would make the edge
    // insertion order (hence edge indices and succ-list order) vary
    // run to run.
    let mut clocks: Vec<ClockId> = by_clock.keys().copied().collect();
    clocks.sort_by_key(|k| k.0);
    let mut new_edges: Vec<(usize, usize)> = Vec::new();
    for k in clocks {
        let list = by_clock.get_mut(&k).expect("clock key from by_clock");
        list.sort_by_key(|s| s.members.iter().min().copied().unwrap_or(0));
        for pair in list.windows(2) {
            let tail = *pair[0].members.iter().max().unwrap();
            let head = pair[1].head;
            if !dag.reaches(head, tail) {
                new_edges.push((tail, head));
            }
        }
    }
    for (from, to) in new_edges {
        dag.add_edge(from, to, 1, EdgeKind::Order);
    }
}

/// Stronger fallback: serialises *all* temporal sequences, across
/// clocks, in thread order (cycle-creating edges skipped). EAP
/// operations lose overlap with each other but every non-EAP
/// instruction still schedules freely around them.
pub fn serialize_all_sequences(dag: &mut CodeDag) {
    let mut seqs = temporal_sequences(dag);
    seqs.sort_by_key(|s| s.members.iter().min().copied().unwrap_or(0));
    let mut new_edges: Vec<(usize, usize)> = Vec::new();
    for pair in seqs.windows(2) {
        let tail = *pair[0].members.iter().max().unwrap();
        let head = pair[1].head;
        if !dag.reaches(head, tail) {
            new_edges.push((tail, head));
        }
    }
    for (from, to) in new_edges {
        dag.add_edge(from, to, 1, EdgeKind::Order);
    }
}

/// Groups instructions by (cycle-ordered) code thread for debugging.
pub fn dump_dag(func: &CodeFunc, machine: &Machine, dag: &CodeDag, block: &CodeBlock) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "dag for {} ({} nodes)", func.name, dag.n);
    for (i, inst) in block.insts.iter().enumerate() {
        let t = machine.template(inst.template);
        let _ = write!(out, "  [{i}] {}", t.mnemonic);
        for op in &inst.ops {
            let _ = write!(out, " {op}");
        }
        let _ = writeln!(out);
        for &ei in &dag.succs[i] {
            let e = dag.edges[ei];
            let _ = writeln!(out, "      -> [{}] lat {} {:?}", e.to, e.latency, e.kind);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{CodeFunc, ImmVal, VregKind};
    use marion_maril::{Machine, RegClassId};

    const TOY: &str = r#"
        declare {
            %reg r[0:7] (int);
            %resource IF; ID; IE; IA; IW;
            %def const16 [-32768:32767];
            %label rlab [-32768:32767] +relative;
            %memory m[0:2147483647];
        }
        cwvm { %general (int) r; %allocable r[1:5]; %sp r[7] +down; %fp r[6] +down; %retaddr r[1]; }
        instr {
            %instr add r, r, r (int) {$1 = $2 + $3;} [IF; ID; IE; IA; IW;] (1,1,0)
            %instr ld r, r, #const16 (int) {$1 = m[$2+$3];} [IF; ID; IE; IA; IW;] (1,3,0)
            %instr st r, r, #const16 (int) {m[$2+$3] = $1;} [IF; ID; IE; IA; IW;] (1,1,0)
            %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IF; ID; IE;] (1,2,1)
            %aux ld : st (1.$1 == 2.$1) (5)
        }
    "#;

    fn toy() -> Machine {
        Machine::parse("toy", TOY).unwrap()
    }

    fn inst(m: &Machine, mnem: &str, ops: Vec<Operand>) -> Inst {
        Inst::new(m.template_by_mnemonic(mnem).unwrap(), ops)
    }

    fn v(n: u32) -> Operand {
        Operand::Vreg(Vreg(n))
    }

    fn imm(c: i64) -> Operand {
        Operand::Imm(ImmVal::Const(c))
    }

    fn func_with(_m: &Machine, insts: Vec<Inst>) -> (CodeFunc, CodeBlock) {
        let mut f = CodeFunc::new("t");
        for _ in 0..10 {
            f.new_vreg(RegClassId(0), VregKind::Local);
        }
        let block = CodeBlock {
            insts,
            succs: vec![],
        };
        (f, block)
    }

    #[test]
    fn true_dependence_labelled_with_latency() {
        let m = toy();
        // t1 = ld t0, 0 ; t2 = add t1, t1
        let insts = vec![
            inst(&m, "ld", vec![v(1), v(0), imm(0)]),
            inst(&m, "add", vec![v(2), v(1), v(1)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        let e = dag
            .edges
            .iter()
            .find(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::True)
            .expect("true edge");
        assert_eq!(e.latency, 3, "load latency");
    }

    #[test]
    fn aux_override_applies_when_condition_holds() {
        let m = toy();
        // ld t1, [t0+0]; st t1, [t2+0] — operand 1 of ld == operand 1 of st.
        let insts = vec![
            inst(&m, "ld", vec![v(1), v(0), imm(0)]),
            inst(&m, "st", vec![v(1), v(2), imm(0)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        let e = dag
            .edges
            .iter()
            .find(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::True)
            .expect("true edge");
        assert_eq!(e.latency, 5, "aux latency override");
    }

    #[test]
    fn memory_edges_order_store_load() {
        let m = toy();
        let insts = vec![
            inst(&m, "st", vec![v(1), v(0), imm(0)]),
            inst(&m, "ld", vec![v(2), v(0), imm(4)]),
            inst(&m, "st", vec![v(3), v(0), imm(8)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::Mem));
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.kind == EdgeKind::Mem));
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 2 && e.kind == EdgeKind::Mem));
    }

    #[test]
    fn anti_and_output_edges_on_redefinition() {
        let m = toy();
        // t2 = add t0, t1 ; t0 = add t3, t4 (anti: 0->1), t0 = add t5, t6 (output: 1->2)
        let insts = vec![
            inst(&m, "add", vec![v(2), v(0), v(1)]),
            inst(&m, "add", vec![v(0), v(3), v(4)]),
            inst(&m, "add", vec![v(0), v(5), v(6)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::Anti));
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.kind == EdgeKind::Output));
    }

    #[test]
    fn branch_is_ordered_last() {
        let m = toy();
        let insts = vec![
            inst(&m, "add", vec![v(1), v(0), v(0)]),
            inst(&m, "add", vec![v(2), v(0), v(0)]),
            inst(
                &m,
                "beq0",
                vec![v(1), Operand::Block(marion_ir::BlockId(1))],
            ),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        assert!(dag.edges.iter().any(|e| e.from == 0 && e.to == 2));
        assert!(dag.edges.iter().any(|e| e.from == 1 && e.to == 2));
    }

    #[test]
    fn critical_path_accumulates_latencies() {
        let m = toy();
        // ld (lat 3) -> add (lat 1) -> add
        let insts = vec![
            inst(&m, "ld", vec![v(1), v(0), imm(0)]),
            inst(&m, "add", vec![v(2), v(1), v(1)]),
            inst(&m, "add", vec![v(3), v(2), v(2)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        let cp = dag.critical_path();
        assert_eq!(cp[0], 4);
        assert_eq!(cp[1], 1);
        assert_eq!(cp[2], 0);
    }

    const EAP: &str = r#"
        declare {
            %reg d[0:7] (double);
            %resource M1; M2; FWB; ALU;
            %clock clk_m;
            %reg m1 (double; clk_m) +temporal;
            %reg m2 (double; clk_m) +temporal;
        }
        cwvm { %general (double) d; }
        instr {
            %instr M1 d, d (double; clk_m) {m1 = $1 * $2;} [M1;] (1,1,0)
            %instr M2 (double; clk_m) {m2 = m1;} [M2;] (1,1,0)
            %instr FWB d (double; clk_m) {$1 = m2;} [FWB;] (1,1,0)
            %instr dadd d, d, d (double) {$1 = $2 + $3;} [ALU;] (1,1,0)
        }
    "#;

    fn eap_machine() -> Machine {
        Machine::parse("eap", EAP).unwrap()
    }

    #[test]
    fn temporal_edges_and_sequences() {
        let m = eap_machine();
        // M1 d0, d1 ; M2 ; FWB d2 — one sequence on clk_m.
        let insts = vec![
            inst(&m, "M1", vec![v(0), v(1)]),
            inst(&m, "M2", vec![]),
            inst(&m, "FWB", vec![v(2)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        let temporal: Vec<&Edge> = dag
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::TrueTemporal(_)))
            .collect();
        assert_eq!(temporal.len(), 2, "{temporal:?}");
        let seqs = temporal_sequences(&dag);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].head, 0);
        assert_eq!(seqs[0].members, vec![0, 1, 2]);
    }

    /// A machine with a *chained* sub-operation: `C` reads latch `t1`
    /// and a register, writing latch `t2` (like the i860 add pipe
    /// taking the multiplier output).
    const CHAIN: &str = r#"
        declare {
            %reg d[0:7] (double);
            %resource RL; RC; RW;
            %clock k;
            %reg t1 (double; k) +temporal;
            %reg t2 (double; k) +temporal;
        }
        cwvm { %general (double) d; }
        instr {
            %instr L d, d (double; k) {t1 = $1 * $2;} [RL;] (1,1,0)
            %instr C d (double; k) {t2 = t1 + $1;} [RC;] (1,1,0)
            %instr W d (double; k) {$1 = t2;} [RW;] (1,1,0)
        }
    "#;

    #[test]
    fn fig6_protection_edge_added() {
        // Figure 6's deadlock shape, realised with chaining:
        //   T: j0 = L v4,v5 ; j1 = C v6 ; j2 = W v2
        //   S: i0 = L v0,v1 ; i1 = C v2 ; i2 = W v3
        // i1 (a non-head member of S) truly depends on j2, which
        // affects clock k. Without the dashed protection edge
        // (j2 -> i0), scheduling i0 between j1 and j2 deadlocks:
        // j2 then may not be scheduled before i1 (Rule 1), but must
        // precede it. Protection adds an edge from j2 (an ancestor of
        // the alternate entry that affects k) to S's head i0.
        let m = Machine::parse("chain", CHAIN).unwrap();
        let insts = vec![
            inst(&m, "L", vec![v(4), v(5)]), // j0
            inst(&m, "C", vec![v(6)]),       // j1
            inst(&m, "W", vec![v(2)]),       // j2 — defines v2
            inst(&m, "L", vec![v(0), v(1)]), // i0, head of S
            inst(&m, "C", vec![v(2)]),       // i1 — alternate entry from j2
            inst(&m, "W", vec![v(3)]),       // i2
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        assert!(
            dag.edges
                .iter()
                .any(|e| e.from == 2 && e.to == 3 && e.latency >= 1),
            "protection edge (j2, i0) missing: {:?}",
            dag.edges
        );
    }

    #[test]
    fn chained_program_schedules_without_deadlock() {
        let m = Machine::parse("chain", CHAIN).unwrap();
        let insts = vec![
            inst(&m, "L", vec![v(4), v(5)]),
            inst(&m, "C", vec![v(6)]),
            inst(&m, "W", vec![v(2)]),
            inst(&m, "L", vec![v(0), v(1)]),
            inst(&m, "C", vec![v(2)]),
            inst(&m, "W", vec![v(3)]),
        ];
        let mut f = CodeFunc::new("t");
        let d = m.reg_class_by_name("d").unwrap();
        for _ in 0..10 {
            f.new_vreg(d, crate::code::VregKind::Local);
        }
        let block = CodeBlock {
            insts,
            succs: vec![],
        };
        let dag = build_dag(&m, &block, true);
        let s = crate::sched::schedule_block(
            &m,
            &f,
            &block,
            &dag,
            &crate::sched::SchedOptions::default(),
        )
        .unwrap();
        // Dependence order within each sequence holds.
        assert!(s.inst_cycle[0] < s.inst_cycle[1]);
        assert!(s.inst_cycle[1] < s.inst_cycle[2]);
        assert!(s.inst_cycle[3] < s.inst_cycle[4]);
        assert!(s.inst_cycle[4] < s.inst_cycle[5]);
        // The true dependence j2 -> i1 holds.
        assert!(s.inst_cycle[4] > s.inst_cycle[2]);
    }

    #[test]
    fn dedup_keeps_max_latency() {
        let m = toy();
        // Same operand used twice: one edge with max latency.
        let insts = vec![
            inst(&m, "ld", vec![v(1), v(0), imm(0)]),
            inst(&m, "add", vec![v(2), v(1), v(1)]),
        ];
        let (_f, block) = func_with(&m, insts);
        let dag = build_dag(&m, &block, true);
        let count = dag
            .edges
            .iter()
            .filter(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::True)
            .count();
        assert_eq!(count, 1);
    }
}
