//! Code generation strategies (paper §2): the strategy directs the
//! invocation of, and level of communication between, instruction
//! scheduling and global register allocation.
//!
//! * [`StrategyKind::Postpass`] — global register allocation followed
//!   by instruction scheduling (Gibbons & Muchnick);
//! * [`StrategyKind::Ips`] — Integrated Prepass Scheduling (Goodman &
//!   Hsu): schedule with a limit on local register use, allocate,
//!   then schedule again;
//! * [`StrategyKind::Rase`] — Register Allocation with Schedule
//!   Estimates (Bradlee, Eggers & Henry): invoke the scheduler to
//!   gather schedule cost estimates, allocate with those estimates
//!   biasing spill choices, then do final scheduling.

use crate::code::{CodeFunc, Operand, VregKind};
use crate::dag::build_dag;
use crate::error::CodegenError;
use crate::regalloc::{allocate_traced, AllocResult};
use crate::sched::{SchedOptions, Schedule};
use marion_maril::Machine;
use marion_trace::{Tracer, Value};
use std::collections::HashMap;

/// Which strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Allocate, then schedule.
    Postpass,
    /// Schedule (register-limited), allocate, schedule again.
    Ips,
    /// Estimate schedules, allocate with estimates, schedule.
    Rase,
    /// Ablation baseline: allocate, then keep code-thread order (no
    /// list scheduling at all — only latency/resource legality). Not
    /// part of [`StrategyKind::ALL`]; the paper's comparison point for
    /// "what does scheduling buy".
    NoSchedule,
}

impl StrategyKind {
    /// All strategies, for sweeps.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Postpass,
        StrategyKind::Ips,
        StrategyKind::Rase,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Postpass => "Postpass",
            StrategyKind::Ips => "IPS",
            StrategyKind::Rase => "RASE",
            StrategyKind::NoSchedule => "NoSched",
        }
    }

    /// Parses a [`StrategyKind::name`] (case-insensitive), as accepted
    /// by the `marion-serve` request protocol and CLI flags.
    pub fn parse(name: &str) -> Option<StrategyKind> {
        match name.to_ascii_lowercase().as_str() {
            "postpass" => Some(StrategyKind::Postpass),
            "ips" => Some(StrategyKind::Ips),
            "rase" => Some(StrategyKind::Rase),
            "nosched" | "noschedule" => Some(StrategyKind::NoSchedule),
            _ => None,
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistics from one strategy run over a function.
#[derive(Debug, Clone, Default)]
pub struct StrategyStats {
    /// Virtual registers spilled.
    pub spills: usize,
    /// Number of per-block scheduling passes performed.
    pub schedule_passes: usize,
    /// Sum of final block cycle estimates.
    pub estimated_cycles: u64,
}

/// A code generation strategy: consumes selected code, returns the
/// final per-block schedules (over the possibly spill-expanded
/// function).
pub trait Strategy {
    /// The strategy's display name.
    fn name(&self) -> &'static str;

    /// Runs allocation and scheduling over `func`. `tracer` collects
    /// spans and per-block scheduler metrics (pass a
    /// [`Tracer::off`] to collect nothing); `ctx` scopes the trace
    /// records, conventionally `machine/function`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and allocation failures.
    fn run(
        &self,
        machine: &Machine,
        func: &mut CodeFunc,
        tracer: &Tracer,
        ctx: &str,
    ) -> Result<(Vec<Schedule>, StrategyStats), CodegenError>;
}

/// Builds the strategy object for a kind.
pub fn strategy_for(kind: StrategyKind) -> Box<dyn Strategy + Send + Sync> {
    match kind {
        StrategyKind::Postpass => Box::new(Postpass),
        StrategyKind::Ips => Box::new(Ips),
        StrategyKind::Rase => Box::new(Rase),
        StrategyKind::NoSchedule => Box::new(NoSchedule),
    }
}

/// The ablation baseline: global register allocation followed by a
/// serial thread-order "schedule" (dependence- and resource-legal but
/// with no reordering). Comparing against [`Postpass`] isolates what
/// list scheduling itself buys.
pub struct NoSchedule;

impl Strategy for NoSchedule {
    fn name(&self) -> &'static str {
        "NoSched"
    }

    fn run(
        &self,
        machine: &Machine,
        func: &mut CodeFunc,
        tracer: &Tracer,
        ctx: &str,
    ) -> Result<(Vec<Schedule>, StrategyStats), CodegenError> {
        let alloc = run_allocate(machine, func, &HashMap::new(), tracer, ctx)?;
        let mut schedules = Vec::with_capacity(func.blocks.len());
        {
            let _span = tracer.span(ctx, "sched:serial");
            for block in &func.blocks {
                let dag = {
                    let _m = tracer.mspan("dag_build");
                    build_dag(machine, block, true)
                };
                schedules.push(crate::sched::serial_schedule(machine, block, &dag));
            }
        }
        {
            let _m = tracer.mspan("sched_metrics");
            record_sched_pass(machine, func, &schedules, tracer, ctx, "serial", true);
        }
        let stats = StrategyStats {
            spills: alloc.spills,
            schedule_passes: 0,
            estimated_cycles: sum_len(&schedules),
        };
        Ok((schedules, stats))
    }
}

/// Wraps [`allocate`] in a trace span and records its metrics:
/// interference-graph size, simplify/spill rounds, spill count and
/// the loop-weighted cost of what was spilled.
fn run_allocate(
    machine: &Machine,
    func: &mut CodeFunc,
    extra_cost: &HashMap<crate::code::Vreg, f64>,
    tracer: &Tracer,
    ctx: &str,
) -> Result<AllocResult, CodegenError> {
    let alloc = {
        let _span = tracer.span(ctx, "regalloc");
        allocate_traced(machine, func, extra_cost, tracer)?
    };
    tracer.add(ctx, "ra_graph_nodes", alloc.graph_nodes as i64);
    tracer.add(ctx, "ra_graph_edges", alloc.graph_edges as i64);
    tracer.add(ctx, "ra_rounds", alloc.rounds as i64);
    tracer.add(ctx, "spills", alloc.spills as i64);
    if alloc.spills > 0 {
        tracer.event(
            ctx,
            "regalloc_spills",
            &[
                ("spills", Value::from(alloc.spills)),
                ("spill_cost", Value::Float(alloc.spill_cost)),
                ("rounds", Value::from(alloc.rounds)),
            ],
        );
    }
    Ok(alloc)
}

/// Emits per-block scheduler metrics for a completed pass. Aggregate
/// counters (stalls, slot usage, temporal groups) are only added on
/// the `final_pass` so estimate passes do not double-count; the
/// per-block `sched_block` events carry the pass label either way.
fn record_sched_pass(
    machine: &Machine,
    func: &CodeFunc,
    schedules: &[Schedule],
    tracer: &Tracer,
    ctx: &str,
    pass: &'static str,
    final_pass: bool,
) {
    if !tracer.is_on() {
        return;
    }
    for (bi, (block, schedule)) in func.blocks.iter().zip(schedules).enumerate() {
        if block.insts.is_empty() {
            continue;
        }
        let m = &schedule.metrics;
        let ex = &schedule.explanation;
        let hist = ex.stall_histogram();
        let stall_of = |key: &str| hist.get(key).copied().unwrap_or(0) as i64;
        let critical_path_len = ex
            .critical_path
            .last()
            .and_then(|&i| schedule.inst_cycle.get(i))
            .map(|c| c + 1)
            .unwrap_or(0) as i64;
        let bctx = format!("{ctx}/b{bi}");
        tracer.event(
            &bctx,
            "sched_block",
            &[
                ("pass", Value::from(pass)),
                ("final", Value::Int(final_pass as i64)),
                ("insts", Value::from(block.insts.len())),
                ("length", Value::from(schedule.length as i64)),
                ("dag_nodes", Value::from(m.dag_nodes)),
                ("dag_edges", Value::from(m.dag_edges())),
                ("edges_true", Value::from(m.edges_true)),
                ("edges_temporal", Value::from(m.edges_temporal)),
                ("edges_anti", Value::from(m.edges_anti)),
                ("edges_output", Value::from(m.edges_output)),
                ("edges_mem", Value::from(m.edges_mem)),
                ("edges_order", Value::from(m.edges_order)),
                ("ready_high_water", Value::from(m.ready_high_water)),
                ("stall_cycles", Value::from(m.stall_cycles)),
                ("temporal_groups", Value::from(m.temporal_groups)),
                ("issue_slots_used", Value::from(m.issue_slots_used)),
                ("issue_cycles", Value::from(m.issue_cycles)),
                ("packed_words", Value::from(m.packed_words)),
                ("issue_utilization", Value::Float(m.issue_utilization())),
                (
                    "peak_local_pressure",
                    Value::from(schedule.peak_local_pressure),
                ),
                ("discipline", Value::from(ex.discipline)),
                ("critical_path_len", Value::Int(critical_path_len)),
                ("stall_total", Value::Int(ex.total_stall_cycles() as i64)),
                ("stall_dependence", Value::Int(stall_of("dependence"))),
                ("stall_resource", Value::Int(stall_of("resource"))),
                ("stall_class", Value::Int(stall_of("class"))),
                ("stall_temporal", Value::Int(stall_of("temporal"))),
                ("stall_pressure", Value::Int(stall_of("pressure"))),
                ("stall_order", Value::Int(stall_of("order"))),
            ],
        );
        if final_pass {
            // Per-block distributions at function scope: block stall
            // cycles and final schedule length as log2 histograms, so
            // reports can show the shape, not just the totals.
            tracer.observe(ctx, "block_stall_cycles", m.stall_cycles as u64);
            tracer.observe(ctx, "block_len_cycles", schedule.length as u64);
            tracer.add(ctx, "sched_stall_cycles", m.stall_cycles as i64);
            tracer.add(ctx, "sched_temporal_groups", m.temporal_groups as i64);
            tracer.add(ctx, "issue_slots_used", m.issue_slots_used as i64);
            tracer.add(ctx, "issue_cycles", m.issue_cycles as i64);
            tracer.add(ctx, "packed_words", m.packed_words as i64);
            for (key, cycles) in &hist {
                tracer.add(ctx, &format!("stall_{key}"), *cycles as i64);
            }
            if tracer.wants_explanations() {
                tracer.event(
                    &bctx,
                    "sched_explain",
                    &[
                        ("pass", Value::from(pass)),
                        (
                            "narrative",
                            Value::Str(crate::explain::explain_block_text(
                                machine, block, schedule,
                            )),
                        ),
                    ],
                );
            }
            if tracer.wants_reservation_tables() {
                let rows = crate::sched::reservation_rows(machine, block, schedule);
                tracer.event(
                    &bctx,
                    "reservation_table",
                    &[
                        ("pass", Value::from(pass)),
                        ("table", Value::Str(rows.join("\n"))),
                    ],
                );
            }
        }
    }
}

fn schedule_all(
    machine: &Machine,
    func: &CodeFunc,
    opts: &SchedOptions,
    tracer: &Tracer,
    ctx: &str,
    pass: &'static str,
    final_pass: bool,
) -> Result<Vec<Schedule>, CodegenError> {
    let mut out = Vec::with_capacity(func.blocks.len());
    {
        let _span = tracer.span(ctx, pass);
        // One scratch arena reused by every block this pass schedules.
        let mut scratch = crate::sched::Scratch::new();
        for (bi, block) in func.blocks.iter().enumerate() {
            let (schedule, discipline) = crate::sched::schedule_block_robust_scratch(
                machine,
                func,
                block,
                opts,
                tracer,
                &mut scratch,
            );
            if discipline != "rule1" {
                if std::env::var("MARION_SCHED_DEBUG").is_ok() {
                    eprintln!("fallback: {discipline} ({} insts)", block.insts.len());
                }
                // Temporal sequence protection failed to keep plain
                // Rule 1 scheduling live; record which fallback
                // discipline rescued the block.
                tracer.event(
                    &format!("{ctx}/b{bi}"),
                    "sched_fallback",
                    &[
                        ("pass", Value::from(pass)),
                        ("discipline", Value::from(discipline)),
                        ("insts", Value::from(block.insts.len())),
                    ],
                );
                tracer.add(ctx, "sched_fallbacks", 1);
            }
            out.push(schedule);
        }
    }
    {
        let _m = tracer.mspan("sched_metrics");
        record_sched_pass(machine, func, &out, tracer, ctx, pass, final_pass);
    }
    Ok(out)
}

/// Reorders each block's instructions into schedule order, so that the
/// register allocator sees the scheduled instruction order (the paper:
/// "the register allocator determines interference using the
/// instruction order presented to it").
///
/// Sub-operations packed into one cycle execute with read-old /
/// write-new latch semantics; when the cycle is flattened into a
/// sequence, an instruction *reading* a temporal latch must precede
/// the instruction *writing* it, or the rebuilt code DAG would pair
/// stages with the wrong pipeline occupancy.
fn reorder(machine: &Machine, func: &mut CodeFunc, schedules: &[Schedule], tracer: &Tracer) {
    let _m = tracer.mspan("reorder");
    for (block, schedule) in func.blocks.iter_mut().zip(schedules) {
        let mut order: Vec<usize> = Vec::with_capacity(block.insts.len());
        for cycle in &schedule.cycles {
            let mut members = cycle.clone();
            // Topological micro-order: readers of a latch before its
            // writer. Cycles are tiny; simple repeated selection.
            let mut placed: Vec<usize> = Vec::with_capacity(members.len());
            while !members.is_empty() {
                let pick = members
                    .iter()
                    .position(|&m| {
                        // m may go next if no other member READS a
                        // latch that m WRITES.
                        let m_t = machine.template(block.insts[m].template);
                        members.iter().all(|&o| {
                            if o == m {
                                return true;
                            }
                            let o_t = machine.template(block.insts[o].template);
                            !o_t.effects
                                .temporal_uses
                                .iter()
                                .any(|u| m_t.effects.temporal_defs.contains(u))
                        })
                    })
                    .unwrap_or(0);
                placed.push(members.remove(pick));
            }
            order.extend(placed);
        }
        debug_assert_eq!(order.len(), block.insts.len());
        let old = std::mem::take(&mut block.insts);
        let mut new_insts = Vec::with_capacity(old.len());
        let mut taken: Vec<Option<crate::code::Inst>> = old.into_iter().map(Some).collect();
        for i in order {
            new_insts.push(taken[i].take().expect("schedule permutes instructions"));
        }
        block.insts = new_insts;
    }
}

fn sum_len(schedules: &[Schedule]) -> u64 {
    schedules.iter().map(|s| s.length as u64).sum()
}

/// The IPS local-register limit: the smallest general-purpose
/// allocable class, minus headroom for globals.
fn ips_limit(machine: &Machine) -> usize {
    let mut k = usize::MAX;
    for (_, class) in &machine.cwvm().general {
        let n = machine.allocable_of_class(*class).len();
        if n > 0 {
            k = k.min(n);
        }
    }
    if k == usize::MAX {
        8
    } else {
        (k.saturating_sub(2)).max(2)
    }
}

/// Postpass: allocation first, scheduling after (on physical
/// registers, with full anti-dependences).
pub struct Postpass;

impl Strategy for Postpass {
    fn name(&self) -> &'static str {
        "Postpass"
    }

    fn run(
        &self,
        machine: &Machine,
        func: &mut CodeFunc,
        tracer: &Tracer,
        ctx: &str,
    ) -> Result<(Vec<Schedule>, StrategyStats), CodegenError> {
        let alloc = run_allocate(machine, func, &HashMap::new(), tracer, ctx)?;
        let schedules = schedule_all(
            machine,
            func,
            &SchedOptions::default(),
            tracer,
            ctx,
            "sched:postpass",
            true,
        )?;
        let stats = StrategyStats {
            spills: alloc.spills,
            schedule_passes: 1,
            estimated_cycles: sum_len(&schedules),
        };
        Ok((schedules, stats))
    }
}

/// Integrated Prepass Scheduling: schedule each block with a limit on
/// local register use, allocate, then schedule again.
pub struct Ips;

impl Strategy for Ips {
    fn name(&self) -> &'static str {
        "IPS"
    }

    fn run(
        &self,
        machine: &Machine,
        func: &mut CodeFunc,
        tracer: &Tracer,
        ctx: &str,
    ) -> Result<(Vec<Schedule>, StrategyStats), CodegenError> {
        let prepass = schedule_all(
            machine,
            func,
            &SchedOptions {
                local_reg_limit: Some(ips_limit(machine)),
                ..SchedOptions::default()
            },
            tracer,
            ctx,
            "sched:ips-prepass",
            false,
        )?;
        let before = func.clone();
        reorder(machine, func, &prepass, tracer);
        let alloc = match run_allocate(machine, func, &HashMap::new(), tracer, ctx) {
            Ok(a) => a,
            Err(_) => {
                // On register-starved machines the reordered code can
                // be structurally uncolorable; fall back to the code
                // thread order (degrading IPS towards Postpass for
                // this function rather than failing).
                *func = before;
                tracer.event(ctx, "ips_reorder_abandoned", &[]);
                run_allocate(machine, func, &HashMap::new(), tracer, ctx)?
            }
        };
        let schedules = schedule_all(
            machine,
            func,
            &SchedOptions::default(),
            tracer,
            ctx,
            "sched:ips-final",
            true,
        )?;
        let stats = StrategyStats {
            spills: alloc.spills,
            schedule_passes: 2,
            estimated_cycles: sum_len(&schedules),
        };
        Ok((schedules, stats))
    }
}

/// Register Allocation with Schedule Estimates: prepass schedules with
/// and without a register limit give per-block sensitivity; globals
/// crossing schedule-sensitive blocks have their spill costs reduced
/// by the estimated schedule benefit of freeing a register there, the
/// allocator runs with those biases, and a final pass schedules the
/// allocated code.
pub struct Rase;

impl Strategy for Rase {
    fn name(&self) -> &'static str {
        "RASE"
    }

    fn run(
        &self,
        machine: &Machine,
        func: &mut CodeFunc,
        tracer: &Tracer,
        ctx: &str,
    ) -> Result<(Vec<Schedule>, StrategyStats), CodegenError> {
        // Two estimate passes per block: unconstrained and tight.
        let unlimited = schedule_all(
            machine,
            func,
            &SchedOptions::default(),
            tracer,
            ctx,
            "sched:rase-estimate",
            false,
        )?;
        let tight_limit = (ips_limit(machine) / 2).max(2);
        let tight = schedule_all(
            machine,
            func,
            &SchedOptions {
                local_reg_limit: Some(tight_limit),
                ..SchedOptions::default()
            },
            tracer,
            ctx,
            "sched:rase-tight",
            false,
        )?;
        // Sensitivity of each block's schedule to register pressure.
        let mut extra_cost: HashMap<crate::code::Vreg, f64> = HashMap::new();
        for (bi, block) in func.blocks.iter().enumerate() {
            let sensitivity = tight[bi].length.saturating_sub(unlimited[bi].length) as f64;
            if sensitivity == 0.0 {
                continue;
            }
            // Global vregs occurring in a pressure-sensitive block are
            // cheaper to spill: evicting them frees registers exactly
            // where the schedule needs them.
            for inst in &block.insts {
                for op in &inst.ops {
                    if let Operand::Vreg(v) | Operand::VregHalf(v, _) = op {
                        if func.vreg(*v).kind == VregKind::Global {
                            *extra_cost.entry(*v).or_insert(0.0) -= sensitivity;
                        }
                    }
                }
            }
        }
        let before = func.clone();
        reorder(machine, func, &unlimited, tracer);
        let alloc = match run_allocate(machine, func, &extra_cost, tracer, ctx) {
            Ok(a) => a,
            Err(_) => {
                *func = before;
                tracer.event(ctx, "rase_reorder_abandoned", &[]);
                run_allocate(machine, func, &extra_cost, tracer, ctx)?
            }
        };
        let schedules = schedule_all(
            machine,
            func,
            &SchedOptions::default(),
            tracer,
            ctx,
            "sched:rase-final",
            true,
        )?;
        let stats = StrategyStats {
            spills: alloc.spills,
            schedule_passes: 3,
            estimated_cycles: sum_len(&schedules),
        };
        Ok((schedules, stats))
    }
}
