//! The selected-code representation: machine instructions over virtual
//! registers, organised into basic blocks.
//!
//! This is what the code generation strategy manipulates: the selector
//! produces it, the scheduler reorders it, the register allocator maps
//! its virtual registers onto physical ones and inserts spill code.

use marion_ir::{BlockId, SymbolId};
use marion_maril::{Machine, PhysReg, RegClassId, TemplateId};
use std::fmt;

/// A virtual register created during code selection.
///
/// *Local* virtual registers (expression temporaries) are live within
/// a single basic block; *global* ones (user variables, cross-block
/// values) may be live anywhere — the distinction matters to the IPS
/// and RASE strategies, which treat local register demand per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vreg(pub u32);

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Liveness classification of a virtual register (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VregKind {
    /// Live in only one basic block.
    Local,
    /// Live in more than one block.
    Global,
}

/// Metadata for one virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VregInfo {
    /// Register class the value must live in.
    pub class: RegClassId,
    /// Local or global.
    pub kind: VregKind,
}

/// An immediate-like value: a plain constant or a (possibly split)
/// symbol address resolved by the loader/simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmVal {
    /// A constant.
    Const(i64),
    /// `symbol + addend` — a full address.
    Sym(SymbolId, i64),
    /// Upper 16 bits of `symbol + addend` (for `lui`-style escapes).
    SymHigh(SymbolId, i64),
    /// Lower 16 bits of `symbol + addend`.
    SymLow(SymbolId, i64),
}

impl fmt::Display for ImmVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImmVal::Const(v) => write!(f, "{v}"),
            ImmVal::Sym(s, 0) => write!(f, "{s}"),
            ImmVal::Sym(s, a) => write!(f, "{s}+{a}"),
            ImmVal::SymHigh(s, a) => write!(f, "%hi({s}+{a})"),
            ImmVal::SymLow(s, a) => write!(f, "%lo({s}+{a})"),
        }
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register (pre-allocation).
    Vreg(Vreg),
    /// Half `i` (0 or 1) of a wide virtual register — used by `*func`
    /// escapes that manipulate register halves (paper §3.4).
    VregHalf(Vreg, u8),
    /// A physical register (precoloured, or post-allocation).
    Phys(PhysReg),
    /// An immediate.
    Imm(ImmVal),
    /// A branch target within the function.
    Block(BlockId),
    /// A call target.
    Func(SymbolId),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Vreg(v) => write!(f, "{v}"),
            Operand::VregHalf(v, h) => write!(f, "{v}.h{h}"),
            Operand::Phys(p) => write!(f, "p{}[{}]", p.class.0, p.index),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Block(b) => write!(f, "{b}"),
            Operand::Func(s) => write!(f, "{s}"),
        }
    }
}

/// One selected machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The instruction template.
    pub template: TemplateId,
    /// Operands, `$k` = `ops[k-1]`.
    pub ops: Vec<Operand>,
    /// Extra physical registers read (beyond the template's operands);
    /// used for calls (argument registers) and returns (result
    /// register).
    pub extra_uses: Vec<PhysReg>,
    /// Extra physical registers written: call-clobbered registers and
    /// the return-address register on calls.
    pub extra_defs: Vec<PhysReg>,
}

impl Inst {
    /// Creates an instruction with no extra defs/uses.
    pub fn new(template: TemplateId, ops: Vec<Operand>) -> Inst {
        Inst {
            template,
            ops,
            extra_uses: Vec::new(),
            extra_defs: Vec::new(),
        }
    }

    /// Register operands written by this instruction, per the
    /// template's derived effects (excluding `extra_defs`).
    pub fn def_operands<'a>(&'a self, machine: &'a Machine) -> impl Iterator<Item = &'a Operand> {
        machine
            .template(self.template)
            .effects
            .defs
            .iter()
            .filter_map(move |k| self.ops.get((*k - 1) as usize))
    }

    /// Register operands read by this instruction (excluding
    /// `extra_uses`).
    pub fn use_operands<'a>(&'a self, machine: &'a Machine) -> impl Iterator<Item = &'a Operand> {
        machine
            .template(self.template)
            .effects
            .uses
            .iter()
            .filter_map(move |k| self.ops.get((*k - 1) as usize))
    }

    /// Whether this instruction ends a block (any control transfer).
    pub fn is_control(&self, machine: &Machine) -> bool {
        machine.template(self.template).effects.is_control()
    }
}

/// A basic block of selected code.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodeBlock {
    /// Instructions in code-thread order. Control transfers, if any,
    /// are last.
    pub insts: Vec<Inst>,
    /// Successor blocks (for liveness); the fall-through successor, if
    /// any, is last.
    pub succs: Vec<BlockId>,
}

/// A function of selected code.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeFunc {
    /// Function name.
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`]; block 0 is the entry and
    /// the last block is the epilogue/exit.
    pub blocks: Vec<CodeBlock>,
    /// Virtual register table.
    pub vregs: Vec<VregInfo>,
    /// Bytes of frame space used by IR locals (spill slots are
    /// appended above this by the register allocator).
    pub local_frame_size: u32,
    /// Bytes of spill slots allocated so far.
    pub spill_size: u32,
    /// Whether the function contains calls (needs the return address
    /// saved).
    pub has_calls: bool,
}

impl CodeFunc {
    /// Creates an empty function.
    pub fn new(name: &str) -> CodeFunc {
        CodeFunc {
            name: name.to_owned(),
            blocks: Vec::new(),
            vregs: Vec::new(),
            local_frame_size: 0,
            spill_size: 0,
            has_calls: false,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self, class: RegClassId, kind: VregKind) -> Vreg {
        self.vregs.push(VregInfo { class, kind });
        Vreg(self.vregs.len() as u32 - 1)
    }

    /// Info for one virtual register.
    pub fn vreg(&self, v: Vreg) -> VregInfo {
        self.vregs[v.0 as usize]
    }

    /// Allocates an 8-byte spill slot; returns its sp-relative offset.
    pub fn new_spill_slot(&mut self) -> u32 {
        let off = self.local_frame_size + self.spill_size;
        self.spill_size += 8;
        off
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_allocation_and_spill_slots() {
        let mut f = CodeFunc::new("f");
        f.local_frame_size = 16;
        let a = f.new_vreg(RegClassId(0), VregKind::Local);
        let b = f.new_vreg(RegClassId(1), VregKind::Global);
        assert_eq!(a, Vreg(0));
        assert_eq!(b, Vreg(1));
        assert_eq!(f.vreg(b).kind, VregKind::Global);
        assert_eq!(f.new_spill_slot(), 16);
        assert_eq!(f.new_spill_slot(), 24);
        assert_eq!(f.spill_size, 16);
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Vreg(Vreg(3)).to_string(), "t3");
        assert_eq!(Operand::Imm(ImmVal::Const(-5)).to_string(), "-5");
        assert_eq!(
            Operand::Imm(ImmVal::SymHigh(SymbolId(1), 8)).to_string(),
            "%hi(sym1+8)"
        );
    }
}
