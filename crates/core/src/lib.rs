//! # marion-core — the retargetable back end
//!
//! The target- and strategy-independent portion of Marion (the
//! paper's "TSI"): glue transformation, instruction selection, code
//! DAG construction, list scheduling with temporal scheduling, graph
//! coloring register allocation, the three code generation strategies
//! (Postpass, IPS, RASE), and assembly emission.
//!
//! The entry point is [`driver::Compiler`], which binds a compiled
//! Maril [`marion_maril::Machine`], an [`select::EscapeRegistry`] of
//! `*func` escapes, and a [`strategy::Strategy`].

pub mod code;
pub mod dag;
pub mod dense;
pub mod driver;
pub mod emit;
pub mod error;
pub mod explain;
pub mod fcache;
pub mod glue;
pub mod quality;
pub mod regalloc;
pub mod sched;
pub mod select;
pub mod stablehash;
pub mod strategy;

pub use code::{CodeBlock, CodeFunc, ImmVal, Inst, Operand, Vreg, VregInfo, VregKind};
pub use driver::{CompileOptions, CompileStats, CompiledProgram, Compiler, FuncStats};
pub use emit::{AsmBlock, AsmFunc, AsmInst, AsmProgram, Word};
pub use error::{CodegenError, Phase};
pub use explain::{
    audit_schedule, AuditError, PlacementRecord, ScheduleExplanation, Stall, StallReason,
};
pub use fcache::{CacheLoad, CacheSummary, CachedFunc, FuncCache};
pub use quality::{BlockQuality, ProgramQuality, QualityRecord, StallBreakdown};
pub use select::{
    select_func, select_func_opts, select_func_traced, select_func_with, EscapeCtx, EscapeFn,
    EscapeRegistry,
};
pub use strategy::{Strategy, StrategyKind};
