//! Instruction selection: a recursive-descent brute-force tree
//! pattern matcher (paper §2.1).
//!
//! Patterns are the semantic expressions of the machine description's
//! `%instr` directives, tried **in description order**; the first
//! matching pattern wins and its subtrees are selected recursively.
//! Local common subexpressions (IR nodes with more than one parent)
//! are forced into registers, unless they are constants that can be
//! subsumed by an addressing mode or an immediate operand.
//!
//! Two special mechanisms complete the IL-to-target mapping:
//!
//! * **`*func` escapes** — user-supplied functions (Rust closures
//!   registered in an [`EscapeRegistry`]) that expand one matched
//!   pattern into a sequence of individually schedulable
//!   instructions, with access to register halves (paper §3.4);
//! * **temporal chains** — when a pattern's expression mentions a
//!   temporal register (an EAP latch like the i860's `m3`), the
//!   matcher resolves it by matching the templates that *define* that
//!   latch, recursively; selecting `d6 = d4 * d5` against `FWB d
//!   {$1 = m3}` therefore emits the whole `M1; M2; M3; FWB` pipeline
//!   sequence, and chaining between pipelines (an add-pipe launch
//!   reading `m3`) falls out of the same rule (paper §4.5).

use crate::code::*;
use crate::error::{CodegenError, Phase};
use crate::glue::fold_const;
use marion_ir as ir;
use marion_ir::{NodeId, NodeKind};
use marion_maril::expr::{LValue, Stmt};
use marion_maril::{
    BinOp, Expr, Machine, OperandSpec, PhysReg, RegClassId, RootShape, TemplateId, Ty,
};
use std::collections::HashMap;

/// A user-supplied escape function: receives the resolved operands of
/// the matched directive (operand 1 first) and emits replacement
/// instructions through the [`EscapeCtx`].
pub type EscapeFn = fn(&mut EscapeCtx<'_, '_>, &[Operand]) -> Result<(), CodegenError>;

/// Registry of `*func` escapes for one machine.
#[derive(Default, Clone)]
pub struct EscapeRegistry {
    map: HashMap<String, EscapeFn>,
}

impl std::fmt::Debug for EscapeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.map.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("EscapeRegistry")
            .field("escapes", &names)
            .finish()
    }
}

impl EscapeRegistry {
    /// Creates an empty registry.
    pub fn new() -> EscapeRegistry {
        EscapeRegistry::default()
    }

    /// Registers the function implementing escape `name` (the
    /// directive's mnemonic, e.g. `movd` for `*movd`).
    pub fn register(&mut self, name: &str, f: EscapeFn) {
        self.map.insert(name.to_owned(), f);
    }

    /// Looks up an escape.
    pub fn get(&self, name: &str) -> Option<EscapeFn> {
        self.map.get(name).copied()
    }
}

/// Selects code for one IR function.
///
/// # Errors
///
/// Fails when no pattern (after glue) covers a node — typically a
/// missing directive in the machine description — or when an escape
/// is referenced but not registered.
pub fn select_func(
    machine: &Machine,
    escapes: &EscapeRegistry,
    module: &ir::Module,
    func: &ir::Function,
) -> Result<CodeFunc, CodegenError> {
    select_func_with(machine, escapes, module, func, true)
}

/// [`select_func`] with explicit matcher choice: `use_index` selects
/// via the machine's precomputed [`marion_maril::SelectionIndex`]
/// dispatch table; `false` falls back to the brute-force scan over
/// every template. Both must pick identical templates (the index is a
/// pruning, not a reordering) — the cross-check harness asserts this
/// on every bundled machine × workload.
///
/// # Errors
///
/// Same failure modes as [`select_func`].
pub fn select_func_with(
    machine: &Machine,
    escapes: &EscapeRegistry,
    module: &ir::Module,
    func: &ir::Function,
    use_index: bool,
) -> Result<CodeFunc, CodegenError> {
    select_func_opts(machine, escapes, module, func, use_index, true)
}

/// [`select_func_with`] with explicit memoization choice: `use_memo`
/// records each `(value node, template)` match attempt in a
/// per-function table, so shared subtrees revisited across blocks skip
/// templates already known not to match. Memoization is sound because
/// a top-level value match depends only on the immutable machine
/// description and IR — the cross-check harness asserts memoized and
/// unmemoized selection pick identical instructions.
///
/// # Errors
///
/// Same failure modes as [`select_func`].
pub fn select_func_opts(
    machine: &Machine,
    escapes: &EscapeRegistry,
    module: &ir::Module,
    func: &ir::Function,
    use_index: bool,
    use_memo: bool,
) -> Result<CodeFunc, CodegenError> {
    select_func_traced(
        machine,
        escapes,
        module,
        func,
        use_index,
        use_memo,
        &marion_trace::Tracer::off(),
    )
}

/// [`select_func_opts`] with micro-span attribution: the pattern-match
/// tree cover itself folds into the tracer's self-profile as
/// `match_cover`.
///
/// # Errors
///
/// Same failure modes as [`select_func`].
pub fn select_func_traced(
    machine: &Machine,
    escapes: &EscapeRegistry,
    module: &ir::Module,
    func: &ir::Function,
    use_index: bool,
    use_memo: bool,
    tracer: &marion_trace::Tracer,
) -> Result<CodeFunc, CodegenError> {
    let parents = func.parent_counts();
    let mut out = CodeFunc::new(&func.name);
    out.local_frame_size = (func.frame_locals_size() + 7) & !7;
    for _ in 0..=func.blocks.len() {
        out.blocks.push(CodeBlock::default());
    }
    let mut ctx = SelCtx {
        machine,
        escapes,
        module,
        irf: func,
        out,
        cur: 0,
        vmap: vec![None; func.vreg_tys.len()],
        cache: HashMap::new(),
        parents,
        use_index,
        use_memo,
        memo: HashMap::new(),
    };
    {
        let _m = tracer.mspan("match_cover");
        ctx.run()?;
    }
    Ok(ctx.out)
}

fn err(msg: impl Into<String>) -> CodegenError {
    CodegenError::new(Phase::Select, msg)
}

/// True for the int-like types that share registers on a 32-bit RISC.
fn int_family(ty: Ty) -> bool {
    matches!(ty, Ty::Char | Ty::Short | Ty::Int | Ty::Long | Ty::Ptr)
}

/// Template root type constraint check.
fn ty_match(constraint: Option<Ty>, ty: Ty) -> bool {
    match constraint {
        None => true,
        Some(c) => c == ty || (int_family(c) && int_family(ty)),
    }
}

/// Conversion-target match: exact within {Int, Long, Ptr}; `Char` and
/// `Short` are distinct (they need real truncation sequences).
fn cvt_ty_match(pattern: Ty, ty: Ty) -> bool {
    let wide_int = |t| matches!(t, Ty::Int | Ty::Long | Ty::Ptr);
    pattern == ty || (wide_int(pattern) && wide_int(ty))
}

/// How one operand slot will be filled.
#[derive(Debug, Clone)]
enum OpPlan {
    /// Recursively select this node into a register.
    Reg(NodeId),
    /// Already-resolved operand (hard-wired register, immediate...).
    Ready(Operand),
    /// Fill from the destination (the def slot).
    Def,
    /// An unreferenced fixed register from the operand list.
    Unset,
}

/// A successful match: the template plus how to fill each operand, and
/// the temporal-producer chains to emit first.
///
/// Backtracking is checkpoint/rollback, not whole-plan copies: slots
/// are only ever written from `Unset` during matching (a twice-
/// referenced operand is *compared* against its first binding, never
/// overwritten), so undoing a failed sub-match is just resetting the
/// slots recorded since the checkpoint and truncating the chain list.
#[derive(Debug, Clone)]
struct MatchPlan {
    template: TemplateId,
    ops: Vec<OpPlan>,
    chains: Vec<MatchPlan>,
    /// Slot indices bound since creation, in binding order.
    undo: Vec<u32>,
}

/// A rollback point inside a [`MatchPlan`].
#[derive(Debug, Clone, Copy)]
struct PlanMark {
    undo_len: usize,
    chains_len: usize,
}

impl MatchPlan {
    fn new(template: TemplateId, nops: usize) -> MatchPlan {
        MatchPlan {
            template,
            ops: vec![OpPlan::Unset; nops],
            chains: Vec::new(),
            undo: Vec::new(),
        }
    }

    /// Binds a slot during matching, recording it for rollback.
    fn bind(&mut self, slot: usize, plan: OpPlan) {
        self.ops[slot] = plan;
        self.undo.push(slot as u32);
    }

    fn checkpoint(&self) -> PlanMark {
        PlanMark {
            undo_len: self.undo.len(),
            chains_len: self.chains.len(),
        }
    }

    fn rollback(&mut self, mark: PlanMark) {
        for slot in self.undo.drain(mark.undo_len..) {
            self.ops[slot as usize] = OpPlan::Unset;
        }
        self.chains.truncate(mark.chains_len);
    }
}

struct SelCtx<'a> {
    machine: &'a Machine,
    escapes: &'a EscapeRegistry,
    #[allow(dead_code)]
    module: &'a ir::Module,
    irf: &'a ir::Function,
    out: CodeFunc,
    cur: usize,
    vmap: Vec<Option<Vreg>>,
    cache: HashMap<NodeId, Operand>,
    parents: Vec<u32>,
    use_index: bool,
    use_memo: bool,
    /// Top-level value-match outcomes, `(node, template) -> matched?`.
    /// Persists for the whole function (unlike the per-block operand
    /// `cache`): a match attempt at depth 0 is a pure function of the
    /// machine description and the IR, so revisited shared subtrees
    /// skip templates already known not to match.
    memo: HashMap<(NodeId, TemplateId), bool>,
}

impl<'a> SelCtx<'a> {
    fn run(&mut self) -> Result<(), CodegenError> {
        let epilogue = ir::BlockId(self.irf.blocks.len() as u32);
        // Entry: move incoming arguments from their CWVM registers
        // into the parameter pseudo-registers.
        self.cur = 0;
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        for (v, ty) in self.irf.params.clone() {
            let regs = self.machine.cwvm().arg_regs(ty);
            let used = if ty.is_float() {
                &mut fp_used
            } else {
                &mut int_used
            };
            let Some(reg) = regs.get(*used).copied() else {
                return Err(err(format!(
                    "too many {} parameters (have {} registers)",
                    if ty.is_float() { "floating" } else { "integer" },
                    regs.len()
                )));
            };
            *used += 1;
            let dest = self.map_vreg(v)?;
            self.emit_move(dest, Operand::Phys(reg))?;
        }
        for bi in 0..self.irf.blocks.len() {
            self.cur = bi;
            self.cache.clear();
            let block = &self.irf.blocks[bi];
            for stmt in &block.stmts {
                match stmt {
                    ir::Stmt::SetVreg(v, n) => {
                        let dest = self.map_vreg(*v)?;
                        self.select_into(dest, *n)?;
                    }
                    ir::Stmt::Store { addr, value, ty } => {
                        self.select_store(*addr, *value, *ty)?;
                    }
                    ir::Stmt::CallStmt(n) => {
                        if !self.cache.contains_key(n) {
                            self.select_reg(*n)?;
                        }
                    }
                }
            }
            match &block.term {
                ir::Terminator::Jump(t) => {
                    self.out.blocks[bi].succs = vec![*t];
                    if t.0 as usize != bi + 1 {
                        self.emit_goto(*t)?;
                    }
                }
                ir::Terminator::CondJump {
                    rel,
                    lhs,
                    rhs,
                    then_to,
                    else_to,
                } => {
                    self.select_cond_branch(*rel, *lhs, *rhs, *then_to)?;
                    self.out.blocks[bi].succs = vec![*then_to, *else_to];
                    if else_to.0 as usize != bi + 1 {
                        self.emit_goto(*else_to)?;
                    }
                }
                ir::Terminator::Ret(value) => {
                    if let Some(n) = value {
                        let ty = self.irf.node(*n).ty;
                        let result = self
                            .machine
                            .cwvm()
                            .result_reg(ty)
                            .ok_or_else(|| err(format!("no %result register for {ty}")))?;
                        let src = self.select_operand(*n)?;
                        self.emit_move_phys(result, src)?;
                    }
                    self.out.blocks[bi].succs = vec![epilogue];
                    if epilogue.0 as usize != bi + 1 {
                        self.emit_goto(epilogue)?;
                    }
                }
            }
        }
        // Epilogue: the return instruction (callee-save restores are
        // inserted by the frame pass).
        self.cur = epilogue.0 as usize;
        let ret_t = self
            .machine
            .templates()
            .iter()
            .position(|t| t.effects.is_return)
            .map(|i| TemplateId(i as u32))
            .ok_or_else(|| err("machine has no return instruction"))?;
        let mut inst = Inst::new(ret_t, self.fixed_ops(ret_t));
        if let Some(ra) = self.machine.cwvm().retaddr {
            inst.extra_uses.push(ra);
        }
        if let Some(ret_ty) = self.irf.ret_ty {
            if let Some(r) = self.machine.cwvm().result_reg(ret_ty) {
                inst.extra_uses.push(r);
            }
        }
        self.out.blocks[epilogue.0 as usize].insts.push(inst);
        Ok(())
    }

    /// Operand list for a template with no pattern-bound operands
    /// (fills fixed registers only).
    fn fixed_ops(&self, t: TemplateId) -> Vec<Operand> {
        self.machine
            .template(t)
            .operands
            .iter()
            .map(|spec| match spec {
                OperandSpec::FixedReg(p) => Operand::Phys(*p),
                _ => Operand::Imm(ImmVal::Const(0)),
            })
            .collect()
    }

    fn map_vreg(&mut self, v: ir::VregId) -> Result<Vreg, CodegenError> {
        if let Some(mapped) = self.vmap[v.0 as usize] {
            return Ok(mapped);
        }
        let ty = self.irf.vreg_ty(v);
        let class = self.natural_class(ty)?;
        let mapped = self.out.new_vreg(class, VregKind::Global);
        self.vmap[v.0 as usize] = Some(mapped);
        Ok(mapped)
    }

    fn natural_class(&self, ty: Ty) -> Result<RegClassId, CodegenError> {
        self.machine
            .cwvm()
            .general_class(ty)
            .ok_or_else(|| err(format!("no general-purpose class for type {ty}")))
    }

    // ------------------------------------------------------ values

    /// Selects `id` into a register operand.
    fn select_reg(&mut self, id: NodeId) -> Result<Operand, CodegenError> {
        if let Some(op) = self.cache.get(&id) {
            return Ok(*op);
        }
        let node = self.irf.node(id);
        let op = match &node.kind {
            NodeKind::ReadVreg(v) => Operand::Vreg(self.map_vreg(*v)?),
            NodeKind::ConstI(_) | NodeKind::Un(marion_ir::UnOp::Neg, _)
                if fold_const(self.irf, id).is_some() =>
            {
                let c = fold_const(self.irf, id).unwrap();
                if let Some(p) = self.hard_reg_for(c, self.natural_class(node.ty)?) {
                    Operand::Phys(p)
                } else {
                    self.match_value(id, None)?
                }
            }
            NodeKind::LocalAddr(l) => {
                let offset = self.irf.local_offset(*l) as i64;
                self.emit_sp_offset(offset, None)?
            }
            NodeKind::Call(sym, args) => {
                let args = args.clone();
                self.lower_call(*sym, &args, node.ty, None)?
            }
            _ => self.match_value(id, None)?,
        };
        // Force shared non-constant nodes into a register once.
        if self.parents[id.0 as usize] > 1 && !self.is_subsumable(id) {
            self.cache.insert(id, op);
        }
        Ok(op)
    }

    /// Whether a node is a constant that re-matches cheaply at each
    /// use (never forced into a register for sharing).
    fn is_subsumable(&self, id: NodeId) -> bool {
        matches!(
            self.irf.node(id).kind,
            NodeKind::ConstI(_) | NodeKind::GlobalAddr(_) | NodeKind::LocalAddr(_)
        )
    }

    /// Selects `id` as either an immediate-capable operand (constant)
    /// or a register.
    fn select_operand(&mut self, id: NodeId) -> Result<Operand, CodegenError> {
        self.select_reg(id)
    }

    /// Selects `id` writing the result into `dest`.
    fn select_into(&mut self, dest: Vreg, id: NodeId) -> Result<(), CodegenError> {
        if self.cache.contains_key(&id) || self.parents[id.0 as usize] > 1 {
            let op = self.select_reg(id)?;
            return self.emit_move(dest, op);
        }
        let node = self.irf.node(id);
        match &node.kind {
            NodeKind::ReadVreg(v) => {
                let src = Operand::Vreg(self.map_vreg(*v)?);
                self.emit_move(dest, src)
            }
            NodeKind::LocalAddr(l) => {
                let offset = self.irf.local_offset(*l) as i64;
                self.emit_sp_offset(offset, Some(dest))?;
                Ok(())
            }
            NodeKind::Call(sym, args) => {
                let args = args.clone();
                let op = self.lower_call(*sym, &args, node.ty, Some(dest))?;
                if op != Operand::Vreg(dest) {
                    self.emit_move(dest, op)?;
                }
                Ok(())
            }
            _ => {
                let op = self.match_value(id, Some(dest))?;
                if op != Operand::Vreg(dest) {
                    self.emit_move(dest, op)?;
                }
                Ok(())
            }
        }
    }

    /// A hard-wired register holding constant `c` in class `class`.
    fn hard_reg_for(&self, c: i64, class: RegClassId) -> Option<PhysReg> {
        self.machine
            .cwvm()
            .hard
            .iter()
            .find(|(p, v)| *v == c && p.class == class)
            .map(|(p, _)| *p)
    }

    /// Every template, in description order — the brute-force
    /// candidate list.
    fn all_templates(&self) -> Vec<TemplateId> {
        (0..self.machine.templates().len())
            .map(|i| TemplateId(i as u32))
            .collect()
    }

    /// Candidate templates for value node `id`, in description order:
    /// the precomputed index lookup, or every template when
    /// brute-forcing.
    fn value_candidates(&self, id: NodeId) -> Vec<TemplateId> {
        if !self.use_index {
            return self.all_templates();
        }
        let shape = match &self.irf.node(id).kind {
            NodeKind::Bin(op, _, _) => RootShape::Bin(*op),
            NodeKind::Un(op, _) => RootShape::Un(match op {
                marion_ir::UnOp::Neg => marion_maril::UnOp::Neg,
                marion_ir::UnOp::Not => marion_maril::UnOp::Not,
            }),
            NodeKind::Load(_) => RootShape::Load,
            NodeKind::Cvt(_) => RootShape::Cvt,
            NodeKind::ConstI(_) | NodeKind::GlobalAddr(_) => RootShape::Imm,
            _ => RootShape::Other,
        };
        let foldable = fold_const(self.irf, id).is_some();
        self.machine
            .selection_index()
            .value_candidates(shape, foldable)
    }

    /// Tries the candidate templates in description order against
    /// value node `id`; emits the first full match.
    fn match_value(&mut self, id: NodeId, dest: Option<Vreg>) -> Result<Operand, CodegenError> {
        let machine = self.machine;
        let node_ty = self.irf.node(id).ty;
        let want_class = self.natural_class(node_ty)?;
        for tid in self.value_candidates(id) {
            let t = machine.template(tid);
            if !ty_match(t.ty, node_ty) || t.def_class() != Some(want_class) {
                continue;
            }
            // Loads must match the access width exactly: an `ld.b`
            // (char) pattern only covers char loads and vice versa.
            if t.effects.reads_mem {
                if let Some(c) = t.ty {
                    let width_ok = match node_ty {
                        Ty::Char | Ty::Short => c == node_ty,
                        _ => c != Ty::Char && c != Ty::Short,
                    };
                    if !width_ok {
                        continue;
                    }
                }
            }
            // Value templates: exactly one `$1 = rhs` statement.
            let [Stmt::Assign(LValue::Operand(1), rhs)] = t.sem.as_slice() else {
                continue;
            };
            // A bare `$1 = $2` with a register spec is a move, not a
            // selection pattern (it would match everything).
            if let Expr::Operand(k) = rhs {
                if matches!(
                    t.operands.get((*k - 1) as usize),
                    Some(OperandSpec::Reg(_)) | Some(OperandSpec::FixedReg(_))
                ) {
                    continue;
                }
            }
            if self.use_memo && self.memo.get(&(id, tid)) == Some(&false) {
                continue;
            }
            let mut plan = MatchPlan::new(tid, t.operands.len());
            plan.ops[0] = OpPlan::Def;
            let matched = self.match_expr(rhs, id, &mut plan, false);
            if self.use_memo {
                self.memo.insert((id, tid), matched);
            }
            if matched {
                return self.emit_plan(&plan, dest);
            }
        }
        Err(err(format!(
            "no pattern matches `{}` (type {node_ty}) on {}",
            ir::dot::render(self.irf, id),
            self.machine.name()
        )))
    }

    /// Structural match of a pattern expression against an IR node,
    /// recording operand bindings in `plan`. Pure: nothing is emitted.
    fn match_expr(&mut self, pat: &Expr, node: NodeId, plan: &mut MatchPlan, in_mem: bool) -> bool {
        self.match_expr_at(pat, node, plan, in_mem, 0)
    }

    fn match_expr_at(
        &mut self,
        pat: &Expr,
        node: NodeId,
        plan: &mut MatchPlan,
        in_mem: bool,
        depth: u8,
    ) -> bool {
        // Temporal chains on machines with mutually-feeding pipelines
        // (i860 multiply <-> add chaining) can recurse through each
        // other; bound the exploration.
        if depth > 12 {
            return false;
        }
        let nk = &self.irf.node(node).kind;
        match pat {
            Expr::Operand(k) => {
                let slot = (*k - 1) as usize;
                let spec = self.machine.template(plan.template).operands[slot];
                let bind = match spec {
                    OperandSpec::Reg(c) => {
                        let node_ty = self.irf.node(node).ty;
                        if self.natural_class(node_ty).ok() != Some(c) {
                            return false;
                        }
                        // Constants equal to a hard-wired register can
                        // bind directly (TOYP's r[0] = 0).
                        if let Some(v) = fold_const(self.irf, node) {
                            if let Some(p) = self.hard_reg_for(v, c) {
                                OpPlan::Ready(Operand::Phys(p))
                            } else {
                                OpPlan::Reg(node)
                            }
                        } else {
                            OpPlan::Reg(node)
                        }
                    }
                    OperandSpec::FixedReg(p) => {
                        let Some(v) = fold_const(self.irf, node) else {
                            return false;
                        };
                        if !self
                            .machine
                            .cwvm()
                            .hard
                            .iter()
                            .any(|(hp, hv)| *hp == p && *hv == v)
                        {
                            return false;
                        }
                        OpPlan::Ready(Operand::Phys(p))
                    }
                    OperandSpec::Imm(d) => {
                        let def = self.machine.imm_def(d);
                        if let Some(v) = fold_const(self.irf, node) {
                            if !def.contains(v) {
                                return false;
                            }
                            OpPlan::Ready(Operand::Imm(ImmVal::Const(v)))
                        } else if let NodeKind::GlobalAddr(sym) = nk {
                            if !def.flags.iter().any(|f| f == "abs") {
                                return false;
                            }
                            OpPlan::Ready(Operand::Imm(ImmVal::Sym(*sym, 0)))
                        } else {
                            return false;
                        }
                    }
                    OperandSpec::Lab(_) => return false,
                };
                // An operand referenced twice must bind identically.
                match &plan.ops[slot] {
                    OpPlan::Unset => {
                        plan.bind(slot, bind);
                        true
                    }
                    existing => matches!((existing, &bind),
                        (OpPlan::Reg(a), OpPlan::Reg(b)) if a == b),
                }
            }
            Expr::Int(c) => fold_const(self.irf, node) == Some(*c),
            Expr::Bin(op, pa, pb) => {
                // Addressing fallback: inside a memory operand, a
                // `base + imm` pattern can match any address expression
                // as `addr + 0` (the whole address goes to a register).
                let fallback = |this: &mut Self, plan: &mut MatchPlan| -> bool {
                    if !(in_mem && *op == BinOp::Add) {
                        return false;
                    }
                    let Expr::Operand(k) = &**pb else {
                        return false;
                    };
                    let slot = (*k - 1) as usize;
                    let OperandSpec::Imm(d) = this.machine.template(plan.template).operands[slot]
                    else {
                        return false;
                    };
                    if !this.machine.imm_def(d).contains(0) {
                        return false;
                    }
                    let mark = plan.checkpoint();
                    if this.match_expr_at(pa, node, plan, false, depth + 1)
                        && matches!(plan.ops[slot], OpPlan::Unset)
                    {
                        plan.bind(slot, OpPlan::Ready(Operand::Imm(ImmVal::Const(0))));
                        return true;
                    }
                    plan.rollback(mark);
                    false
                };
                let NodeKind::Bin(nop, x, y) = *nk else {
                    return fallback(self, plan);
                };
                if nop != *op {
                    return fallback(self, plan);
                }
                let mark = plan.checkpoint();
                if self.match_expr_at(pa, x, plan, in_mem, depth + 1)
                    && self.match_expr_at(pb, y, plan, in_mem, depth + 1)
                {
                    return true;
                }
                plan.rollback(mark);
                // Commutative retry.
                if matches!(
                    op,
                    BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
                ) && self.match_expr_at(pa, y, plan, in_mem, depth + 1)
                    && self.match_expr_at(pb, x, plan, in_mem, depth + 1)
                {
                    return true;
                }
                plan.rollback(mark);
                fallback(self, plan)
            }
            Expr::Un(op, pa) => {
                let ir_op = match op {
                    marion_maril::UnOp::Neg => marion_ir::UnOp::Neg,
                    marion_maril::UnOp::Not => marion_ir::UnOp::Not,
                };
                match *nk {
                    NodeKind::Un(nop, x) if nop == ir_op => {
                        self.match_expr_at(pa, x, plan, in_mem, depth + 1)
                    }
                    _ => false,
                }
            }
            Expr::Convert(ty, pa) => match *nk {
                NodeKind::Cvt(x) if cvt_ty_match(*ty, self.irf.node(node).ty) => {
                    self.match_expr_at(pa, x, plan, in_mem, depth + 1)
                }
                _ => false,
            },
            Expr::Mem(_, addr_pat) => match *nk {
                NodeKind::Load(addr) => self.match_expr_at(addr_pat, addr, plan, true, depth + 1),
                _ => false,
            },
            Expr::Temporal(name) => {
                // Temporal chain: find a template defining this latch
                // whose rhs matches the node, recursively.
                let machine = self.machine;
                let Some(tid) = machine.temporal_by_name(name) else {
                    return false;
                };
                let producers: Vec<TemplateId> = if self.use_index {
                    machine
                        .selection_index()
                        .temporal_def_candidates(tid)
                        .to_vec()
                } else {
                    self.all_templates()
                };
                for utid in producers {
                    let u = machine.template(utid);
                    if !u.effects.temporal_defs.contains(&tid) {
                        continue;
                    }
                    // Find the statement assigning this latch.
                    let Some(Stmt::Assign(LValue::Temporal(_), urhs)) = u
                        .sem
                        .iter()
                        .find(|s| matches!(s, Stmt::Assign(LValue::Temporal(t), _) if t == name))
                    else {
                        continue;
                    };
                    if !ty_match(u.ty, self.irf.node(node).ty) {
                        continue;
                    }
                    let mut sub = MatchPlan::new(utid, u.operands.len());
                    if self.match_expr_at(urhs, node, &mut sub, false, depth + 1) {
                        plan.chains.push(sub);
                        return true;
                    }
                }
                false
            }
            Expr::Call(..) => false,
        }
    }

    /// Emits a match plan: chain producers first, then the instruction
    /// itself. Returns the defined operand (for dummies, the forwarded
    /// source operand).
    fn emit_plan(&mut self, plan: &MatchPlan, dest: Option<Vreg>) -> Result<Operand, CodegenError> {
        // Reborrow the machine directly so the template's operand and
        // effect lists stay usable across the `&mut self` calls below
        // (no per-template clones).
        let machine = self.machine;
        let t = machine.template(plan.template);
        let (is_dummy, tid) = (t.is_dummy(), plan.template);
        let operands_spec: &[OperandSpec] = &t.operands;
        let def_slots: &[u8] = &t.effects.defs;
        let use_slots: &[u8] = &t.effects.uses;

        let mut ops: Vec<Operand> = Vec::with_capacity(plan.ops.len());
        let mut def_op: Option<Operand> = None;
        for (i, p) in plan.ops.iter().enumerate() {
            let op = match p {
                OpPlan::Def => {
                    let class = match operands_spec[i] {
                        OperandSpec::Reg(c) => c,
                        OperandSpec::FixedReg(p) => {
                            let op = Operand::Phys(p);
                            def_op = Some(op);
                            ops.push(op);
                            continue;
                        }
                        _ => return Err(err("def operand is not a register")),
                    };
                    let op = if is_dummy && t.escape.is_none() {
                        // Dummies forward their source; placeholder.
                        Operand::Imm(ImmVal::Const(0))
                    } else {
                        match dest {
                            Some(d) if self.out.vreg(d).class == class => Operand::Vreg(d),
                            _ => Operand::Vreg(self.out.new_vreg(class, VregKind::Local)),
                        }
                    };
                    def_op = Some(op);
                    op
                }
                OpPlan::Reg(node) => self.select_reg(*node)?,
                OpPlan::Ready(op) => *op,
                OpPlan::Unset => match operands_spec[i] {
                    OperandSpec::FixedReg(p) => Operand::Phys(p),
                    _ => {
                        // A temporal sub-operation's def slot, or a
                        // genuinely unused operand.
                        if def_slots.contains(&((i + 1) as u8)) {
                            let class = match operands_spec[i] {
                                OperandSpec::Reg(c) => c,
                                _ => return Err(err("unbound def operand")),
                            };
                            let op = Operand::Vreg(self.out.new_vreg(class, VregKind::Local));
                            def_op = Some(op);
                            op
                        } else {
                            return Err(err(format!(
                                "operand {} of `{}` unbound",
                                i + 1,
                                self.machine.template(tid).mnemonic
                            )));
                        }
                    }
                },
            };
            ops.push(op);
        }

        // Temporal chains go immediately before the instruction that
        // consumes their latches: all register operands above are
        // already materialised, so nothing can intervene and clobber
        // the explicitly advanced pipeline state.
        for chain in &plan.chains {
            self.emit_plan(chain, None)?;
        }

        if is_dummy && t.escape.is_none() {
            // Zero-cost dummy: forward the single use operand.
            let src = use_slots
                .first()
                .and_then(|k| ops.get((*k - 1) as usize))
                .copied()
                .ok_or_else(|| err("dummy instruction with no source operand"))?;
            return Ok(src);
        }
        if let Some(name) = &t.escape {
            let f = self
                .escapes
                .get(name)
                .ok_or_else(|| err(format!("escape `*{name}` not registered")))?;
            let mut ectx = EscapeCtx { sel: self };
            f(&mut ectx, &ops)?;
            return Ok(def_op.unwrap_or(Operand::Imm(ImmVal::Const(0))));
        }
        self.push(Inst::new(tid, ops));
        // Stores and branches define nothing; give callers a harmless
        // placeholder (only value selection reads the result).
        Ok(def_op.unwrap_or(Operand::Imm(ImmVal::Const(0))))
    }

    fn push(&mut self, inst: Inst) {
        self.out.blocks[self.cur].insts.push(inst);
    }

    // ------------------------------------------------------ stores

    fn select_store(&mut self, addr: NodeId, value: NodeId, ty: Ty) -> Result<(), CodegenError> {
        let machine = self.machine;
        let candidates = if self.use_index {
            machine.selection_index().store_candidates().to_vec()
        } else {
            self.all_templates()
        };
        for tid in candidates {
            let t = machine.template(tid);
            if t.escape.is_some() || !ty_match(t.ty, ty) {
                continue;
            }
            let [Stmt::Assign(LValue::Mem(_, addr_pat), value_pat)] = t.sem.as_slice() else {
                continue;
            };
            // The stored class must suit the value's type.
            let value_class = self.natural_class(self.irf.node(value).ty)?;
            let stored_class = t.operands.iter().find_map(|s| match s {
                OperandSpec::Reg(c) => Some(*c),
                _ => None,
            });
            if stored_class != Some(value_class) {
                continue;
            }
            // Access width must match the store type exactly (st.b vs
            // st.h vs st.w): templates carry it as their ty constraint;
            // widths inside the int family are distinguished by exact
            // type when the constraint names char/short.
            if let Some(c) = t.ty {
                let width_ok = match ty {
                    Ty::Char | Ty::Short => c == ty,
                    _ => c != Ty::Char && c != Ty::Short,
                };
                if !width_ok {
                    continue;
                }
            }
            let mut plan = MatchPlan::new(tid, t.operands.len());
            if self.match_expr(addr_pat, addr, &mut plan, true)
                && self.match_expr(value_pat, value, &mut plan, false)
            {
                self.emit_plan(&plan, None).map(|_| ())?;
                return Ok(());
            }
        }
        Err(err(format!(
            "no store pattern for type {ty} on {}",
            self.machine.name()
        )))
    }

    // ------------------------------------------------------ control

    fn select_cond_branch(
        &mut self,
        rel: BinOp,
        lhs: NodeId,
        rhs: NodeId,
        target: ir::BlockId,
    ) -> Result<(), CodegenError> {
        let machine = self.machine;
        let candidates = if self.use_index {
            machine.selection_index().cond_branch_candidates().to_vec()
        } else {
            self.all_templates()
        };
        for tid in candidates {
            let t = machine.template(tid);
            if t.escape.is_some() {
                continue;
            }
            let [Stmt::CondGoto {
                rel: trel,
                lhs: plhs,
                rhs: prhs,
                target: tk,
            }] = t.sem.as_slice()
            else {
                continue;
            };
            let lhs_ty = self.irf.node(lhs).ty;
            if !ty_match(t.ty, lhs_ty) {
                continue;
            }
            let attempts: [(BinOp, NodeId, NodeId); 2] =
                [(rel, lhs, rhs), (rel.swapped(), rhs, lhs)];
            for (arel, albs, arhs) in attempts {
                if *trel != arel {
                    continue;
                }
                let mut plan = MatchPlan::new(tid, t.operands.len());
                let slot = (*tk - 1) as usize;
                plan.ops[slot] = OpPlan::Ready(Operand::Block(target));
                if self.match_expr(plhs, albs, &mut plan, false)
                    && self.match_expr(prhs, arhs, &mut plan, false)
                {
                    self.emit_plan(&plan, None)?;
                    return Ok(());
                }
            }
        }
        Err(err(format!(
            "no branch pattern for `{rel}` on {} (missing %glue rule?)",
            self.machine.name()
        )))
    }

    fn emit_goto(&mut self, target: ir::BlockId) -> Result<(), CodegenError> {
        let machine = self.machine;
        let candidates = if self.use_index {
            machine.selection_index().goto_candidates().to_vec()
        } else {
            self.all_templates()
        };
        for tid in candidates {
            let t = machine.template(tid);
            if let [Stmt::Goto(k)] = t.sem.as_slice() {
                let mut ops = self.fixed_ops(tid);
                ops[(*k - 1) as usize] = Operand::Block(target);
                self.push(Inst::new(tid, ops));
                return Ok(());
            }
        }
        Err(err("machine has no unconditional branch"))
    }

    // ------------------------------------------------------ calls

    fn lower_call(
        &mut self,
        sym: ir::SymbolId,
        args: &[NodeId],
        ret_ty: Ty,
        dest: Option<Vreg>,
    ) -> Result<Operand, CodegenError> {
        self.out.has_calls = true;
        let cwvm = self.machine.cwvm();
        // Assign argument registers with per-type counters.
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        let mut moves: Vec<(PhysReg, NodeId)> = Vec::new();
        for &arg in args {
            let ty = self.irf.node(arg).ty;
            let regs = cwvm.arg_regs(ty);
            let used = if ty.is_float() {
                &mut fp_used
            } else {
                &mut int_used
            };
            let Some(reg) = regs.get(*used).copied() else {
                return Err(err(format!(
                    "too many {} arguments (have {} registers)",
                    if ty.is_float() { "floating" } else { "integer" },
                    regs.len()
                )));
            };
            *used += 1;
            moves.push((reg, arg));
        }
        // Select argument values first (they may clobber nothing), then
        // move them into place.
        let mut arg_ops = Vec::with_capacity(moves.len());
        for (_, node) in &moves {
            arg_ops.push(self.select_reg(*node)?);
        }
        for ((reg, _), op) in moves.iter().zip(&arg_ops) {
            self.emit_move_phys(*reg, *op)?;
        }
        // The call instruction.
        let call_t = self
            .machine
            .templates()
            .iter()
            .position(|t| t.effects.is_call)
            .map(|i| TemplateId(i as u32))
            .ok_or_else(|| err("machine has no call instruction"))?;
        let t = self.machine.template(call_t);
        let Some(Stmt::Call(k)) = t.sem.first() else {
            return Err(err("malformed call template"));
        };
        let mut ops = self.fixed_ops(call_t);
        ops[(*k - 1) as usize] = Operand::Func(sym);
        let mut inst = Inst::new(call_t, ops);
        inst.extra_uses = moves.iter().map(|(r, _)| *r).collect();
        // Clobbers: caller-save allocable registers, the return
        // address, and the result registers.
        for reg in &cwvm.allocable {
            let callee_saved = cwvm
                .callee_save
                .iter()
                .any(|cs| self.machine.regs_overlap(*cs, *reg));
            if !callee_saved {
                inst.extra_defs.push(*reg);
            }
        }
        if let Some(ra) = cwvm.retaddr {
            inst.extra_defs.push(ra);
        }
        self.push(inst);
        // Fetch the result, directly into the destination when the
        // caller provided one (avoids a second register-pair copy).
        let result_reg = cwvm
            .result_reg(ret_ty)
            .ok_or_else(|| err(format!("no %result register for {ret_ty}")))?;
        let class = self.natural_class(ret_ty)?;
        let dest = match dest {
            Some(d) if self.out.vreg(d).class == class => d,
            _ => self.out.new_vreg(class, VregKind::Local),
        };
        self.emit_move(dest, Operand::Phys(result_reg))?;
        Ok(Operand::Vreg(dest))
    }

    // ------------------------------------------------------ moves

    /// Emits `sp + offset` into `dest` (or a fresh vreg).
    fn emit_sp_offset(&mut self, offset: i64, dest: Option<Vreg>) -> Result<Operand, CodegenError> {
        let sp = self
            .machine
            .cwvm()
            .sp
            .ok_or_else(|| err("machine declares no stack pointer"))?;
        let tid = self
            .find_addi(sp.class, offset)
            .ok_or_else(|| err("no add-immediate instruction for frame addressing"))?;
        let machine = self.machine;
        let t = machine.template(tid);
        let dest = dest.unwrap_or_else(|| self.out.new_vreg(sp.class, VregKind::Local));
        let mut ops = Vec::with_capacity(t.operands.len());
        let [Stmt::Assign(LValue::Operand(1), Expr::Bin(BinOp::Add, a, b))] = t.sem.as_slice()
        else {
            return Err(err("malformed add-immediate template"));
        };
        let (reg_slot, imm_slot) = match (&**a, &**b) {
            (Expr::Operand(x), Expr::Operand(y)) => (*x, *y),
            _ => return Err(err("malformed add-immediate template")),
        };
        for i in 0..t.operands.len() {
            let k = (i + 1) as u8;
            ops.push(if k == 1 {
                Operand::Vreg(dest)
            } else if k == reg_slot {
                Operand::Phys(sp)
            } else if k == imm_slot {
                Operand::Imm(ImmVal::Const(offset))
            } else if let OperandSpec::FixedReg(p) = t.operands[i] {
                Operand::Phys(p)
            } else {
                Operand::Imm(ImmVal::Const(0))
            });
        }
        self.push(Inst::new(tid, ops));
        Ok(Operand::Vreg(dest))
    }

    /// Finds a `$1 = $2 + #imm` template for `class` whose immediate
    /// range contains `value`.
    fn find_addi(&self, class: RegClassId, value: i64) -> Option<TemplateId> {
        let candidates = if self.use_index {
            self.machine
                .selection_index()
                .value_candidates(RootShape::Bin(BinOp::Add), false)
        } else {
            self.all_templates()
        };
        candidates.into_iter().find(|&tid| {
            let t = self.machine.template(tid);
            if t.escape.is_some() || t.def_class() != Some(class) {
                return false;
            }
            let [Stmt::Assign(LValue::Operand(1), Expr::Bin(BinOp::Add, a, b))] = t.sem.as_slice()
            else {
                return false;
            };
            let (Expr::Operand(x), Expr::Operand(y)) = (&**a, &**b) else {
                return false;
            };
            let (Some(x_spec), Some(y_spec)) = (
                t.operands.get((*x - 1) as usize),
                t.operands.get((*y - 1) as usize),
            ) else {
                return false;
            };
            matches!((x_spec, y_spec),
                (OperandSpec::Reg(c), OperandSpec::Imm(d))
                    if *c == class && self.machine.imm_def(*d).contains(value))
        })
    }

    /// Emits a move of `src` into virtual register `dest`.
    fn emit_move(&mut self, dest: Vreg, src: Operand) -> Result<(), CodegenError> {
        if src == Operand::Vreg(dest) {
            return Ok(());
        }
        let class = self.out.vreg(dest).class;
        self.emit_move_to(Operand::Vreg(dest), class, src)
    }

    /// Emits a move of `src` into physical register `dest`.
    fn emit_move_phys(&mut self, dest: PhysReg, src: Operand) -> Result<(), CodegenError> {
        if src == Operand::Phys(dest) {
            return Ok(());
        }
        self.emit_move_to(Operand::Phys(dest), dest.class, src)
    }

    fn emit_move_to(
        &mut self,
        dest: Operand,
        class: RegClassId,
        src: Operand,
    ) -> Result<(), CodegenError> {
        // Immediate source: use a load-immediate pattern.
        if let Operand::Imm(imm) = src {
            return self.emit_li(dest, class, imm);
        }
        if let Some(tid) = self.machine.move_template(class) {
            let t = self.machine.template(tid);
            let def_slot = *t.effects.defs.first().unwrap_or(&1);
            let use_slot = *t.effects.uses.first().unwrap_or(&2);
            let mut ops = self.fixed_ops(tid);
            ops[(def_slot - 1) as usize] = dest;
            ops[(use_slot - 1) as usize] = src;
            self.push(Inst::new(tid, ops));
            return Ok(());
        }
        if let Some(tid) = self.machine.move_escape(class) {
            let t = self.machine.template(tid);
            let name = t.escape.clone().expect("escape move");
            let f = self
                .escapes
                .get(&name)
                .ok_or_else(|| err(format!("escape `*{name}` not registered")))?;
            let ops = vec![dest, src];
            let mut ectx = EscapeCtx { sel: self };
            f(&mut ectx, &ops)?;
            return Ok(());
        }
        Err(err(format!(
            "no %move directive for class `{}`",
            self.machine.reg_class(class).name
        )))
    }

    /// Emits a load-immediate of `imm` into `dest` using the first
    /// matching `$1 = #imm`-shaped template (or an escape such as a
    /// `lui`/`ori` expansion).
    fn emit_li(
        &mut self,
        dest: Operand,
        class: RegClassId,
        imm: ImmVal,
    ) -> Result<(), CodegenError> {
        let machine = self.machine;
        let candidates = if self.use_index {
            machine.selection_index().load_imm_candidates().to_vec()
        } else {
            self.all_templates()
        };
        for tid in candidates {
            let t = machine.template(tid);
            if t.def_class() != Some(class) {
                continue;
            }
            let [Stmt::Assign(LValue::Operand(1), Expr::Operand(k))] = t.sem.as_slice() else {
                continue;
            };
            let slot = (*k - 1) as usize;
            let OperandSpec::Imm(d) = t.operands[slot] else {
                continue;
            };
            let def = self.machine.imm_def(d);
            let ok = match imm {
                ImmVal::Const(v) => def.contains(v),
                ImmVal::Sym(..) => def.flags.iter().any(|f| f == "abs"),
                _ => false,
            };
            if !ok {
                continue;
            }
            if let Some(name) = &t.escape {
                let f = self
                    .escapes
                    .get(name)
                    .ok_or_else(|| err(format!("escape `*{name}` not registered")))?;
                let mut ops = vec![dest; t.operands.len()];
                ops[slot] = Operand::Imm(imm);
                let mut ectx = EscapeCtx { sel: self };
                f(&mut ectx, &ops)?;
                return Ok(());
            }
            let mut ops = self.fixed_ops(tid);
            ops[0] = dest;
            ops[slot] = Operand::Imm(imm);
            self.push(Inst::new(tid, ops));
            return Ok(());
        }
        Err(err(format!(
            "no load-immediate pattern covers `{imm}` for class `{}`",
            self.machine.reg_class(class).name
        )))
    }
}

/// The API surface exposed to `*func` escape functions.
pub struct EscapeCtx<'a, 'b> {
    sel: &'a mut SelCtx<'b>,
}

impl<'a, 'b> EscapeCtx<'a, 'b> {
    /// The machine being targeted.
    pub fn machine(&self) -> &Machine {
        self.sel.machine
    }

    /// Allocates a fresh local virtual register.
    pub fn new_vreg(&mut self, class: RegClassId) -> Vreg {
        self.sel.out.new_vreg(class, VregKind::Local)
    }

    /// Emits the instruction whose directive carries `[label]`, with
    /// the given operands.
    ///
    /// # Errors
    ///
    /// Fails if no directive has that label.
    pub fn emit_labelled(&mut self, label: &str, ops: Vec<Operand>) -> Result<(), CodegenError> {
        let tid = self
            .sel
            .machine
            .template_by_label(label)
            .ok_or_else(|| err(format!("no directive labelled `{label}`")))?;
        self.sel.push(Inst::new(tid, ops));
        Ok(())
    }

    /// Emits the first instruction with the given mnemonic.
    ///
    /// # Errors
    ///
    /// Fails if the mnemonic is unknown.
    pub fn emit(&mut self, mnemonic: &str, ops: Vec<Operand>) -> Result<(), CodegenError> {
        let tid = self
            .sel
            .machine
            .template_by_mnemonic(mnemonic)
            .ok_or_else(|| err(format!("no instruction `{mnemonic}`")))?;
        self.sel.push(Inst::new(tid, ops));
        Ok(())
    }

    /// Half `i` of a register operand (for paired-register escapes).
    ///
    /// # Errors
    ///
    /// Fails on non-register operands.
    pub fn half(&self, op: Operand, i: u8) -> Result<Operand, CodegenError> {
        match op {
            Operand::Vreg(v) => {
                let class = self.sel.out.vreg(v).class;
                if self.sel.machine.reg_class(class).unit_width < 2 {
                    if std::env::var("MARION_HALF_PANIC").is_ok() {
                        panic!("half of single-unit vreg {v}");
                    }
                    return Err(err(format!(
                        "half of single-unit vreg {v} (class `{}`)",
                        self.sel.machine.reg_class(class).name
                    )));
                }
                Ok(Operand::VregHalf(v, i))
            }
            Operand::Phys(p) => {
                // Find the overlapping narrower class register.
                let machine = self.sel.machine;
                let units: Vec<u32> = machine.units_of(p).collect();
                let want = units
                    .get(i as usize)
                    .copied()
                    .ok_or_else(|| err("register has no such half"))?;
                for (ci, c) in machine.reg_classes().iter().enumerate() {
                    if c.unit_width == 1 {
                        for r in 0..c.count {
                            if c.unit_base + r * c.unit_stride == want {
                                return Ok(Operand::Phys(PhysReg::new(
                                    marion_maril::RegClassId(ci as u32),
                                    r,
                                )));
                            }
                        }
                    }
                }
                Err(err("no single-unit class overlaps this register"))
            }
            other => Err(err(format!("operand {other} has no halves"))),
        }
    }

    /// The high half of an immediate (for `lui`-style sequences).
    pub fn imm_high(&self, imm: ImmVal) -> ImmVal {
        match imm {
            ImmVal::Const(v) => ImmVal::Const(((v as u32) >> 16) as i64),
            ImmVal::Sym(s, a) => ImmVal::SymHigh(s, a),
            other => other,
        }
    }

    /// The low half of an immediate.
    pub fn imm_low(&self, imm: ImmVal) -> ImmVal {
        match imm {
            ImmVal::Const(v) => ImmVal::Const((v as u32 & 0xffff) as i64),
            ImmVal::Sym(s, a) => ImmVal::SymLow(s, a),
            other => other,
        }
    }
}
