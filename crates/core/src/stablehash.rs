//! Structural cache-key hashing.
//!
//! [`StableHash`] feeds a value's structure directly into a
//! [`StableHasher`] — no intermediate `Debug`/string rendering, no
//! allocation on the probe path. The encoding discipline makes the
//! byte stream an unambiguous serialisation, so distinct values hash
//! distinct streams:
//!
//! * every variable-length sequence is **length-prefixed**;
//! * every enum writes a **discriminant tag** before its payload;
//! * every `Option` writes 0 (absent) or 1 followed by the value;
//! * fields are written in **declaration order**, so the key is a pure
//!   function of the value and the (versioned) field layout;
//! * `f64` is hashed by its IEEE bit pattern.
//!
//! The machine impl covers everything that can change compiled output:
//! register classes, temporal latches, resources, operand ranges,
//! memory banks, clocks, packing elements and classes, every template
//! (operand shapes, semantics, resource vectors, latencies, slots,
//! effects), auxiliary latencies, glue rules and the CWVM. It
//! deliberately skips `DescriptionStats` (Table 1 metadata — no
//! codegen effect) and the `SelectionIndex` (a pure function of the
//! templates already hashed).

use marion_cache::StableHasher;
use marion_ir as ir;
use marion_maril::expr::LValue;
use marion_maril::machine::{
    AuxLatency, Cwvm, GlueKind, GlueRule, ImmDef, LabelDef, OperandSpec, PackClass, PhysReg,
    RegClass, Template, TemplateEffects, TemporalReg,
};
use marion_maril::{BinOp, Builtin, Expr, Machine, ResSet, Stmt, Ty, UnOp};

/// Structural hashing into a [`StableHasher`].
pub trait StableHash {
    /// Feed this value's structure into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

// --- primitives and containers ---------------------------------------

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for u8 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for u32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for i32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(*self as i64);
    }
}

impl StableHash for i64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(*self);
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.to_bits());
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash + ?Sized> StableHash for Box<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

// --- maril machine-description types ---------------------------------

macro_rules! hash_id {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(self.0 as u64);
            }
        }
    )*};
}

hash_id!(
    marion_maril::RegClassId,
    marion_maril::TemplateId,
    marion_maril::machine::ImmDefId,
    marion_maril::machine::LabelDefId,
    marion_maril::machine::ClockId,
    marion_maril::machine::ClassId,
    marion_maril::machine::TemporalId
);

macro_rules! hash_c_enum {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}

hash_c_enum!(Ty, BinOp, UnOp, Builtin);

impl StableHash for PhysReg {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.class.stable_hash(h);
        self.index.stable_hash(h);
    }
}

impl StableHash for ResSet {
    fn stable_hash(&self, h: &mut StableHasher) {
        for w in self.words() {
            h.write_u64(*w);
        }
    }
}

impl StableHash for RegClass {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.count.stable_hash(h);
        self.tys.stable_hash(h);
        self.unit_width.stable_hash(h);
        self.unit_base.stable_hash(h);
        self.unit_stride.stable_hash(h);
    }
}

impl StableHash for TemporalReg {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.ty.stable_hash(h);
        self.clock.stable_hash(h);
    }
}

impl StableHash for ImmDef {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.lo.stable_hash(h);
        self.hi.stable_hash(h);
        self.flags.stable_hash(h);
    }
}

impl StableHash for LabelDef {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.lo.stable_hash(h);
        self.hi.stable_hash(h);
        self.relative.stable_hash(h);
    }
}

impl StableHash for PackClass {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.elements.stable_hash(h);
    }
}

impl StableHash for OperandSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            OperandSpec::Reg(c) => {
                h.write_u64(0);
                c.stable_hash(h);
            }
            OperandSpec::FixedReg(p) => {
                h.write_u64(1);
                p.stable_hash(h);
            }
            OperandSpec::Imm(d) => {
                h.write_u64(2);
                d.stable_hash(h);
            }
            OperandSpec::Lab(l) => {
                h.write_u64(3);
                l.stable_hash(h);
            }
        }
    }
}

impl StableHash for Expr {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Expr::Operand(k) => {
                h.write_u64(0);
                k.stable_hash(h);
            }
            Expr::Int(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
            Expr::Temporal(name) => {
                h.write_u64(2);
                name.stable_hash(h);
            }
            Expr::Mem(bank, addr) => {
                h.write_u64(3);
                bank.stable_hash(h);
                addr.stable_hash(h);
            }
            Expr::Bin(op, lhs, rhs) => {
                h.write_u64(4);
                op.stable_hash(h);
                lhs.stable_hash(h);
                rhs.stable_hash(h);
            }
            Expr::Un(op, inner) => {
                h.write_u64(5);
                op.stable_hash(h);
                inner.stable_hash(h);
            }
            Expr::Call(b, arg) => {
                h.write_u64(6);
                b.stable_hash(h);
                arg.stable_hash(h);
            }
            Expr::Convert(ty, arg) => {
                h.write_u64(7);
                ty.stable_hash(h);
                arg.stable_hash(h);
            }
        }
    }
}

impl StableHash for LValue {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            LValue::Operand(k) => {
                h.write_u64(0);
                k.stable_hash(h);
            }
            LValue::Temporal(name) => {
                h.write_u64(1);
                name.stable_hash(h);
            }
            LValue::Mem(bank, addr) => {
                h.write_u64(2);
                bank.stable_hash(h);
                addr.stable_hash(h);
            }
        }
    }
}

impl StableHash for Stmt {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Stmt::Assign(lv, e) => {
                h.write_u64(0);
                lv.stable_hash(h);
                e.stable_hash(h);
            }
            Stmt::CondGoto {
                rel,
                lhs,
                rhs,
                target,
            } => {
                h.write_u64(1);
                rel.stable_hash(h);
                lhs.stable_hash(h);
                rhs.stable_hash(h);
                target.stable_hash(h);
            }
            Stmt::Goto(k) => {
                h.write_u64(2);
                k.stable_hash(h);
            }
            Stmt::Call(k) => {
                h.write_u64(3);
                k.stable_hash(h);
            }
            Stmt::Return => h.write_u64(4),
            Stmt::Nop => h.write_u64(5),
        }
    }
}

impl StableHash for TemplateEffects {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.defs.stable_hash(h);
        self.uses.stable_hash(h);
        self.temporal_defs.stable_hash(h);
        self.temporal_uses.stable_hash(h);
        self.reads_mem.stable_hash(h);
        self.writes_mem.stable_hash(h);
        self.is_cond_branch.stable_hash(h);
        self.is_goto.stable_hash(h);
        self.is_call.stable_hash(h);
        self.is_return.stable_hash(h);
    }
}

impl StableHash for Template {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.mnemonic.stable_hash(h);
        self.label.stable_hash(h);
        self.escape.stable_hash(h);
        self.operands.stable_hash(h);
        self.ty.stable_hash(h);
        self.affects_clock.stable_hash(h);
        self.class.stable_hash(h);
        self.sem.stable_hash(h);
        self.rsrc.stable_hash(h);
        self.cost.stable_hash(h);
        self.latency.stable_hash(h);
        self.slots.stable_hash(h);
        self.is_move.stable_hash(h);
        self.effects.stable_hash(h);
    }
}

impl StableHash for AuxLatency {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.first.stable_hash(h);
        self.second.stable_hash(h);
        match self.cond {
            None => h.write_u64(0),
            Some((i, j)) => {
                h.write_u64(1);
                i.stable_hash(h);
                j.stable_hash(h);
            }
        }
        self.latency.stable_hash(h);
    }
}

impl StableHash for GlueKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            GlueKind::Cond {
                from_rel,
                to_rel,
                to_lhs,
                to_rhs,
            } => {
                h.write_u64(0);
                from_rel.stable_hash(h);
                to_rel.stable_hash(h);
                to_lhs.stable_hash(h);
                to_rhs.stable_hash(h);
            }
            GlueKind::Value { from, to } => {
                h.write_u64(1);
                from.stable_hash(h);
                to.stable_hash(h);
            }
        }
    }
}

impl StableHash for GlueRule {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.operand_classes.stable_hash(h);
        self.kind.stable_hash(h);
    }
}

impl StableHash for Cwvm {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.general.stable_hash(h);
        self.allocable.stable_hash(h);
        self.callee_save.stable_hash(h);
        self.sp.stable_hash(h);
        self.fp.stable_hash(h);
        self.retaddr.stable_hash(h);
        self.gp.stable_hash(h);
        self.hard.stable_hash(h);
        self.args.stable_hash(h);
        self.results.stable_hash(h);
        self.stack_down.stable_hash(h);
    }
}

impl StableHash for Machine {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name().stable_hash(h);
        self.reg_classes().stable_hash(h);
        self.temporals().stable_hash(h);
        self.resources().stable_hash(h);
        self.imm_defs().stable_hash(h);
        self.label_defs().stable_hash(h);
        self.memories().stable_hash(h);
        self.clocks().stable_hash(h);
        self.elements().stable_hash(h);
        self.classes().stable_hash(h);
        self.templates().stable_hash(h);
        self.aux_latencies().stable_hash(h);
        self.glue_rules().stable_hash(h);
        self.cwvm().stable_hash(h);
    }
}

// --- IR function types ------------------------------------------------

macro_rules! hash_ir_id {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(self.0 as u64);
            }
        }
    )*};
}

hash_ir_id!(
    ir::NodeId,
    ir::BlockId,
    ir::VregId,
    ir::LocalId,
    ir::SymbolId
);

impl StableHash for ir::NodeKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            ir::NodeKind::ConstI(v) => {
                h.write_u64(0);
                v.stable_hash(h);
            }
            ir::NodeKind::ConstF(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
            ir::NodeKind::ReadVreg(v) => {
                h.write_u64(2);
                v.stable_hash(h);
            }
            ir::NodeKind::GlobalAddr(s) => {
                h.write_u64(3);
                s.stable_hash(h);
            }
            ir::NodeKind::LocalAddr(l) => {
                h.write_u64(4);
                l.stable_hash(h);
            }
            ir::NodeKind::Load(a) => {
                h.write_u64(5);
                a.stable_hash(h);
            }
            ir::NodeKind::Bin(op, a, b) => {
                h.write_u64(6);
                op.stable_hash(h);
                a.stable_hash(h);
                b.stable_hash(h);
            }
            ir::NodeKind::Un(op, a) => {
                h.write_u64(7);
                op.stable_hash(h);
                a.stable_hash(h);
            }
            ir::NodeKind::Cvt(a) => {
                h.write_u64(8);
                a.stable_hash(h);
            }
            ir::NodeKind::Call(s, args) => {
                h.write_u64(9);
                s.stable_hash(h);
                args.stable_hash(h);
            }
        }
    }
}

impl StableHash for ir::Node {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.kind.stable_hash(h);
        self.ty.stable_hash(h);
    }
}

impl StableHash for ir::Stmt {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            ir::Stmt::SetVreg(v, n) => {
                h.write_u64(0);
                v.stable_hash(h);
                n.stable_hash(h);
            }
            ir::Stmt::Store { addr, value, ty } => {
                h.write_u64(1);
                addr.stable_hash(h);
                value.stable_hash(h);
                ty.stable_hash(h);
            }
            ir::Stmt::CallStmt(n) => {
                h.write_u64(2);
                n.stable_hash(h);
            }
        }
    }
}

impl StableHash for ir::Terminator {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            ir::Terminator::Jump(b) => {
                h.write_u64(0);
                b.stable_hash(h);
            }
            ir::Terminator::CondJump {
                rel,
                lhs,
                rhs,
                then_to,
                else_to,
            } => {
                h.write_u64(1);
                rel.stable_hash(h);
                lhs.stable_hash(h);
                rhs.stable_hash(h);
                then_to.stable_hash(h);
                else_to.stable_hash(h);
            }
            ir::Terminator::Ret(v) => {
                h.write_u64(2);
                v.stable_hash(h);
            }
        }
    }
}

impl StableHash for ir::Block {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.stmts.stable_hash(h);
        self.term.stable_hash(h);
    }
}

impl StableHash for ir::Local {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.size.stable_hash(h);
    }
}

impl StableHash for ir::Function {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.params.stable_hash(h);
        self.ret_ty.stable_hash(h);
        self.vreg_tys.stable_hash(h);
        self.locals.stable_hash(h);
        self.blocks.stable_hash(h);
        self.nodes.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of<T: StableHash>(v: &T) -> marion_cache::CacheKey {
        let mut h = StableHasher::new();
        v.stable_hash(&mut h);
        h.finish()
    }

    #[test]
    fn length_prefixing_separates_field_boundaries() {
        // ("ab", "c") must hash differently from ("a", "bc").
        let a = (String::from("ab"), String::from("c"));
        let b = (String::from("a"), String::from("bc"));
        assert_ne!(key_of(&a), key_of(&b));
    }

    #[test]
    fn option_and_empty_vec_are_distinct() {
        let none: Option<u32> = None;
        let zero: Option<u32> = Some(0);
        assert_ne!(key_of(&none), key_of(&zero));
        let empty: Vec<u32> = vec![];
        let one_zero: Vec<u32> = vec![0];
        assert_ne!(key_of(&empty), key_of(&one_zero));
    }

    #[test]
    fn float_bits_hash_not_value() {
        assert_ne!(key_of(&0.0f64), key_of(&-0.0f64));
    }

    #[test]
    fn machine_hash_is_structural() {
        let src = r#"
            declare {
                %reg r[0:3] (int);
                %resource IE;
                %def c16 [-32768:32767];
                %memory m[0:65535];
            }
            cwvm { %general (int) r; %allocable r[1:2]; %sp r[3] +down; %fp r[0] +down; %retaddr r[1]; }
            instr {
                %instr add r, r, r (int) {$1 = $2 + $3;} [IE;] (1,1,0)
            }
        "#;
        let m1 = Machine::parse("t", src).unwrap();
        let m2 = Machine::parse("t", src).unwrap();
        assert_eq!(key_of(&m1), key_of(&m2), "same description, same key");
        let m3 = Machine::parse("t", &src.replace("(1,1,0)", "(1,2,0)")).unwrap();
        assert_ne!(key_of(&m1), key_of(&m3), "latency change flips the key");
        let m4 = Machine::parse("u", src).unwrap();
        assert_ne!(key_of(&m1), key_of(&m4), "name change flips the key");
    }
}
