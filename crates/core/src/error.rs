//! Errors produced by the back end.

use std::error::Error;
use std::fmt;

/// A code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Which phase failed.
    pub phase: Phase,
    /// What went wrong.
    pub message: String,
}

/// Back-end phases, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Glue transformation.
    Glue,
    /// Instruction selection.
    Select,
    /// Code DAG construction.
    Dag,
    /// Instruction scheduling.
    Schedule,
    /// Register allocation.
    RegAlloc,
    /// Frame construction / emission.
    Emit,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Glue => "glue",
            Phase::Select => "selection",
            Phase::Dag => "code dag",
            Phase::Schedule => "scheduling",
            Phase::RegAlloc => "register allocation",
            Phase::Emit => "emission",
        })
    }
}

impl CodegenError {
    /// Creates an error tagged with its phase.
    pub fn new(phase: Phase, message: impl Into<String>) -> CodegenError {
        CodegenError {
            phase,
            message: message.into(),
        }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed: {}", self.phase, self.message)
    }
}

impl Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_phase() {
        let e = CodegenError::new(Phase::Select, "no pattern matches `(n1 + n2)`");
        assert_eq!(
            e.to_string(),
            "selection failed: no pattern matches `(n1 + n2)`"
        );
    }
}
