//! Schedule-quality telemetry.
//!
//! The paper's evaluation is a code-quality story — per-kernel cycle
//! counts comparing Postpass, IPS and RASE across machines — and this
//! module gives that story a first-class, machine-readable record.
//! A [`QualityRecord`] summarises how good one compiled function's
//! schedules are; [`ProgramQuality`] pairs the per-function records
//! with one simulator run of the whole program and derives the
//! estimate-vs-measured drift. Everything here is assembled from data
//! the pipeline already produces (scheduler estimates, placement
//! provenance, simulator counters) — no new instrumentation runs.
//!
//! Invariants (checked by [`ProgramQuality::validate`] and the
//! `quality_telemetry` integration tests):
//!
//! * `critical_path ≤ est_cycles`, per block, per function and in
//!   aggregate — the DAG dependence chain is a lower bound no legal
//!   schedule can beat;
//! * every field is a pure function of the compiler inputs, so two
//!   compiles of the same module (cold or through the compile cache)
//!   produce byte-identical records.
//!
//! The consumers: `marion-bench quality` sweeps machines × strategies
//! × workloads into `BENCH_quality.json` (the committed quality
//! matrix, gated exactly by `marion-bench diff --tolerance 0`),
//! `marion-fuzz` compares strategies against each other on generated
//! machines, and the HTML report renders the "quality observatory"
//! section from the JSON.

use crate::driver::CompiledProgram;
use crate::sched::Schedule;
use std::collections::HashMap;

/// Stall-cycle keys, in the fixed order used everywhere a breakdown is
/// serialised (matches [`crate::explain::StallReason::key`]).
pub const STALL_KEYS: [&str; 7] = [
    "dependence",
    "resource",
    "class",
    "temporal",
    "pressure",
    "order",
    "other",
];

/// Stall cycles bucketed by [`crate::explain::StallReason::key`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    pub dependence: u64,
    pub resource: u64,
    pub class: u64,
    pub temporal: u64,
    pub pressure: u64,
    pub order: u64,
    pub other: u64,
}

impl StallBreakdown {
    /// Adds `cycles` to the bucket named `key`; unknown keys land in
    /// `other` (defensive — the reason enum is closed).
    pub fn add(&mut self, key: &str, cycles: u64) {
        match key {
            "dependence" => self.dependence += cycles,
            "resource" => self.resource += cycles,
            "class" => self.class += cycles,
            "temporal" => self.temporal += cycles,
            "pressure" => self.pressure += cycles,
            "order" => self.order += cycles,
            _ => self.other += cycles,
        }
    }

    /// Accumulates another breakdown, scaled by `weight` (block
    /// execution count).
    pub fn add_weighted(&mut self, other: &StallBreakdown, weight: u64) {
        self.dependence += other.dependence * weight;
        self.resource += other.resource * weight;
        self.class += other.class * weight;
        self.temporal += other.temporal * weight;
        self.pressure += other.pressure * weight;
        self.order += other.order * weight;
        self.other += other.other * weight;
    }

    /// `(key, cycles)` pairs in [`STALL_KEYS`] order.
    pub fn as_pairs(&self) -> [(&'static str, u64); 7] {
        [
            ("dependence", self.dependence),
            ("resource", self.resource),
            ("class", self.class),
            ("temporal", self.temporal),
            ("pressure", self.pressure),
            ("order", self.order),
            ("other", self.other),
        ]
    }

    /// Total stalled cycles of every kind.
    pub fn total(&self) -> u64 {
        self.as_pairs().iter().map(|(_, c)| c).sum()
    }
}

/// Static per-block schedule quality, recorded once at compile time
/// and carried in [`crate::driver::FuncStats`] (index-aligned with the
/// function's emitted blocks). All counts are for *one* execution of
/// the block; consumers weight them by block execution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockQuality {
    /// The scheduler's cycle estimate (== the emitted block's
    /// `est_cycles`).
    pub est_cycles: u32,
    /// The DAG critical-path lower bound in cycles
    /// ([`crate::explain::critical_path_cycles`]); never above
    /// `est_cycles`.
    pub critical_path_cycles: u32,
    /// Sub-operations issued.
    pub issue_slots_used: u32,
    /// Cycles that issued at least one sub-operation.
    pub issue_cycles: u32,
    /// Stalled cycles by reason, from the placement provenance.
    pub stalls: StallBreakdown,
}

impl BlockQuality {
    /// Extracts one block's quality from its final schedule.
    pub fn from_schedule(schedule: &Schedule) -> BlockQuality {
        let mut stalls = StallBreakdown::default();
        for (key, cycles) in schedule.explanation.stall_histogram() {
            stalls.add(key, cycles);
        }
        BlockQuality {
            est_cycles: schedule.length,
            critical_path_cycles: schedule.explanation.critical_path_cycles,
            issue_slots_used: schedule.metrics.issue_slots_used as u32,
            issue_cycles: schedule.metrics.issue_cycles as u32,
            stalls,
        }
    }
}

/// Schedule-quality telemetry for one compiled function. Produced by
/// [`records_for_program`]: static per-block data weighted by the
/// block execution counts of one simulator run, so the numbers answer
/// "where did this function's cycles go" for that run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QualityRecord {
    /// Function name.
    pub func: String,
    /// Scheduler-estimated cycles (Σ block estimate × executions).
    pub est_cycles: u64,
    /// DAG critical-path lower bound over the same profile; invariant
    /// `critical_path_cycles ≤ est_cycles`.
    pub critical_path_cycles: u64,
    /// Stalled cycles by reason over the same profile.
    pub stalls: StallBreakdown,
    /// Sub-operations issued over the profile (utilization numerator).
    pub issue_slots_used: u64,
    /// Cycles that issued at least one sub-operation (denominator).
    pub issue_cycles: u64,
    /// Spill stores inserted by the allocator (static count).
    pub spills: u64,
    /// `nop` instructions in the emitted code (static count).
    pub nops_emitted: u64,
    /// Delay slots the filler replaced with useful work (static).
    pub delay_slots_filled: u64,
}

impl QualityRecord {
    /// Sub-operations per issuing cycle (1.0 on single-issue machines,
    /// above it when long words pack).
    pub fn issue_utilization(&self) -> f64 {
        self.issue_slots_used as f64 / self.issue_cycles.max(1) as f64
    }

    /// Fraction of delay slots the filler closed with useful work;
    /// the remainder retired as `nop`s. 1.0 when the function had no
    /// delay slots at all.
    pub fn delay_slot_fill_rate(&self) -> f64 {
        let total = self.delay_slots_filled + self.nops_emitted;
        if total == 0 {
            1.0
        } else {
            self.delay_slots_filled as f64 / total as f64
        }
    }

    /// Folds another record into this one (aggregation across
    /// functions).
    pub fn accumulate(&mut self, other: &QualityRecord) {
        self.est_cycles += other.est_cycles;
        self.critical_path_cycles += other.critical_path_cycles;
        self.stalls.add_weighted(&other.stalls, 1);
        self.issue_slots_used += other.issue_slots_used;
        self.issue_cycles += other.issue_cycles;
        self.spills += other.spills;
        self.nops_emitted += other.nops_emitted;
        self.delay_slots_filled += other.delay_slots_filled;
    }

    /// Checks the record's internal invariant.
    ///
    /// # Errors
    ///
    /// Describes the violated inequality.
    pub fn validate(&self) -> Result<(), String> {
        if self.critical_path_cycles > self.est_cycles {
            return Err(format!(
                "{}: critical path {} exceeds estimated cycles {}",
                self.func, self.critical_path_cycles, self.est_cycles
            ));
        }
        Ok(())
    }
}

/// Per-function quality records for one compiled program, weighted by
/// the block execution counts of one run (`counts` maps
/// `(func_index, block_index)` to executions, as produced by the
/// simulator). Blocks the run never reached weigh zero.
pub fn records_for_program(
    program: &CompiledProgram,
    counts: &HashMap<(usize, usize), u64>,
) -> Vec<QualityRecord> {
    program
        .asm
        .funcs
        .iter()
        .zip(&program.stats.per_func)
        .enumerate()
        .map(|(fi, (asm, fs))| {
            let mut r = QualityRecord {
                func: asm.name.clone(),
                spills: fs.spills as u64,
                nops_emitted: fs.nops_emitted as u64,
                delay_slots_filled: fs.delay_slots_filled as u64,
                ..QualityRecord::default()
            };
            for (bi, bq) in fs.blocks.iter().enumerate() {
                let weight = counts.get(&(fi, bi)).copied().unwrap_or(0);
                r.est_cycles += bq.est_cycles as u64 * weight;
                r.critical_path_cycles += bq.critical_path_cycles as u64 * weight;
                r.issue_slots_used += bq.issue_slots_used as u64 * weight;
                r.issue_cycles += bq.issue_cycles as u64 * weight;
                r.stalls.add_weighted(&bq.stalls, weight);
            }
            r
        })
        .collect()
}

/// One program's quality story: the per-function records for a run's
/// execution profile plus the simulator's measured cycles for that
/// same run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramQuality {
    /// Machine name.
    pub machine: String,
    /// Strategy name (`postpass` / `ips` / `rase`).
    pub strategy: String,
    /// Workload name.
    pub workload: String,
    /// Simulator-measured cycles for the run.
    pub sim_cycles: u64,
    /// `nop`s the simulator retired during the run.
    pub nops_retired: u64,
    /// Per-function records, in program order.
    pub funcs: Vec<QualityRecord>,
}

impl ProgramQuality {
    /// Assembles the full record for one (program, run) pair.
    /// `sim_cycles`/`nops_retired`/`counts` come from the simulator's
    /// `RunResult` (the sim crate sits above this one, so the fields
    /// arrive as plain values).
    pub fn assemble(
        program: &CompiledProgram,
        workload: &str,
        sim_cycles: u64,
        nops_retired: u64,
        counts: &HashMap<(usize, usize), u64>,
    ) -> ProgramQuality {
        ProgramQuality {
            machine: program.machine_name.clone(),
            strategy: program.strategy.name().to_string(),
            workload: workload.to_string(),
            sim_cycles,
            nops_retired,
            funcs: records_for_program(program, counts),
        }
    }

    /// The aggregate record over every function (`func` = `"*"`).
    pub fn total(&self) -> QualityRecord {
        let mut t = QualityRecord {
            func: "*".to_string(),
            ..QualityRecord::default()
        };
        for f in &self.funcs {
            t.accumulate(f);
        }
        t
    }

    /// Signed estimate drift: `(sim − est) / est × 100`. Positive
    /// means the schedule estimate was optimistic (caches, call
    /// overhead and inter-block effects the per-block estimate cannot
    /// see); negative means pessimistic (overlap across block
    /// boundaries the simulator exploits).
    pub fn drift_pct(&self) -> f64 {
        let est = self.total().est_cycles;
        if est == 0 {
            return 0.0;
        }
        (self.sim_cycles as f64 - est as f64) / est as f64 * 100.0
    }

    /// Checks every per-function invariant plus the aggregate.
    ///
    /// # Errors
    ///
    /// Describes the first violated inequality.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = format!("{}/{}/{}", self.machine, self.strategy, self.workload);
        for f in &self.funcs {
            f.validate().map_err(|e| format!("{ctx}: {e}"))?;
        }
        self.total().validate().map_err(|e| format!("{ctx}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_buckets_and_totals() {
        let mut s = StallBreakdown::default();
        s.add("dependence", 3);
        s.add("resource", 2);
        s.add("mystery", 1);
        assert_eq!(s.dependence, 3);
        assert_eq!(s.other, 1);
        assert_eq!(s.total(), 6);
        let mut t = StallBreakdown::default();
        t.add_weighted(&s, 10);
        assert_eq!(t.total(), 60);
        assert_eq!(t.resource, 20);
    }

    #[test]
    fn record_invariant_and_rates() {
        let mut r = QualityRecord {
            func: "f".into(),
            est_cycles: 10,
            critical_path_cycles: 7,
            issue_slots_used: 12,
            issue_cycles: 8,
            delay_slots_filled: 3,
            nops_emitted: 1,
            ..QualityRecord::default()
        };
        assert!(r.validate().is_ok());
        assert!((r.issue_utilization() - 1.5).abs() < 1e-12);
        assert!((r.delay_slot_fill_rate() - 0.75).abs() < 1e-12);
        r.critical_path_cycles = 11;
        assert!(r.validate().is_err());
    }

    #[test]
    fn empty_record_rates_are_defined() {
        let r = QualityRecord::default();
        assert!((r.issue_utilization() - 0.0).abs() < 1e-12);
        assert!((r.delay_slot_fill_rate() - 1.0).abs() < 1e-12);
    }
}
