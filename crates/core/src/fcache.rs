//! The function-level compile cache: key derivation and entry codec
//! over `marion-cache`'s storage layer.
//!
//! ## What the key covers
//!
//! A [`CacheKey`] is a stable 128-bit structural hash over everything
//! that can change a function's compiled output:
//!
//! * the complete compiled [`Machine`] description (every template,
//!   resource vector, latency, glue rule and CWVM entry — hashed
//!   directly via [`crate::stablehash::StableHash`], a length-prefixed
//!   field-order-stable structural encoding that is a pure function of
//!   the parsed description and allocates nothing on the probe path);
//! * the [`StrategyKind`];
//! * the cache-relevant [`CompileOptions`] fields:
//!   `fill_delay_slots` and the trace configuration (a traced compile
//!   stores its replayable trace in the entry, so entries recorded
//!   without tracing must never serve a traced compile);
//! * the IR function body *after*
//!   [`crate::driver::materialize_float_constants`], plus the module's
//!   symbol table (cached assembly embeds `SymbolId`s, which are only
//!   meaningful against the same table).
//!
//! Deliberately **excluded**: `jobs` (module-order collection makes
//! output identical at any worker count), `indexed_select` and
//! `memo_select` (both crosschecked output-identical), and the cache
//! handle itself. Invalidation is therefore automatic: change the
//! machine description, strategy, relevant options or the function
//! body and the key changes; stale entries age out of the LRU.
//!
//! ## What an entry holds
//!
//! The emitted [`AsmFunc`], its [`FuncStats`], and (when compiled
//! under tracing) the function's counters and events — spans are
//! stripped, their timings belong to the run that recorded them. On a
//! hit the driver replays the trace via `Tracer::import`, so warm
//! trace counters equal cold ones.

use crate::driver::{CompileOptions, FuncStats};
use crate::emit::{AsmBlock, AsmFunc, AsmInst, Word};
use crate::stablehash::StableHash;
use crate::strategy::StrategyKind;
use marion_cache::{CacheKey, DiskStore, ShardedCache, StableHasher};
use marion_ir as ir;
use marion_maril::Machine;
use marion_trace::{Record, TraceData};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Entry format version, bumped whenever the payload codec changes so
/// stale disk stores read as corrupt instead of mis-decoding. Public
/// so the serve protocol's `machines` introspection can report it.
pub const FORMAT_VERSION: i64 = 2;

/// One cached compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedFunc {
    /// The emitted assembly.
    pub asm: AsmFunc,
    /// Its per-function statistics.
    pub stats: FuncStats,
    /// Counters and events recorded while compiling it (no spans);
    /// `None` when the cold compile ran untraced.
    pub trace: Option<TraceData>,
}

/// Per-`compile_module` cache accounting, surfaced as
/// [`crate::CompiledProgram::cache`]. Kept out of `CompileStats` so
/// warm and cold statistics stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Functions served from the cache.
    pub hits: u64,
    /// Functions compiled cold (and inserted).
    pub misses: u64,
    /// Entries evicted to make room during this compile.
    pub evictions: u64,
}

/// Shared tally the driver threads update while compiling one module.
#[derive(Default)]
pub(crate) struct CacheTally {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheTally {
    pub(crate) fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn evict(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn summary(&self) -> CacheSummary {
        CacheSummary {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// What loading a disk store found.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheLoad {
    /// Entries restored into the in-memory cache.
    pub loaded: usize,
    /// Lines rejected (bad JSON, bad checksum, or undecodable
    /// payload) — these will be recompiled, never served.
    pub corrupt: usize,
}

/// The content-addressed compile cache shared by one or more
/// [`crate::Compiler`]s (the key embeds machine and strategy, so a
/// single cache safely serves many compilers). In-memory sharded LRU,
/// optionally written through to an append-only checksummed JSONL
/// store.
pub struct FuncCache {
    mem: ShardedCache<CachedFunc>,
    disk: Option<DiskStore>,
    /// What opening the disk store found; `None` for in-memory caches.
    disk_load: Option<CacheLoad>,
}

impl std::fmt::Debug for FuncCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuncCache")
            .field("entries", &self.mem.len())
            .field("stats", &self.mem.stats())
            .field("disk", &self.disk.as_ref().map(|d| d.path().to_path_buf()))
            .finish()
    }
}

impl FuncCache {
    /// An in-memory cache holding at most `capacity` functions.
    pub fn in_memory(capacity: usize) -> FuncCache {
        FuncCache {
            mem: ShardedCache::new(capacity),
            disk: None,
            disk_load: None,
        }
    }

    /// A write-through cache backed by the JSONL store at `path`;
    /// existing verified entries are loaded into memory (later
    /// duplicates win), corrupt ones counted and skipped.
    ///
    /// # Errors
    ///
    /// I/O failures opening or reading the store file.
    pub fn with_disk(
        capacity: usize,
        path: impl AsRef<Path>,
    ) -> io::Result<(FuncCache, CacheLoad)> {
        let (disk, found) = DiskStore::open(path)?;
        let mem = ShardedCache::new(capacity);
        let mut load = CacheLoad {
            loaded: 0,
            corrupt: found.corrupt,
        };
        for (key, payload) in &found.entries {
            match decode_entry(payload) {
                Some(entry) => {
                    mem.insert(*key, entry);
                    load.loaded += 1;
                }
                None => load.corrupt += 1,
            }
        }
        Ok((
            FuncCache {
                mem,
                disk: Some(disk),
                disk_load: Some(load),
            },
            load,
        ))
    }

    /// What opening the disk store found (loaded and corrupt line
    /// counts); `None` when the cache is purely in-memory. Operators
    /// watch the corrupt count to spot store rot without a restart.
    pub fn disk_load(&self) -> Option<CacheLoad> {
        self.disk_load
    }

    /// Looks up a compiled function.
    pub fn get(&self, key: CacheKey) -> Option<CachedFunc> {
        self.mem.get(key)
    }

    /// Stores a compiled function (write-through when disk-backed);
    /// returns how many entries were evicted.
    pub fn insert(&self, key: CacheKey, entry: CachedFunc) -> usize {
        if let Some(disk) = &self.disk {
            // A failed append degrades to in-memory caching; the disk
            // store is an optimisation, not a correctness dependency.
            let _ = disk.append(key, &encode_entry(&entry));
        }
        self.mem.insert(key, entry)
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> marion_cache::CacheStats {
        self.mem.stats()
    }

    /// Functions currently resident in memory.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }
}

/// Hashes everything request-invariant: the machine description, the
/// strategy, and the cache-relevant options. Computed once per
/// `compile_module`; per-function keys clone and extend it.
pub fn base_fingerprint(
    machine: &Machine,
    strategy: StrategyKind,
    options: &CompileOptions,
) -> StableHasher {
    let mut h = StableHasher::new();
    h.write_i64(FORMAT_VERSION);
    // `Machine` is a pure value compiled from the description source;
    // its `StableHash` impl feeds every codegen-relevant table
    // (templates, semantics, resources, latencies, glue, CWVM)
    // straight into the hasher — no string render, no allocation.
    machine.stable_hash(&mut h);
    h.write_str(strategy.name());
    h.write_u64(options.fill_delay_slots as u64);
    match &options.trace {
        None => h.write_u64(0),
        Some(config) => {
            h.write_u64(1);
            h.write_u64(config.reservation_tables as u64);
            h.write_u64(config.explanations as u64);
        }
    }
    h
}

/// Extends a [`base_fingerprint`] with one function's body and the
/// module's symbol table, yielding the entry's address.
pub fn func_key(base: &StableHasher, module: &ir::Module, func: &ir::Function) -> CacheKey {
    let mut h = base.clone();
    // The function body: blocks, statements, node forest, types,
    // locals — `Function`'s `StableHash` impl covers all of it
    // structurally (and float constants were already materialised
    // into globals, so `ConstF` hashes by IEEE bit pattern anyway).
    func.stable_hash(&mut h);
    // Symbol ids embedded in the body and in the cached assembly are
    // indices into this table; the mapping is part of the content.
    h.write_u64(module.symbol_count() as u64);
    for i in 0..module.symbol_count() {
        h.write_str(module.symbol_name(ir::SymbolId(i as u32)));
    }
    h.finish()
}

/// Drops spans and profile rows from a recorded trace: their
/// wall-clock timings belong to the run that recorded them and must
/// not replay into later compiles.
pub(crate) fn strip_spans(data: &TraceData) -> TraceData {
    TraceData {
        records: data
            .records
            .iter()
            .filter(|r| !matches!(r, Record::Span { .. } | Record::Prof { .. }))
            .cloned()
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Entry codec: one flat JSON object (the workspace dialect — scalar
// values only) with the assembly in a compact positional text form.
// ---------------------------------------------------------------------

fn encode_operand(out: &mut String, op: &crate::code::Operand) {
    use crate::code::{ImmVal, Operand};
    use std::fmt::Write as _;
    match op {
        Operand::Phys(p) => {
            let _ = write!(out, "P{}.{}", p.class.0, p.index);
        }
        Operand::Imm(ImmVal::Const(v)) => {
            let _ = write!(out, "C{v}");
        }
        Operand::Imm(ImmVal::Sym(s, a)) => {
            let _ = write!(out, "S{}.{a}", s.0);
        }
        Operand::Imm(ImmVal::SymHigh(s, a)) => {
            let _ = write!(out, "H{}.{a}", s.0);
        }
        Operand::Imm(ImmVal::SymLow(s, a)) => {
            let _ = write!(out, "L{}.{a}", s.0);
        }
        Operand::Block(b) => {
            let _ = write!(out, "B{}", b.0);
        }
        Operand::Func(s) => {
            let _ = write!(out, "F{}", s.0);
        }
        Operand::Vreg(v) => {
            let _ = write!(out, "V{}", v.0);
        }
        Operand::VregHalf(v, h) => {
            let _ = write!(out, "U{}.{h}", v.0);
        }
    }
}

fn decode_operand(text: &str) -> Option<crate::code::Operand> {
    use crate::code::{ImmVal, Operand, Vreg};
    use marion_ir::{BlockId, SymbolId};
    use marion_maril::{PhysReg, RegClassId};
    let (tag, rest) = text.split_at(1);
    let pair = |rest: &str| -> Option<(u32, i64)> {
        let (a, b) = rest.split_once('.')?;
        Some((a.parse().ok()?, b.parse().ok()?))
    };
    Some(match tag {
        "P" => {
            let (class, index) = pair(rest)?;
            Operand::Phys(PhysReg {
                class: RegClassId(class),
                index: u32::try_from(index).ok()?,
            })
        }
        "C" => Operand::Imm(ImmVal::Const(rest.parse().ok()?)),
        "S" => {
            let (s, a) = pair(rest)?;
            Operand::Imm(ImmVal::Sym(SymbolId(s), a))
        }
        "H" => {
            let (s, a) = pair(rest)?;
            Operand::Imm(ImmVal::SymHigh(SymbolId(s), a))
        }
        "L" => {
            let (s, a) = pair(rest)?;
            Operand::Imm(ImmVal::SymLow(SymbolId(s), a))
        }
        "B" => Operand::Block(BlockId(rest.parse().ok()?)),
        "F" => Operand::Func(SymbolId(rest.parse().ok()?)),
        "V" => Operand::Vreg(Vreg(rest.parse().ok()?)),
        "U" => {
            let (v, h) = pair(rest)?;
            Operand::VregHalf(Vreg(v), u8::try_from(h).ok()?)
        }
        _ => return None,
    })
}

/// Compact positional text for a function's blocks: blocks joined by
/// `|`, each `est_cycles@words`; words joined by `;`, sub-operations
/// by `+`; each instruction `template:op,op,...`.
fn encode_blocks(blocks: &[AsmBlock]) -> String {
    let mut out = String::new();
    for (bi, block) in blocks.iter().enumerate() {
        if bi > 0 {
            out.push('|');
        }
        out.push_str(&block.est_cycles.to_string());
        out.push('@');
        for (wi, word) in block.words.iter().enumerate() {
            if wi > 0 {
                out.push(';');
            }
            for (ii, inst) in word.insts.iter().enumerate() {
                if ii > 0 {
                    out.push('+');
                }
                out.push_str(&inst.template.0.to_string());
                out.push(':');
                for (oi, op) in inst.ops.iter().enumerate() {
                    if oi > 0 {
                        out.push(',');
                    }
                    encode_operand(&mut out, op);
                }
            }
        }
    }
    out
}

fn decode_blocks(text: &str) -> Option<Vec<AsmBlock>> {
    use marion_maril::TemplateId;
    if text.is_empty() {
        return Some(Vec::new());
    }
    let mut blocks = Vec::new();
    for btext in text.split('|') {
        let (est, words_text) = btext.split_once('@')?;
        let mut block = AsmBlock {
            words: Vec::new(),
            est_cycles: est.parse().ok()?,
        };
        if !words_text.is_empty() {
            for wtext in words_text.split(';') {
                let mut word = Word::default();
                if !wtext.is_empty() {
                    for itext in wtext.split('+') {
                        let (template, ops_text) = itext.split_once(':')?;
                        let mut inst = AsmInst {
                            template: TemplateId(template.parse().ok()?),
                            ops: Vec::new(),
                        };
                        if !ops_text.is_empty() {
                            for otext in ops_text.split(',') {
                                inst.ops.push(decode_operand(otext)?);
                            }
                        }
                        word.insts.push(inst);
                    }
                }
                block.words.push(word);
            }
        }
        blocks.push(block);
    }
    Some(blocks)
}

/// Compact positional text for per-block schedule quality: blocks
/// joined by `|`, each block the eleven counters of
/// [`crate::quality::BlockQuality`] joined by `,` (estimate, critical
/// path, issue slots, issue cycles, then the seven stall buckets in
/// [`crate::quality::STALL_KEYS`] order).
fn encode_quality(blocks: &[crate::quality::BlockQuality]) -> String {
    blocks
        .iter()
        .map(|b| {
            let s = &b.stalls;
            format!(
                "{},{},{},{},{},{},{},{},{},{},{}",
                b.est_cycles,
                b.critical_path_cycles,
                b.issue_slots_used,
                b.issue_cycles,
                s.dependence,
                s.resource,
                s.class,
                s.temporal,
                s.pressure,
                s.order,
                s.other
            )
        })
        .collect::<Vec<_>>()
        .join("|")
}

fn decode_quality(text: &str) -> Option<Vec<crate::quality::BlockQuality>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for btext in text.split('|') {
        let mut it = btext.split(',');
        let mut next_u32 = || -> Option<u32> { it.next()?.parse().ok() };
        let mut b = crate::quality::BlockQuality {
            est_cycles: next_u32()?,
            critical_path_cycles: next_u32()?,
            issue_slots_used: next_u32()?,
            issue_cycles: next_u32()?,
            ..Default::default()
        };
        let mut next_u64 = || -> Option<u64> { it.next()?.parse().ok() };
        b.stalls.dependence = next_u64()?;
        b.stalls.resource = next_u64()?;
        b.stalls.class = next_u64()?;
        b.stalls.temporal = next_u64()?;
        b.stalls.pressure = next_u64()?;
        b.stalls.order = next_u64()?;
        b.stalls.other = next_u64()?;
        if it.next().is_some() {
            return None;
        }
        out.push(b);
    }
    Some(out)
}

/// Serialises an entry as one flat JSON line (the disk payload).
pub fn encode_entry(entry: &CachedFunc) -> String {
    let mut obj = marion_trace::json::ObjWriter::new();
    obj.int("v", FORMAT_VERSION);
    obj.str("name", &entry.asm.name);
    obj.int("frame_size", entry.asm.frame_size as i64);
    obj.str("blocks", &encode_blocks(&entry.asm.blocks));
    obj.int("insts_generated", entry.stats.insts_generated as i64);
    obj.int("spills", entry.stats.spills as i64);
    obj.int("schedule_passes", entry.stats.schedule_passes as i64);
    obj.int("estimated_cycles", entry.stats.estimated_cycles as i64);
    obj.int("delay_slots_filled", entry.stats.delay_slots_filled as i64);
    obj.int("nops_emitted", entry.stats.nops_emitted as i64);
    obj.str("quality", &encode_quality(&entry.stats.blocks));
    if let Some(trace) = &entry.trace {
        obj.str("trace", &trace.to_jsonl());
    }
    obj.finish()
}

/// Parses [`encode_entry`]'s form. `None` on any malformation — the
/// caller treats the entry as corrupt and recompiles.
pub fn decode_entry(payload: &str) -> Option<CachedFunc> {
    let fields = marion_trace::json::parse_flat(payload).ok()?;
    let get_int = |name: &str| -> Option<i64> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_int())
    };
    let get_str = |name: &str| -> Option<&str> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
    };
    if get_int("v")? != FORMAT_VERSION {
        return None;
    }
    let name = get_str("name")?.to_string();
    let usize_of = |v: i64| usize::try_from(v).ok();
    let stats = FuncStats {
        name: name.clone(),
        insts_generated: usize_of(get_int("insts_generated")?)?,
        spills: usize_of(get_int("spills")?)?,
        schedule_passes: usize_of(get_int("schedule_passes")?)?,
        estimated_cycles: u64::try_from(get_int("estimated_cycles")?).ok()?,
        delay_slots_filled: usize_of(get_int("delay_slots_filled")?)?,
        nops_emitted: usize_of(get_int("nops_emitted")?)?,
        blocks: decode_quality(get_str("quality")?)?,
    };
    let asm = AsmFunc {
        name,
        blocks: decode_blocks(get_str("blocks")?)?,
        frame_size: u32::try_from(get_int("frame_size")?).ok()?,
    };
    let trace = match get_str("trace") {
        Some(text) => Some(TraceData::parse_jsonl(text).ok()?),
        None => None,
    };
    Some(CachedFunc { asm, stats, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{ImmVal, Operand, Vreg};
    use marion_ir::{BlockId, SymbolId};
    use marion_maril::{PhysReg, RegClassId, TemplateId};

    fn sample_entry() -> CachedFunc {
        let inst = |t: u32, ops: Vec<Operand>| AsmInst {
            template: TemplateId(t),
            ops,
        };
        let phys = |c: u32, i: u32| {
            Operand::Phys(PhysReg {
                class: RegClassId(c),
                index: i,
            })
        };
        let asm = AsmFunc {
            name: "llk_main".into(),
            frame_size: 48,
            blocks: vec![
                AsmBlock {
                    est_cycles: 7,
                    words: vec![
                        Word {
                            insts: vec![inst(3, vec![phys(0, 2), Operand::Imm(ImmVal::Const(-8))])],
                        },
                        Word {
                            insts: vec![
                                inst(
                                    9,
                                    vec![phys(1, 0), Operand::Imm(ImmVal::Sym(SymbolId(4), 12))],
                                ),
                                inst(2, vec![Operand::Block(BlockId(3))]),
                            ],
                        },
                    ],
                },
                AsmBlock {
                    est_cycles: 1,
                    words: vec![Word {
                        insts: vec![inst(
                            11,
                            vec![
                                Operand::Func(SymbolId(2)),
                                Operand::Imm(ImmVal::SymHigh(SymbolId(1), -4)),
                                Operand::Imm(ImmVal::SymLow(SymbolId(1), -4)),
                                Operand::Vreg(Vreg(17)),
                                Operand::VregHalf(Vreg(5), 1),
                            ],
                        )],
                    }],
                },
            ],
        };
        let stats = FuncStats {
            name: "llk_main".into(),
            insts_generated: 4,
            spills: 1,
            schedule_passes: 2,
            estimated_cycles: 8,
            delay_slots_filled: 1,
            nops_emitted: 0,
            blocks: vec![
                crate::quality::BlockQuality {
                    est_cycles: 7,
                    critical_path_cycles: 5,
                    issue_slots_used: 3,
                    issue_cycles: 2,
                    stalls: {
                        let mut s = crate::quality::StallBreakdown::default();
                        s.add("dependence", 2);
                        s.add("resource", 1);
                        s
                    },
                },
                crate::quality::BlockQuality {
                    est_cycles: 1,
                    critical_path_cycles: 1,
                    issue_slots_used: 1,
                    issue_cycles: 1,
                    stalls: crate::quality::StallBreakdown::default(),
                },
            ],
        };
        let trace = {
            let t = marion_trace::Tracer::new(marion_trace::TraceConfig::default());
            t.add("m/llk_main", "insts_generated", 4);
            t.event(
                "m/llk_main/b0",
                "delay_slot_fill",
                &[("inst", marion_trace::Value::from("add r1, r2"))],
            );
            t.finish()
        };
        CachedFunc { asm, stats, trace }
    }

    #[test]
    fn entry_codec_round_trips() {
        let entry = sample_entry();
        let decoded = decode_entry(&encode_entry(&entry)).expect("decodes");
        assert_eq!(decoded, entry);
        // Untraced entries round-trip too.
        let untraced = CachedFunc {
            trace: None,
            ..entry
        };
        assert_eq!(
            decode_entry(&encode_entry(&untraced)).expect("decodes"),
            untraced
        );
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = encode_entry(&sample_entry());
        assert!(decode_entry("").is_none());
        assert!(decode_entry("{}").is_none());
        assert!(decode_entry(&good.replace("\"v\":2", "\"v\":999")).is_none());
        // A mangled quality payload reads as corrupt, not as zeros.
        assert!(
            decode_entry(&good.replacen("\"quality\":\"7,5", "\"quality\":\"x,5", 1)).is_none()
        );
        assert!(decode_entry(&good.replacen("P0.2", "Q0.2", 1)).is_none());
        assert!(
            decode_entry(&good.replacen("\"frame_size\":48", "\"frame_size\":-1", 1)).is_none()
        );
    }

    #[test]
    fn empty_function_encodes() {
        let entry = CachedFunc {
            asm: AsmFunc {
                name: "f".into(),
                blocks: Vec::new(),
                frame_size: 0,
            },
            stats: FuncStats {
                name: "f".into(),
                ..FuncStats::default()
            },
            trace: None,
        };
        assert_eq!(decode_entry(&encode_entry(&entry)).unwrap(), entry);
    }
}
