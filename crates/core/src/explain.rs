//! Schedule provenance: *why* each instruction issued when it did.
//!
//! The list scheduler (paper §4.2–§4.6) records, for every placed
//! instruction, a [`PlacementRecord`]: the cycle it became ready, the
//! cycle its dependence latencies were satisfied, the cycle it
//! actually issued, and a typed [`StallReason`] for every cycle in
//! between — a data/anti/output edge naming the producing DAG node, a
//! resource-vector conflict naming the contended resource (§4.3), an
//! instruction-word packing rejection (§4.5), Rule-1 / temporal
//! sequence protection (§4.6), the IPS register-pressure cap, or the
//! serial fallback's thread-order discipline. The invariant every
//! record obeys (and [`audit_schedule`] enforces):
//!
//! ```text
//! issue_cycle − ready_cycle == Σ stall.cycles
//! ```
//!
//! [`audit_schedule`] is an *independent* cross-check: it re-derives
//! schedule legality from the machine description alone (a different
//! implementation from `sched::verify_schedule`, replaying the
//! reservation timeline cycle by cycle) and then validates every
//! recorded stall against the final schedule — provenance that lies
//! is worse than none. [`dag_to_dot`] renders the annotated code DAG
//! (scheduled cycles, edge kinds, the critical path, stall tooltips)
//! and [`explain_block_text`] produces the cycle-by-cycle narrative
//! used by the `marion-explain` tool.

use crate::code::CodeBlock;
use crate::dag::{CodeDag, EdgeKind};
use crate::sched::Schedule;
use marion_maril::machine::ClockId;
use marion_maril::{Machine, ResSet};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Why one instruction could not issue in one particular cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Waiting out the latency of a dependence edge: the producing DAG
    /// node, the edge kind and its label.
    Dependence {
        pred: usize,
        kind: EdgeKind,
        latency: u32,
    },
    /// The composite resource vector already claims `resource` in a
    /// cycle this instruction needs it (§4.3).
    Resource { resource: u32 },
    /// The packing classes of the sub-operations already issued this
    /// cycle leave no long-word slot for this one (§4.5).
    ClassPacking,
    /// Rule 1: this instruction affects `clock`, and the temporal edge
    /// `pending_src -> pending_dst` on that clock is open (§4.6).
    Temporal {
        clock: ClockId,
        pending_src: usize,
        pending_dst: usize,
    },
    /// The IPS limit on simultaneously live local registers.
    RegPressure,
    /// The serial fallback discipline issues at most one instruction
    /// per cycle, in thread order.
    ThreadOrder,
    /// None of the above — recorded defensively; the audit flags any
    /// occurrence as suspect provenance when it can.
    Other,
}

impl StallReason {
    /// Stable short key for histograms, counters and JSONL fields.
    pub fn key(&self) -> &'static str {
        match self {
            StallReason::Dependence { .. } => "dependence",
            StallReason::Resource { .. } => "resource",
            StallReason::ClassPacking => "class",
            StallReason::Temporal { .. } => "temporal",
            StallReason::RegPressure => "pressure",
            StallReason::ThreadOrder => "order",
            StallReason::Other => "other",
        }
    }

    /// Human-readable description, resolving ids against the machine.
    pub fn describe(&self, machine: &Machine, block: &CodeBlock) -> String {
        let mnem = |i: usize| {
            block
                .insts
                .get(i)
                .map(|inst| machine.template(inst.template).mnemonic.as_str())
                .unwrap_or("?")
        };
        match self {
            StallReason::Dependence {
                pred,
                kind,
                latency,
            } => format!(
                "waits on [{pred}] {} ({} edge, latency {latency})",
                mnem(*pred),
                edge_kind_name(*kind)
            ),
            StallReason::Resource { resource } => {
                let name = machine
                    .resources()
                    .get(*resource as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("resource {name} busy")
            }
            StallReason::ClassPacking => "word packing classes exclude it".to_string(),
            StallReason::Temporal {
                clock,
                pending_src,
                pending_dst,
            } => {
                let name = machine
                    .clocks()
                    .get(clock.0 as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!(
                    "Rule 1 on clock {name}: temporal edge [{pending_src}] {} -> [{pending_dst}] {} open",
                    mnem(*pending_src),
                    mnem(*pending_dst)
                )
            }
            StallReason::RegPressure => "local register pressure at the IPS limit".to_string(),
            StallReason::ThreadOrder => "serial discipline: thread order".to_string(),
            StallReason::Other => "unattributed".to_string(),
        }
    }
}

/// Display name of an edge kind (matches the paper's type-1/2/3
/// vocabulary).
pub fn edge_kind_name(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::True => "true",
        EdgeKind::TrueTemporal(_) => "temporal",
        EdgeKind::Anti => "anti",
        EdgeKind::Output => "output",
        EdgeKind::Mem => "mem",
        EdgeKind::Order => "order",
    }
}

/// A run of consecutive cycles stalled for one reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// First stalled cycle.
    pub at: u32,
    /// Number of consecutive cycles.
    pub cycles: u32,
    /// Why.
    pub reason: StallReason,
}

/// The provenance of one placed instruction.
#[derive(Debug, Clone, Default)]
pub struct PlacementRecord {
    /// Instruction index in the block (== DAG node).
    pub inst: usize,
    /// Cycle the last DAG predecessor issued (0 for roots): the
    /// instruction has entered the scheduler's view.
    pub ready_cycle: u32,
    /// Cycle every dependence latency is satisfied (≥ `ready_cycle`).
    pub earliest_cycle: u32,
    /// Cycle the instruction actually issued (≥ `earliest_cycle`).
    pub issue_cycle: u32,
    /// One entry per stalled cycle in `[ready_cycle, issue_cycle)`,
    /// coalesced over consecutive cycles with an identical reason.
    /// The tiles partition the interval exactly, so
    /// `Σ cycles == issue_cycle − ready_cycle`.
    pub stalls: Vec<Stall>,
}

impl PlacementRecord {
    /// Total stalled cycles (must equal `issue_cycle - ready_cycle`).
    pub fn stall_cycles(&self) -> u32 {
        self.stalls.iter().map(|s| s.cycles).sum()
    }
}

/// Everything the scheduler can explain about one block's schedule.
#[derive(Debug, Clone, Default)]
pub struct ScheduleExplanation {
    /// One record per instruction, indexed by instruction.
    pub records: Vec<PlacementRecord>,
    /// Per-node slack against the DAG critical path: 0 = on it.
    pub slack: Vec<u32>,
    /// One maximal zero-slack chain through the DAG, in issue order.
    pub critical_path: Vec<usize>,
    /// The DAG critical path in cycles — the dependence-only lower
    /// bound on any legal schedule's length for this block (see
    /// [`critical_path_cycles`]). Zero for empty blocks.
    pub critical_path_cycles: u32,
    /// Scheduling discipline that produced the schedule (`"rule1"`,
    /// `"serialized"`, `"name-deps"` or `"serial"`; see
    /// `sched::schedule_block_robust`).
    pub discipline: &'static str,
}

impl ScheduleExplanation {
    /// Total stalled cycles per [`StallReason::key`], over the block.
    pub fn stall_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut h = BTreeMap::new();
        for r in &self.records {
            for s in &r.stalls {
                *h.entry(s.reason.key()).or_insert(0u64) += s.cycles as u64;
            }
        }
        h
    }

    /// Total stalled cycles of every kind.
    pub fn total_stall_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.stall_cycles() as u64).sum()
    }
}

/// Builds per-instruction records from the final cycle assignment plus
/// the per-cycle hazard reasons logged during scheduling. Dependence
/// waits are derived here, post hoc: the binding edge is the
/// predecessor whose `issue + latency` determines `earliest_cycle`.
pub(crate) fn build_records(
    dag: &CodeDag,
    inst_cycle: &[u32],
    mut hazard: Vec<Vec<Stall>>,
) -> Vec<PlacementRecord> {
    let n = inst_cycle.len();
    hazard.resize(n, Vec::new());
    let mut records = Vec::with_capacity(n);
    for (i, hz) in hazard.into_iter().enumerate() {
        let mut ready = 0u32;
        let mut earliest = 0u32;
        let mut binding: Option<(usize, EdgeKind, u32)> = None;
        for &ei in &dag.preds[i] {
            let e = dag.edges[ei];
            ready = ready.max(inst_cycle[e.from]);
            let satisfied = inst_cycle[e.from] + e.latency;
            if satisfied > earliest || binding.is_none() {
                earliest = earliest.max(satisfied);
                if satisfied == earliest {
                    binding = Some((e.from, e.kind, e.latency));
                }
            }
        }
        let mut stalls = Vec::new();
        if earliest > ready {
            let (pred, kind, latency) = binding.expect("earliest > ready implies a pred");
            stalls.push(Stall {
                at: ready,
                cycles: earliest - ready,
                reason: StallReason::Dependence {
                    pred,
                    kind,
                    latency,
                },
            });
        }
        stalls.extend(hz);
        records.push(PlacementRecord {
            inst: i,
            ready_cycle: ready,
            earliest_cycle: earliest,
            issue_cycle: inst_cycle[i],
            stalls,
        });
    }
    records
}

/// Appends one stalled cycle to a per-instruction log, coalescing with
/// the previous tile when it is contiguous and has the same reason.
pub(crate) fn log_stall(log: &mut Vec<Stall>, at: u32, reason: StallReason) {
    if let Some(last) = log.last_mut() {
        if last.reason == reason && last.at + last.cycles == at {
            last.cycles += 1;
            return;
        }
    }
    log.push(Stall {
        at,
        cycles: 1,
        reason,
    });
}

/// Computes per-node slack and one zero-slack chain for a DAG.
/// The DAG critical path in cycles: `max(est[i] + ltl[i]) + 1` over
/// the nodes, where `est` is the earliest dependence-legal issue cycle
/// and `ltl` the longest latency chain to a leaf. No legal schedule of
/// the block can finish in fewer issue cycles, so this is the quality
/// subsystem's per-block lower bound (`critical_path ≤ est_cycles`).
/// Zero for empty blocks.
pub fn critical_path_cycles(dag: &CodeDag) -> u32 {
    if dag.n == 0 {
        return 0;
    }
    let est = dag.earliest_starts();
    let ltl = dag.critical_path();
    (0..dag.n).map(|i| est[i] + ltl[i]).max().unwrap_or(0) + 1
}

pub fn critical_path_slack(dag: &CodeDag) -> (Vec<u32>, Vec<usize>) {
    if dag.n == 0 {
        return (Vec::new(), Vec::new());
    }
    let est = dag.earliest_starts();
    let ltl = dag.critical_path();
    let cp_len = (0..dag.n).map(|i| est[i] + ltl[i]).max().unwrap_or(0);
    let slack: Vec<u32> = (0..dag.n).map(|i| cp_len - (est[i] + ltl[i])).collect();
    // One chain: start at the earliest zero-slack node, follow
    // zero-slack edges that carry the full distance.
    let mut cur = (0..dag.n)
        .filter(|&i| slack[i] == 0)
        .min_by_key(|&i| (est[i], i))
        .unwrap_or(0);
    let mut path = vec![cur];
    for _ in 0..dag.n {
        let next = dag.succs[cur].iter().find_map(|&ei| {
            let e = dag.edges[ei];
            (slack[e.to] == 0 && ltl[cur] == e.latency + ltl[e.to]).then_some(e.to)
        });
        match next {
            Some(nxt) => {
                path.push(nxt);
                cur = nxt;
            }
            None => break,
        }
    }
    (slack, path)
}

/// An audit failure, pinpointing the offending instruction where one
/// can be named.
#[derive(Debug, Clone)]
pub struct AuditError {
    /// The instruction at fault, when attributable.
    pub inst: Option<usize>,
    /// Which constraint family failed: `"coverage"`, `"dependence"`,
    /// `"resource"`, `"class"`, `"rule1"` or `"provenance"`.
    pub kind: &'static str,
    /// Details.
    pub detail: String,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inst {
            Some(i) => write!(f, "audit[{}] instruction {i}: {}", self.kind, self.detail),
            None => write!(f, "audit[{}]: {}", self.kind, self.detail),
        }
    }
}

fn fail(inst: Option<usize>, kind: &'static str, detail: String) -> Result<(), AuditError> {
    Err(AuditError { inst, kind, detail })
}

/// Independently re-derives the legality of `schedule` from the
/// machine description and cross-checks the recorded provenance.
///
/// Legality is re-implemented from scratch (timeline replay with an
/// ownership map, rather than `verify_schedule`'s constraint scans) so
/// the two checkers can disagree only if one of them is wrong:
///
/// 1. **coverage** — `cycles` and `inst_cycle` describe the same
///    placement, every instruction exactly once;
/// 2. **dependence** — every DAG edge's latency is respected;
/// 3. **resource** — no resource is claimed by two instructions in the
///    same cycle (names both claimants);
/// 4. **class** — packed words have intersecting classes;
/// 5. **rule1** — (when `check_rule1`) no instruction affecting a
///    clock issues strictly inside an open temporal edge on it;
/// 6. **provenance** — when the schedule carries placement records:
///    each record's `ready`/`earliest` match a recomputation from the
///    DAG, the stall tiles exactly partition `[ready, issue)`, and
///    every Dependence / Resource / Temporal / ClassPacking stall is
///    corroborated against the final schedule (pressure and
///    thread-order stalls reflect transient scheduler state and are
///    checked arithmetically only).
pub fn audit_schedule(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
    check_rule1: bool,
) -> Result<(), AuditError> {
    let n = block.insts.len();
    // 1. Coverage.
    if schedule.inst_cycle.len() != n {
        return fail(
            None,
            "coverage",
            format!(
                "{} cycles recorded for {n} instructions",
                schedule.inst_cycle.len()
            ),
        );
    }
    let mut seen = vec![false; n];
    for (c, members) in schedule.cycles.iter().enumerate() {
        for &i in members {
            if i >= n {
                return fail(
                    None,
                    "coverage",
                    format!("cycle {c} lists instruction {i} of {n}"),
                );
            }
            if seen[i] {
                return fail(
                    Some(i),
                    "coverage",
                    format!("issued twice (again at cycle {c})"),
                );
            }
            seen[i] = true;
            if schedule.inst_cycle[i] as usize != c {
                return fail(
                    Some(i),
                    "coverage",
                    format!(
                        "listed at cycle {c} but inst_cycle says {}",
                        schedule.inst_cycle[i]
                    ),
                );
            }
        }
    }
    if let Some(i) = (0..n).find(|&i| !seen[i]) {
        return fail(Some(i), "coverage", "never issued".to_string());
    }
    // 2. Dependences.
    for e in &dag.edges {
        let (cf, ct) = (schedule.inst_cycle[e.from], schedule.inst_cycle[e.to]);
        if ct < cf + e.latency {
            return fail(
                Some(e.to),
                "dependence",
                format!(
                    "issues at {ct}, but its {} edge from [{}] (cycle {cf}, latency {}) requires ≥ {}",
                    edge_kind_name(e.kind),
                    e.from,
                    e.latency,
                    cf + e.latency
                ),
            );
        }
    }
    // 3. Resources: replay the timeline with an ownership map.
    let mut owner: HashMap<(u32, u32), usize> = HashMap::new();
    for (i, inst) in block.insts.iter().enumerate() {
        let t = machine.template(inst.template);
        for (c, need) in t.rsrc.iter().enumerate() {
            let at = schedule.inst_cycle[i] + c as u32;
            for r in need.iter() {
                if let Some(&prev) = owner.get(&(at, r)) {
                    let name = machine
                        .resources()
                        .get(r as usize)
                        .map(String::as_str)
                        .unwrap_or("?");
                    return fail(
                        Some(i),
                        "resource",
                        format!("claims {name} at cycle {at}, already held by [{prev}]"),
                    );
                }
                owner.insert((at, r), i);
            }
        }
    }
    // 4. Class packing, per issued word.
    for (c, members) in schedule.cycles.iter().enumerate() {
        let mut word: Option<ResSet> = None;
        for &i in members {
            if let Some(cid) = machine.template(block.insts[i].template).class {
                let elems = machine.class(cid).elements;
                let inter = match word {
                    None => elems,
                    Some(w) => w.intersection(&elems),
                };
                if inter.is_empty() {
                    return fail(
                        Some(i),
                        "class",
                        format!("cannot pack into the word issued at cycle {c}"),
                    );
                }
                word = Some(inter);
            }
        }
    }
    // 5. Rule 1.
    if check_rule1 {
        for e in &dag.edges {
            let EdgeKind::TrueTemporal(k) = e.kind else {
                continue;
            };
            let (cf, ct) = (schedule.inst_cycle[e.from], schedule.inst_cycle[e.to]);
            for (z, inst) in block.insts.iter().enumerate() {
                if z == e.from || z == e.to {
                    continue;
                }
                if machine.template(inst.template).affects_clock == Some(k) {
                    let cz = schedule.inst_cycle[z];
                    if cz > cf && cz < ct {
                        return fail(
                            Some(z),
                            "rule1",
                            format!(
                                "affects clock {k} and issues at {cz}, inside temporal edge [{}] -> [{}] ({cf} -> {ct})",
                                e.from, e.to
                            ),
                        );
                    }
                }
            }
        }
    }
    // 6. Provenance.
    audit_provenance(machine, block, dag, schedule, &owner)
}

fn audit_provenance(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
    owner: &HashMap<(u32, u32), usize>,
) -> Result<(), AuditError> {
    let n = block.insts.len();
    let records = &schedule.explanation.records;
    if records.is_empty() {
        // Hand-built schedules (tests) carry no provenance; legality
        // alone was audited.
        return Ok(());
    }
    if records.len() != n {
        return fail(
            None,
            "provenance",
            format!("{} records for {n} instructions", records.len()),
        );
    }
    for (i, rec) in records.iter().enumerate() {
        if rec.inst != i {
            return fail(
                Some(i),
                "provenance",
                format!("record claims instruction {}", rec.inst),
            );
        }
        let mut ready = 0u32;
        let mut earliest = 0u32;
        for &ei in &dag.preds[i] {
            let e = dag.edges[ei];
            ready = ready.max(schedule.inst_cycle[e.from]);
            earliest = earliest.max(schedule.inst_cycle[e.from] + e.latency);
        }
        let issue = schedule.inst_cycle[i];
        if rec.ready_cycle != ready || rec.earliest_cycle != earliest || rec.issue_cycle != issue {
            return fail(
                Some(i),
                "provenance",
                format!(
                    "record says ready {} / earliest {} / issue {}, schedule says {ready} / {earliest} / {issue}",
                    rec.ready_cycle, rec.earliest_cycle, rec.issue_cycle
                ),
            );
        }
        // The stall tiles must partition [ready, issue) exactly.
        let mut cursor = ready;
        for s in &rec.stalls {
            if s.at != cursor || s.cycles == 0 {
                return fail(
                    Some(i),
                    "provenance",
                    format!(
                        "stall tile at {} (len {}) does not continue from {cursor}",
                        s.at, s.cycles
                    ),
                );
            }
            cursor += s.cycles;
            audit_stall(machine, block, dag, schedule, owner, i, s)?;
        }
        if cursor != issue {
            return fail(
                Some(i),
                "provenance",
                format!(
                    "stall cycles sum to {} but issue - ready = {}",
                    cursor - ready,
                    issue - ready
                ),
            );
        }
    }
    Ok(())
}

/// Corroborates one stall tile against the final schedule. Resource
/// claims can be checked against the final timeline because usage only
/// grows during scheduling: a conflict observed at decision time is
/// still present in the completed schedule.
fn audit_stall(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
    owner: &HashMap<(u32, u32), usize>,
    i: usize,
    s: &Stall,
) -> Result<(), AuditError> {
    match s.reason {
        StallReason::Dependence {
            pred,
            kind,
            latency,
        } => {
            let rec = &schedule.explanation.records[i];
            let edge_ok = dag.preds[i].iter().any(|&ei| {
                let e = dag.edges[ei];
                e.from == pred && e.kind == kind && e.latency == latency
            });
            if !edge_ok {
                return fail(
                    Some(i),
                    "provenance",
                    format!(
                        "claims a {} edge from [{pred}] that the DAG does not have",
                        edge_kind_name(kind)
                    ),
                );
            }
            if schedule.inst_cycle[pred] + latency != rec.earliest_cycle
                || s.at != rec.ready_cycle
                || s.at + s.cycles != rec.earliest_cycle
            {
                return fail(
                    Some(i),
                    "provenance",
                    format!("dependence stall on [{pred}] does not span ready..earliest"),
                );
            }
        }
        StallReason::Resource { resource } => {
            let t = machine.template(block.insts[i].template);
            for at in s.at..s.at + s.cycles {
                let contended = t.rsrc.iter().enumerate().any(|(c, need)| {
                    need.contains(resource)
                        && owner
                            .get(&(at + c as u32, resource))
                            .is_some_and(|&o| o != i)
                });
                if !contended {
                    let name = machine
                        .resources()
                        .get(resource as usize)
                        .map(String::as_str)
                        .unwrap_or("?");
                    return fail(
                        Some(i),
                        "provenance",
                        format!("claims {name} was contended at cycle {at}, but no other instruction holds it where needed"),
                    );
                }
            }
        }
        StallReason::Temporal {
            clock,
            pending_src,
            pending_dst,
        } => {
            if machine.template(block.insts[i].template).affects_clock != Some(clock) {
                return fail(
                    Some(i),
                    "provenance",
                    format!("claims a Rule 1 stall on clock {clock} it does not affect"),
                );
            }
            let edge_ok = dag.edges.iter().any(|e| {
                e.from == pending_src
                    && e.to == pending_dst
                    && matches!(e.kind, EdgeKind::TrueTemporal(k) if k == clock)
            });
            if !edge_ok {
                return fail(
                    Some(i),
                    "provenance",
                    format!("claims temporal edge [{pending_src}] -> [{pending_dst}] that the DAG does not have"),
                );
            }
            for at in s.at..s.at + s.cycles {
                let (cs, cd) = (
                    schedule.inst_cycle[pending_src],
                    schedule.inst_cycle[pending_dst],
                );
                if !(cs < at && at < cd) {
                    return fail(
                        Some(i),
                        "provenance",
                        format!("temporal edge [{pending_src}] -> [{pending_dst}] was not open at cycle {at}"),
                    );
                }
            }
        }
        StallReason::ClassPacking => {
            let Some(cid) = machine.template(block.insts[i].template).class else {
                return fail(
                    Some(i),
                    "provenance",
                    "claims a packing stall but has no class".to_string(),
                );
            };
            let elems = machine.class(cid).elements;
            for at in s.at..s.at + s.cycles {
                let mut word: Option<ResSet> = None;
                for &m in schedule
                    .cycles
                    .get(at as usize)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    if let Some(mc) = machine.template(block.insts[m].template).class {
                        let me = machine.class(mc).elements;
                        word = Some(match word {
                            None => me,
                            Some(w) => w.intersection(&me),
                        });
                    }
                }
                let excluded = word.is_some_and(|w| w.intersection(&elems).is_empty());
                if !excluded {
                    return fail(
                        Some(i),
                        "provenance",
                        format!(
                            "claims the cycle-{at} word excluded it, but the classes intersect"
                        ),
                    );
                }
            }
        }
        // Pressure and thread-order stalls depend on transient
        // scheduler state (the live set, the serial cursor) that the
        // final schedule does not retain; the tiling arithmetic above
        // is their check. `Other` likewise.
        StallReason::RegPressure | StallReason::ThreadOrder | StallReason::Other => {}
    }
    Ok(())
}

/// Rebuilds the code DAG (and whether Rule 1 applies) for the
/// discipline named in a schedule's explanation, exactly as
/// `sched::schedule_block_robust` built it. Returns the DAG and the
/// `check_rule1` flag to audit or verify against.
pub fn dag_for_discipline(
    machine: &Machine,
    block: &CodeBlock,
    discipline: &str,
) -> (CodeDag, bool) {
    match discipline {
        "serialized" => {
            let mut dag = crate::dag::build_dag(machine, block, true);
            crate::dag::serialize_same_clock_sequences(&mut dag);
            (dag, true)
        }
        "name-deps" | "serial" => (
            crate::dag::build_dag_with(machine, block, true, true),
            false,
        ),
        // "rule1" and anything hand-rolled.
        _ => (crate::dag::build_dag(machine, block, true), true),
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `mnemonic op,op,…` display form of one block instruction, as used
/// in DAG node labels (dot and SVG renderings).
pub fn inst_label(machine: &Machine, block: &CodeBlock, i: usize) -> String {
    let inst = &block.insts[i];
    let mut s = machine.template(inst.template).mnemonic.clone();
    for (k, op) in inst.ops.iter().enumerate() {
        s.push(if k == 0 { ' ' } else { ',' });
        let _ = write!(s, "{op}");
    }
    s
}

/// Renders the annotated code DAG as a Graphviz digraph: each node
/// carries its instruction, issue cycle and ready/slack annotation,
/// stall reasons become tooltips, the critical path is highlighted,
/// and edges are styled by kind (solid true, bold+labelled temporal,
/// dashed anti/output, dotted memory/order) with their latency.
pub fn dag_to_dot(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
    title: &str,
) -> String {
    let ex = &schedule.explanation;
    let on_path = |i: usize| ex.slack.get(i).copied() == Some(0);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dot_escape(title));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box fontname=monospace fontsize=10];");
    for i in 0..dag.n {
        let cycle = schedule.inst_cycle.get(i).copied().unwrap_or(0);
        let (ready, slack) = (
            ex.records.get(i).map(|r| r.ready_cycle).unwrap_or(0),
            ex.slack.get(i).copied().unwrap_or(0),
        );
        let label = format!(
            "[{i}] {}\\n@{cycle} ready {ready} slack {slack}",
            dot_escape(&inst_label(machine, block, i))
        );
        let tooltip = match ex.records.get(i) {
            Some(r) if !r.stalls.is_empty() => r
                .stalls
                .iter()
                .map(|s| {
                    format!(
                        "{} cycle(s): {}",
                        s.cycles,
                        s.reason.describe(machine, block)
                    )
                })
                .collect::<Vec<_>>()
                .join("; "),
            _ => "no stalls".to_string(),
        };
        let mut attrs = format!("label=\"{label}\" tooltip=\"{}\"", dot_escape(&tooltip));
        if on_path(i) {
            attrs.push_str(" color=red penwidth=2");
        }
        if ex.records.get(i).is_some_and(|r| r.stall_cycles() > 0) {
            attrs.push_str(" style=filled fillcolor=lightyellow");
        }
        let _ = writeln!(out, "  n{i} [{attrs}];");
    }
    for e in &dag.edges {
        let style = match e.kind {
            EdgeKind::True => "solid".to_string(),
            EdgeKind::TrueTemporal(k) => {
                let clock = machine
                    .clocks()
                    .get(k.0 as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("bold\" label=\"{}", dot_escape(clock))
            }
            EdgeKind::Anti | EdgeKind::Output => "dashed".to_string(),
            EdgeKind::Mem | EdgeKind::Order => "dotted".to_string(),
        };
        let critical = on_path(e.from)
            && on_path(e.to)
            && ex
                .critical_path
                .windows(2)
                .any(|w| w[0] == e.from && w[1] == e.to);
        let color = if critical {
            " color=red penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=\"{style}\" taillabel=\"{}\"{color}];",
            e.from, e.to, e.latency
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Structural well-formedness of a [`dag_to_dot`] rendering: braces
/// balance, and the node and edge counts match the DAG. Returns a
/// description of the first problem.
pub fn check_dot(dot: &str, dag: &CodeDag) -> Result<(), String> {
    let opens = dot.matches('{').count();
    let closes = dot.matches('}').count();
    if opens != closes || opens == 0 {
        return Err(format!("unbalanced braces ({opens} open, {closes} close)"));
    }
    let nodes = dot
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            // A node statement is `nNN [attrs];` — `n` then a digit
            // (unlike the `node [..]` default-attribute line).
            l.strip_prefix('n')
                .and_then(|rest| rest.chars().next())
                .is_some_and(|c| c.is_ascii_digit())
                && l.contains('[')
                && !l.contains("->")
        })
        .count();
    if nodes != dag.n {
        return Err(format!("{nodes} node statements for {} DAG nodes", dag.n));
    }
    let edges = dot.lines().filter(|l| l.contains("->")).count();
    if edges != dag.edges.len() {
        return Err(format!(
            "{edges} edge statements for {} DAG edges",
            dag.edges.len()
        ));
    }
    Ok(())
}

/// The per-block cycle-by-cycle narrative: one row per issue cycle
/// listing what issued and what was stalled (and why), followed by a
/// per-instruction placement table, the stall histogram and the
/// critical path.
pub fn explain_block_text(machine: &Machine, block: &CodeBlock, schedule: &Schedule) -> String {
    let ex = &schedule.explanation;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule: {} insts, {} cycles (discipline {})",
        block.insts.len(),
        schedule.length,
        if ex.discipline.is_empty() {
            "rule1"
        } else {
            ex.discipline
        }
    );
    // Cycle narrative.
    let ncycles = schedule.cycles.len();
    for t in 0..ncycles as u32 {
        let issued: Vec<String> = schedule
            .cycles
            .get(t as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|&i| format!("[{i}] {}", inst_label(machine, block, i)))
            .collect();
        let mut waiting: Vec<String> = Vec::new();
        for r in &ex.records {
            for s in &r.stalls {
                if s.at <= t && t < s.at + s.cycles {
                    waiting.push(format!(
                        "[{}] {}: {}",
                        r.inst,
                        machine.template(block.insts[r.inst].template).mnemonic,
                        s.reason.describe(machine, block)
                    ));
                }
            }
        }
        let issued = if issued.is_empty() {
            "-".to_string()
        } else {
            issued.join("  ")
        };
        let _ = writeln!(out, "  cycle {t:>3} | {issued}");
        for w in waiting {
            let _ = writeln!(out, "            |   stalled {w}");
        }
    }
    // Placement table.
    let _ = writeln!(out, "  placements (inst | ready earliest issue | stalls):");
    for r in &ex.records {
        let stalls = if r.stalls.is_empty() {
            "none".to_string()
        } else {
            r.stalls
                .iter()
                .map(|s| format!("{}x {}", s.cycles, s.reason.key()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "    [{}] {:<18} | {:>3} {:>3} {:>3} | {stalls}",
            r.inst,
            machine.template(block.insts[r.inst].template).mnemonic,
            r.ready_cycle,
            r.earliest_cycle,
            r.issue_cycle
        );
    }
    let hist = ex.stall_histogram();
    if !hist.is_empty() {
        let rendered: Vec<String> = hist.iter().map(|(k, v)| format!("{k} {v}")).collect();
        let _ = writeln!(out, "  stall cycles by reason: {}", rendered.join(", "));
    }
    if !ex.critical_path.is_empty() {
        let chain: Vec<String> = ex.critical_path.iter().map(|i| format!("[{i}]")).collect();
        let _ = writeln!(out, "  critical path: {}", chain.join(" -> "));
    }
    out
}
